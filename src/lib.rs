//! Umbrella package for the XPRS reproduction workspace.
//!
//! This package exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests under `tests/`. The actual library lives in
//! the `xprs` facade crate and the per-subsystem crates under `crates/`.

pub use xprs;
