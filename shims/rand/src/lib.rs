//! Offline shim for the `rand` crate.
//!
//! CI for this repository has no route to crates.io, so the workspace
//! vendors the *API subset it actually uses* as a tiny std-only crate:
//! `StdRng::seed_from_u64`, `Rng::random`, and `Rng::random_range` over
//! integer and float ranges. The generator is SplitMix64 — statistically
//! fine for workload synthesis and property tests, deterministic per seed,
//! and explicitly **not** cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the `SeedableRng` surface we need).
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from their "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T` (`f64` is `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value uniform in `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `u64` in `[0, n)` by rejection, bias-free.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain request: every 64-bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: f64 = f64::sample(rng);
                self.start + (self.end - self.start) * u as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u: f64 = f64::sample(rng);
                lo + (hi - lo) * u as $t
            }
        }
    )*};
}
range_float!(f64, f32);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..=20);
            assert!((10..=20).contains(&x));
            let y = r.random_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let z = r.random_range(1.5f64..=2.5);
            assert!((1.5..=2.5).contains(&z));
        }
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = StdRng::seed_from_u64(3);
        // Must not hang or panic on the span-overflow path.
        let _ = r.random_range(0u64..=u64::MAX);
        let _ = r.random_range(i64::MIN..=i64::MAX);
    }
}
