//! Offline shim for the `criterion` crate.
//!
//! CI has no route to crates.io, so `cargo bench` runs against this std-only
//! stand-in: it warms each benchmark up, runs timed batches until a minimum
//! measurement window is reached, and prints mean ns/iteration. There is no
//! statistical analysis, HTML report, or comparison baseline — the numbers
//! are honest wall-clock means, good enough to rank hot paths and catch
//! order-of-magnitude regressions.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch sizing hints (accepted, ignored: setup always runs per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Setup re-run for every iteration.
    PerIteration,
}

/// The measurement driver handed to `bench_function` closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter*` call.
    ns_per_iter: f64,
}

const MIN_WINDOW: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1_000_000;

impl Bencher {
    /// Time `routine` until the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost probe.
        let t0 = Instant::now();
        black_box(routine());
        let probe = t0.elapsed().max(Duration::from_nanos(20));
        let budget = (MIN_WINDOW.as_nanos() / probe.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let t0 = Instant::now();
        for _ in 0..budget {
            black_box(routine());
        }
        self.ns_per_iter = t0.elapsed().as_nanos() as f64 / budget as f64;
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let probe = t0.elapsed().max(Duration::from_nanos(20));
        let budget = (MIN_WINDOW.as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.ns_per_iter = total.as_nanos() as f64 / budget as f64;
    }
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepted for API compatibility; the shim sizes its own sampling
    /// window, so the requested sample count is ignored.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Run one named benchmark and print its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let ns = b.ns_per_iter;
        if ns >= 1e6 {
            println!("bench {name:<55} {:>12.3} ms/iter", ns / 1e6);
        } else if ns >= 1e3 {
            println!("bench {name:<55} {:>12.3} µs/iter", ns / 1e3);
        } else {
            println!("bench {name:<55} {ns:>12.1} ns/iter");
        }
        self
    }
}

/// Group benchmark functions under one runner fn, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }
}
