//! Offline shim for the `proptest` crate.
//!
//! CI has no route to crates.io, so this crate reimplements the slice of
//! proptest the workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`, range/tuple/collection/bool strategies, `prop_oneof!`, the
//! `proptest!` test macro, and `prop_assert!`/`prop_assert_eq!`. Cases are
//! generated from a deterministic per-test seed (overridable with the
//! `PROPTEST_SEED` environment variable); there is **no shrinking** — a
//! failing case prints its inputs and panics.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use super::TestRng;
    use rand::RngCore;

    /// A generator of values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// single concrete value, and failures are reported without shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngCore;

    /// Strategy for `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngCore;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!`-block configuration (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Build the RNG for one property: deterministic from the property's name
/// unless `PROPTEST_SEED` overrides it.
pub fn rng_for(test_name: &str) -> TestRng {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return TestRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything the tests `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property; formats like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property; formats like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs its body
/// over `cases` generated inputs, printing the inputs of a failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs: {}",
                        stringify!($name), __case + 1, cfg.cases, __inputs
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        (0u32..10).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn maps_and_unions_compose(v in crate::collection::vec(
            prop_oneof![small().prop_map(|x| x as i64), -9i64..0], 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!((-9..20).contains(&x));
                if x >= 0 {
                    prop_assert_eq!(x % 2, 0);
                }
            }
        }

        #[test]
        fn tuples_and_bool_any(t in (0u8..5, crate::bool::ANY, 0.0f64..1.0)) {
            prop_assert!(t.0 < 5 && t.2 >= 0.0 && t.2 < 1.0);
        }
    }

    #[test]
    fn deterministic_without_env_seed() {
        if std::env::var("PROPTEST_SEED").is_ok() {
            return;
        }
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        let s = 0u64..100;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
