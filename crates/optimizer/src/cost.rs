//! The sequential cost model (`seqcost`).
//!
//! Conventional System-R style estimation: page I/Os are charged the disk's
//! sequential or random service time, tuples a fixed qualification-
//! evaluation cost, hash and comparison work their own constants. Costs are
//! in **seconds** and I/Os are counted separately so a plan fragment can be
//! turned into a schedulable task profile (`T_i`, `D_i`, `C_i = D_i/T_i`).

use xprs_scheduler::MachineConfig;

use crate::plan::Plan;

/// Per-query-relation statistics and physical properties, extracted from
/// the catalog (selectivity already reflects the query's selection).
#[derive(Debug, Clone)]
pub struct RelInfo {
    /// Cardinality before selection.
    pub n_tuples: f64,
    /// Heap pages.
    pub n_blocks: f64,
    /// Distinct values of the join attribute `a`.
    pub n_distinct: f64,
    /// Selection selectivity applied by the query (1.0 = none).
    pub selectivity: f64,
    /// Is there a B-tree index on `a`?
    pub has_index: bool,
    /// Is the heap clustered on `a` (index order = heap order)?
    pub clustered: bool,
}

/// Estimated properties of one plan node.
#[derive(Debug, Clone, Copy)]
pub struct NodeCost {
    /// Output cardinality.
    pub out_rows: f64,
    /// Distinct join-attribute values in the output.
    pub out_distinct: f64,
    /// Seconds of work in this subtree (the conventional `seqcost`).
    pub total_cost: f64,
    /// Seconds of work attributable to this node alone.
    pub own_cost: f64,
    /// I/O requests issued by this node alone.
    pub own_ios: f64,
    /// Does this node issue random (vs sequential) I/O?
    pub random_io: bool,
    /// Is the output ordered on the join attribute?
    pub sorted: bool,
    /// Estimated bytes per output row (for memory footprints of hash tables
    /// and materialized outputs).
    pub row_bytes: f64,
}

/// A plan annotated with per-node cost estimates, mirroring the plan shape.
#[derive(Debug, Clone)]
pub struct Costed {
    /// This node's estimates.
    pub cost: NodeCost,
    /// Children in plan order (build/probe, left/right, outer/inner).
    pub children: Vec<Costed>,
}

/// The cost model: machine service times plus CPU constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Machine whose disks define the I/O service times.
    pub machine: MachineConfig,
    /// Seconds to evaluate one tuple's qualifications (the paper's fixed
    /// per-tuple overhead).
    pub cpu_tuple: f64,
    /// Seconds to hash one tuple.
    pub cpu_hash: f64,
    /// Seconds per comparison (sorts, merges, nestloop predicates).
    pub cpu_cmp: f64,
}

impl CostModel {
    /// Defaults calibrated to the paper's machine: a minimal-tuple page
    /// (hundreds of tuples at ~0.25 ms each) takes ≈0.2 s of CPU, giving
    /// the 5 I/Os-per-second rate measured for `r_min`.
    pub fn paper_default() -> Self {
        CostModel {
            machine: MachineConfig::paper_default(),
            cpu_tuple: 0.25e-3,
            cpu_hash: 0.1e-3,
            cpu_cmp: 0.05e-3,
        }
    }

    fn t_seq_io(&self) -> f64 {
        1.0 / self.machine.seq_bw
    }

    fn t_rand_io(&self) -> f64 {
        1.0 / self.machine.random_bw
    }

    /// Annotate `plan` with estimates. `rels[i]` describes the query's
    /// `i`-th relation.
    pub fn cost_plan(&self, plan: &Plan, rels: &[RelInfo]) -> Costed {
        match plan {
            Plan::SeqScan { rel } => {
                let r = &rels[*rel];
                let own_ios = r.n_blocks;
                let own_cost = own_ios * self.t_seq_io() + r.n_tuples * self.cpu_tuple;
                let out_rows = r.n_tuples * r.selectivity;
                Costed {
                    cost: NodeCost {
                        out_rows,
                        out_distinct: r.n_distinct.min(out_rows).max(1.0),
                        total_cost: own_cost,
                        own_cost,
                        own_ios,
                        random_io: false,
                        sorted: false,
                        row_bytes: rel_row_bytes(r),
                    },
                    children: vec![],
                }
            }
            Plan::IndexScan { rel } => {
                let r = &rels[*rel];
                debug_assert!(r.has_index, "index scan over unindexed relation");
                let matching = r.n_tuples * r.selectivity;
                let (own_ios, own_cost, random_io) = if r.clustered {
                    // Clustered: matching tuples are contiguous; read the
                    // covering fraction of the heap almost-sequentially
                    // after the tree descent ("more or less the same
                    // situation as that of sequential scans").
                    let ios = 3.0 + (r.n_blocks * r.selectivity).ceil();
                    let cost = 3.0 * self.t_rand_io()
                        + (ios - 3.0) / self.machine.almost_seq_bw * self.machine.n_disks as f64
                            / self.machine.n_disks as f64
                        + matching * self.cpu_tuple;
                    (ios, cost, false)
                } else {
                    // Unclustered: descend the tree (~3 levels) then one heap
                    // page per matching tuple — the random pattern that makes
                    // index scans IO-bound.
                    let ios = 3.0 + matching;
                    (ios, ios * self.t_rand_io() + matching * self.cpu_tuple, true)
                };
                Costed {
                    cost: NodeCost {
                        out_rows: matching,
                        out_distinct: r.n_distinct.min(matching).max(1.0),
                        total_cost: own_cost,
                        own_cost,
                        own_ios,
                        random_io,
                        sorted: true,
                        row_bytes: rel_row_bytes(r),
                    },
                    children: vec![],
                }
            }
            Plan::HashJoin { build, probe } => {
                let b = self.cost_plan(build, rels);
                let p = self.cost_plan(probe, rels);
                let (out_rows, out_distinct) = join_card(&b.cost, &p.cost);
                let own_cost = (b.cost.out_rows + p.cost.out_rows) * self.cpu_hash
                    + out_rows * self.cpu_tuple;
                Costed {
                    cost: NodeCost {
                        out_rows,
                        out_distinct,
                        total_cost: b.cost.total_cost + p.cost.total_cost + own_cost,
                        own_cost,
                        own_ios: 0.0,
                        random_io: false,
                        sorted: false,
                        row_bytes: b.cost.row_bytes + p.cost.row_bytes,
                    },
                    children: vec![b, p],
                }
            }
            Plan::MergeJoin { left, right } => {
                let l = self.cost_plan(left, rels);
                let r = self.cost_plan(right, rels);
                let (out_rows, out_distinct) = join_card(&l.cost, &r.cost);
                let sort = |c: &NodeCost| {
                    if c.sorted {
                        0.0
                    } else {
                        let n = c.out_rows.max(2.0);
                        n * n.log2() * self.cpu_cmp
                    }
                };
                let own_cost = sort(&l.cost)
                    + sort(&r.cost)
                    + (l.cost.out_rows + r.cost.out_rows) * self.cpu_cmp
                    + out_rows * self.cpu_tuple;
                Costed {
                    cost: NodeCost {
                        out_rows,
                        out_distinct,
                        total_cost: l.cost.total_cost + r.cost.total_cost + own_cost,
                        own_cost,
                        own_ios: 0.0,
                        random_io: false,
                        sorted: true,
                        row_bytes: l.cost.row_bytes + r.cost.row_bytes,
                    },
                    children: vec![l, r],
                }
            }
            Plan::NestLoop { outer, inner } => {
                let o = self.cost_plan(outer, rels);
                let i = self.cost_plan(inner, rels);
                let (out_rows, out_distinct) = join_card(&o.cost, &i.cost);
                // Inner materialized once, then o.rows × i.rows predicate
                // evaluations.
                let own_cost = i.cost.out_rows * self.cpu_tuple
                    + o.cost.out_rows * i.cost.out_rows * self.cpu_cmp
                    + out_rows * self.cpu_tuple;
                Costed {
                    cost: NodeCost {
                        out_rows,
                        out_distinct,
                        total_cost: o.cost.total_cost + i.cost.total_cost + own_cost,
                        own_cost,
                        own_ios: 0.0,
                        random_io: false,
                        sorted: false,
                        row_bytes: o.cost.row_bytes + i.cost.row_bytes,
                    },
                    children: vec![o, i],
                }
            }
        }
    }

    /// The conventional sequential cost of a plan, in seconds.
    pub fn seqcost(&self, plan: &Plan, rels: &[RelInfo]) -> f64 {
        self.cost_plan(plan, rels).cost.total_cost
    }
}

/// Average stored bytes per row of a base relation.
fn rel_row_bytes(r: &RelInfo) -> f64 {
    if r.n_tuples > 0.0 {
        (r.n_blocks * 8192.0 / r.n_tuples).max(8.0)
    } else {
        8.0
    }
}

/// Equi-join cardinality: `|L|·|R| / max(d_L, d_R)`, distinct values the
/// smaller side's.
fn join_card(l: &NodeCost, r: &NodeCost) -> (f64, f64) {
    let d = l.out_distinct.max(r.out_distinct).max(1.0);
    let out = l.out_rows * r.out_rows / d;
    (out, l.out_distinct.min(r.out_distinct).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rels() -> Vec<RelInfo> {
        vec![
            RelInfo { n_tuples: 10_000.0, n_blocks: 500.0, n_distinct: 1000.0, selectivity: 1.0, has_index: true, clustered: false },
            RelInfo { n_tuples: 2_000.0, n_blocks: 100.0, n_distinct: 500.0, selectivity: 0.1, has_index: true, clustered: false },
        ]
    }

    fn model() -> CostModel {
        CostModel::paper_default()
    }

    #[test]
    fn seq_scan_cost_components() {
        let c = model().cost_plan(&Plan::SeqScan { rel: 0 }, &rels());
        // 500 ios at 1/97 s + 10k tuples at 0.25 ms.
        let expect = 500.0 / 97.0 + 10_000.0 * 0.25e-3;
        assert!((c.cost.own_cost - expect).abs() < 1e-9);
        assert_eq!(c.cost.out_rows, 10_000.0);
        assert!(!c.cost.sorted);
        assert!(!c.cost.random_io);
    }

    #[test]
    fn index_scan_is_random_and_sorted() {
        let c = model().cost_plan(&Plan::IndexScan { rel: 1 }, &rels());
        assert_eq!(c.cost.out_rows, 200.0);
        assert!(c.cost.random_io);
        assert!(c.cost.sorted);
        assert!((c.cost.own_ios - 203.0).abs() < 1e-9);
    }

    #[test]
    fn selective_index_scan_beats_seq_scan() {
        // 10% selection on a 100-page relation: 203 random ios vs 100
        // sequential ios... here the seq scan actually wins on I/O but loses
        // on CPU? Verify the model simply produces finite, ordered costs and
        // that higher selectivity favours the scan.
        let m = model();
        let mut rs = rels();
        rs[1].selectivity = 0.001;
        let idx = m.seqcost(&Plan::IndexScan { rel: 1 }, &rs);
        let seq = m.seqcost(&Plan::SeqScan { rel: 1 }, &rs);
        assert!(idx < seq, "a 0.1% selection should prefer the index: {idx} vs {seq}");
    }

    #[test]
    fn hash_join_cardinality_uses_max_distinct() {
        let m = model();
        let p = Plan::HashJoin {
            build: Box::new(Plan::SeqScan { rel: 1 }),
            probe: Box::new(Plan::SeqScan { rel: 0 }),
        };
        let c = m.cost_plan(&p, &rels());
        // |L|=200 (sel 0.1), |R|=10k, d = max(500·?, ...) — distincts are
        // capped by out_rows: d_build = min(500,200)=200, d_probe = 1000.
        let expect = 200.0 * 10_000.0 / 1000.0;
        assert!((c.cost.out_rows - expect).abs() < 1e-6);
        assert!(c.cost.total_cost > c.cost.own_cost);
    }

    #[test]
    fn merge_join_of_sorted_inputs_skips_sorts() {
        let m = model();
        let sorted_in = Plan::MergeJoin {
            left: Box::new(Plan::IndexScan { rel: 0 }),
            right: Box::new(Plan::IndexScan { rel: 1 }),
        };
        let unsorted_in = Plan::MergeJoin {
            left: Box::new(Plan::SeqScan { rel: 0 }),
            right: Box::new(Plan::SeqScan { rel: 1 }),
        };
        let cs = m.cost_plan(&sorted_in, &rels());
        let cu = m.cost_plan(&unsorted_in, &rels());
        assert!(cs.cost.own_cost < cu.cost.own_cost, "sorts must cost something");
        assert!(cs.cost.sorted && cu.cost.sorted);
    }

    #[test]
    fn nestloop_grows_quadratically() {
        let m = model();
        let p = Plan::NestLoop {
            outer: Box::new(Plan::SeqScan { rel: 0 }),
            inner: Box::new(Plan::SeqScan { rel: 1 }),
        };
        let c = m.cost_plan(&p, &rels());
        // 10_000 × 200 comparisons dominate.
        assert!(c.cost.own_cost > 10_000.0 * 200.0 * 0.05e-3 * 0.99);
    }

    #[test]
    fn row_bytes_propagate_through_joins() {
        let m = model();
        let c = m.cost_plan(
            &Plan::HashJoin {
                build: Box::new(Plan::SeqScan { rel: 0 }),
                probe: Box::new(Plan::SeqScan { rel: 1 }),
            },
            &rels(),
        );
        // rel 0: 500 pages / 10k tuples ≈ 410 B; rel 1: 100/2k ≈ 410 B.
        let b0 = c.children[0].cost.row_bytes;
        let b1 = c.children[1].cost.row_bytes;
        assert!((b0 - 409.6).abs() < 0.1);
        assert!((c.cost.row_bytes - (b0 + b1)).abs() < 1e-9);
    }

    #[test]
    fn clustered_index_scan_is_sequentialish_and_cheap() {
        let m = model();
        let mut rs = rels();
        rs[0].selectivity = 0.2;
        let unclustered = m.cost_plan(&Plan::IndexScan { rel: 0 }, &rs);
        rs[0].clustered = true;
        let clustered = m.cost_plan(&Plan::IndexScan { rel: 0 }, &rs);
        assert!(clustered.cost.own_cost < unclustered.cost.own_cost);
        assert!(clustered.cost.own_ios < unclustered.cost.own_ios);
        assert!(!clustered.cost.random_io && unclustered.cost.random_io);
        assert!(clustered.cost.sorted);
    }

    #[test]
    fn total_cost_sums_subtrees() {
        let m = model();
        let l = m.seqcost(&Plan::SeqScan { rel: 0 }, &rels());
        let r = m.seqcost(&Plan::SeqScan { rel: 1 }, &rels());
        let j = Plan::HashJoin {
            build: Box::new(Plan::SeqScan { rel: 1 }),
            probe: Box::new(Plan::SeqScan { rel: 0 }),
        };
        let c = m.cost_plan(&j, &rels());
        assert!((c.cost.total_cost - (l + r + c.cost.own_cost)).abs() < 1e-9);
    }
}
