//! Sequential plan trees.
//!
//! A sequential plan is a binary tree of the basic relational operations —
//! sequential scan, index scan, nestloop join, merge join and hash join —
//! exactly the operator vocabulary the paper names. Sorts required by a
//! merge join are folded into the join node (`sort_left` / `sort_right`).

use crate::query::Query;

/// A sequential execution plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Full scan of relation `rel` (index into the query's relation list).
    SeqScan {
        /// Relation index.
        rel: usize,
    },
    /// B-tree index scan of relation `rel` (selection pushed into the index).
    IndexScan {
        /// Relation index.
        rel: usize,
    },
    /// Nested-loop join; the inner side is materialized once and rescanned.
    NestLoop {
        /// Pipelined side.
        outer: Box<Plan>,
        /// Materialized side (blocking edge).
        inner: Box<Plan>,
    },
    /// Sort-merge join; sides sort (and therefore block) unless already
    /// ordered on the join attribute.
    MergeJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Hash join: `build` is consumed to build the table (blocking edge),
    /// `probe` streams through.
    HashJoin {
        /// Build side.
        build: Box<Plan>,
        /// Probe side.
        probe: Box<Plan>,
    },
}

impl Plan {
    /// Bitset of relations this plan covers.
    pub fn rel_set(&self) -> u32 {
        match self {
            Plan::SeqScan { rel } | Plan::IndexScan { rel } => 1u32 << rel,
            Plan::NestLoop { outer: a, inner: b }
            | Plan::MergeJoin { left: a, right: b }
            | Plan::HashJoin { build: a, probe: b } => a.rel_set() | b.rel_set(),
        }
    }

    /// Number of join nodes.
    pub fn n_joins(&self) -> usize {
        match self {
            Plan::SeqScan { .. } | Plan::IndexScan { .. } => 0,
            Plan::NestLoop { outer: a, inner: b }
            | Plan::MergeJoin { left: a, right: b }
            | Plan::HashJoin { build: a, probe: b } => 1 + a.n_joins() + b.n_joins(),
        }
    }

    /// Is this a left-deep tree (every join's second input is a base scan)?
    pub fn is_left_deep(&self) -> bool {
        match self {
            Plan::SeqScan { .. } | Plan::IndexScan { .. } => true,
            Plan::NestLoop { outer: a, inner: b }
            | Plan::MergeJoin { left: a, right: b }
            | Plan::HashJoin { build: a, probe: b } => {
                a.is_left_deep() && matches!(**b, Plan::SeqScan { .. } | Plan::IndexScan { .. })
            }
        }
    }

    /// Validate against `q`: every relation appears exactly once.
    pub fn validate(&self, q: &Query) -> Result<(), String> {
        fn count(plan: &Plan, seen: &mut [u32]) {
            match plan {
                Plan::SeqScan { rel } | Plan::IndexScan { rel } => seen[*rel] += 1,
                Plan::NestLoop { outer: a, inner: b }
                | Plan::MergeJoin { left: a, right: b }
                | Plan::HashJoin { build: a, probe: b } => {
                    count(a, seen);
                    count(b, seen);
                }
            }
        }
        let mut seen = vec![0u32; q.n_rels()];
        count(self, &mut seen);
        for (i, &c) in seen.iter().enumerate() {
            if c != 1 {
                return Err(format!("relation {i} appears {c} times"));
            }
        }
        Ok(())
    }

    /// Render as a one-line s-expression, e.g.
    /// `(HJ (scan 0) (MJ (scan 1) (iscan 2)))`.
    pub fn display(&self) -> String {
        match self {
            Plan::SeqScan { rel } => format!("(scan {rel})"),
            Plan::IndexScan { rel } => format!("(iscan {rel})"),
            Plan::NestLoop { outer, inner } => {
                format!("(NL {} {})", outer.display(), inner.display())
            }
            Plan::MergeJoin { left, right } => {
                format!("(MJ {} {})", left.display(), right.display())
            }
            Plan::HashJoin { build, probe } => {
                format!("(HJ {} {})", build.display(), probe.display())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: usize) -> Box<Plan> {
        Box::new(Plan::SeqScan { rel })
    }

    #[test]
    fn rel_set_unions_children() {
        let p = Plan::HashJoin { build: scan(0), probe: Box::new(Plan::MergeJoin { left: scan(2), right: scan(3) }) };
        assert_eq!(p.rel_set(), 0b1101);
        assert_eq!(p.n_joins(), 2);
    }

    #[test]
    fn left_deep_detection() {
        // ((0 ⋈ 1) ⋈ 2) is left-deep.
        let ld = Plan::HashJoin {
            build: Box::new(Plan::HashJoin { build: scan(0), probe: scan(1) }),
            probe: scan(2),
        };
        assert!(ld.is_left_deep());
        // (0 ⋈ (1 ⋈ 2)) is not.
        let bushy = Plan::HashJoin {
            build: scan(0),
            probe: Box::new(Plan::HashJoin { build: scan(1), probe: scan(2) }),
        };
        assert!(!bushy.is_left_deep());
    }

    #[test]
    fn validation_catches_duplicates_and_gaps() {
        let q = Query::join().rel("a", 1.0).rel("b", 1.0).on(0, 1).build();
        let ok = Plan::HashJoin { build: scan(0), probe: scan(1) };
        assert!(ok.validate(&q).is_ok());
        let dup = Plan::HashJoin { build: scan(0), probe: scan(0) };
        assert!(dup.validate(&q).is_err());
    }

    #[test]
    fn display_is_readable() {
        let p = Plan::NestLoop { outer: scan(0), inner: Box::new(Plan::IndexScan { rel: 1 }) };
        assert_eq!(p.display(), "(NL (scan 0) (iscan 1))");
    }
}
