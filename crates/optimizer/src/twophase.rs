//! The two-phase optimization strategy, with the Section 4 extension.
//!
//! Phase one picks sequential plans at compile time; phase two parallelizes
//! the chosen plan at run time. \[HONG91\] ran phase one with `seqcost` over
//! left-deep trees. This paper keeps the two-phase scheme but, for
//! single-query response time, re-ranks bushy candidates by
//! `parcost(p, n) = T_n(F(p))` — the estimated elapsed time of the plan's
//! fragment DAG under the adaptive scheduler — because a bushy plan whose
//! independent fragments pair IO-bound with CPU-bound work can beat the
//! `seqcost`-optimal plan once inter-operation parallelism exists.

use xprs_scheduler::fluid::{tn_estimate_dag, tn_estimate_dags};
use xprs_scheduler::{FragmentDag, MachineConfig};
use xprs_storage::Catalog;

use crate::cost::{CostModel, RelInfo};
use crate::enumerate::{enumerate, PlanShape};
use crate::fragment::{decompose, FragmentSet};
use crate::plan::Plan;
use crate::query::Query;

/// Which cost function ranks complete plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Costing {
    /// Conventional: minimize total sequential work.
    SeqCost,
    /// Section 4: minimize estimated parallel response time `T_n(F(p))`.
    ParCost,
}

/// Why the optimizer could not produce a plan.
///
/// Until PR 7 these cases were `assert!`s inside [`TwoPhaseOptimizer`]: a
/// query whose join graph admits no cross-product-free plan, or an empty
/// joint-optimization batch, took the whole process down. They are now
/// typed errors the scheduler and executor fold into their own error
/// enums, so a bad query fails that query — not the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The query failed structural validation (no relations, a
    /// disconnected join graph, an out-of-range edge, a bad selectivity).
    InvalidQuery(String),
    /// Phase-one enumeration produced no complete plan.
    NoPlan,
    /// A joint-optimization batch contained no queries.
    EmptyBatch,
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::InvalidQuery(why) => write!(f, "invalid query: {why}"),
            OptError::NoPlan => write!(f, "enumeration produced no plan"),
            OptError::EmptyBatch => write!(f, "nothing to optimize: empty query batch"),
        }
    }
}

impl std::error::Error for OptError {}

/// The optimization result.
#[derive(Debug, Clone)]
pub struct OptimizedQuery {
    /// The chosen sequential plan.
    pub plan: Plan,
    /// Its conventional sequential cost, seconds.
    pub seqcost: f64,
    /// Its estimated parallel response time `T_n(F(p))`, seconds.
    pub parcost: f64,
    /// The phase-two decomposition into schedulable fragments.
    pub fragments: FragmentSet,
}

/// The optimizer: phase-one enumeration plus phase-two parallelization.
#[derive(Debug, Clone)]
pub struct TwoPhaseOptimizer {
    /// Machine the parallelizer plans for.
    pub machine: MachineConfig,
    /// Sequential cost model.
    pub model: CostModel,
    /// Tree shapes phase one may produce.
    pub shape: PlanShape,
    /// Candidates carried per relation subset when ranking by `parcost`
    /// (local pruning is unsound there); `SeqCost` ranking always uses 1.
    pub beam: usize,
}

impl TwoPhaseOptimizer {
    /// Paper-default optimizer: bushy trees, beam of 8 candidates.
    pub fn paper_default() -> Self {
        TwoPhaseOptimizer {
            machine: MachineConfig::paper_default(),
            model: CostModel::paper_default(),
            shape: PlanShape::Bushy,
            beam: 8,
        }
    }

    /// Extract per-relation statistics for `q` from the catalog.
    ///
    /// # Panics
    /// Panics if a referenced relation does not exist — optimizing against
    /// a missing relation is a caller bug.
    pub fn rel_infos(&self, cat: &Catalog, q: &Query) -> Vec<RelInfo> {
        q.rels
            .iter()
            .map(|r| {
                let rel = cat
                    .get(&r.name)
                    .unwrap_or_else(|| panic!("relation {} not in catalog", r.name));
                let s = rel.stats();
                RelInfo {
                    n_tuples: s.n_tuples as f64,
                    n_blocks: s.n_blocks as f64,
                    n_distinct: s.n_distinct_a as f64,
                    selectivity: r.selectivity,
                    has_index: rel.index_on_a.is_some(),
                    clustered: rel.index_on_a.as_ref().is_some_and(|i| i.is_clustered()),
                }
            })
            .collect()
    }

    /// Optimize `q` (statistics in `rels`) ranking complete plans by
    /// `costing`. Returns the chosen plan with both cost figures and its
    /// fragment decomposition.
    ///
    /// # Errors
    /// [`OptError::NoPlan`] when enumeration produces no complete plan.
    pub fn optimize(
        &self,
        q: &Query,
        rels: &[RelInfo],
        costing: Costing,
    ) -> Result<OptimizedQuery, OptError> {
        q.validate().map_err(OptError::InvalidQuery)?;
        let beam = match costing {
            Costing::SeqCost => 1,
            Costing::ParCost => self.beam.max(1),
        };
        let candidates = enumerate(q, rels, &self.model, self.shape, beam);

        let mut best: Option<OptimizedQuery> = None;
        for cand in candidates {
            let fragments = decompose(&cand.plan, &cand.costed, 0);
            let parcost = tn_estimate_dag(&self.machine, &fragments.dag);
            let seqcost = cand.costed.cost.total_cost;
            let score = match costing {
                Costing::SeqCost => seqcost,
                Costing::ParCost => parcost,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    let b_score = match costing {
                        Costing::SeqCost => b.seqcost,
                        Costing::ParCost => b.parcost,
                    };
                    score < b_score
                }
            };
            if better {
                best = Some(OptimizedQuery { plan: cand.plan, seqcost, parcost, fragments });
            }
        }
        best.ok_or(OptError::NoPlan)
    }

    /// Convenience: optimize against the catalog directly.
    ///
    /// # Errors
    /// [`OptError::NoPlan`] when enumeration produces no complete plan.
    pub fn optimize_catalog(
        &self,
        cat: &Catalog,
        q: &Query,
        costing: Costing,
    ) -> Result<OptimizedQuery, OptError> {
        let rels = self.rel_infos(cat, q);
        self.optimize(q, &rels, costing)
    }

    /// Jointly optimize several queries for multi-user response: choose each
    /// query's plan to minimize the **joint** `T_n` of all queries' fragment
    /// DAGs scheduled together (the paper's Section 5 second future-work
    /// item), by coordinate descent over each query's candidate beam.
    ///
    /// Returns one [`OptimizedQuery`] per input, whose fragments carry
    /// globally-unique task ids (`query_index · 10_000 + fragment`), plus
    /// the joint elapsed-time estimate.
    ///
    /// # Errors
    /// [`OptError::EmptyBatch`] for an empty batch, [`OptError::NoPlan`]
    /// when any query in the batch admits no complete plan.
    pub fn optimize_joint(
        &self,
        queries: &[(&Query, Vec<RelInfo>)],
    ) -> Result<(Vec<OptimizedQuery>, f64), OptError> {
        if queries.is_empty() {
            return Err(OptError::EmptyBatch);
        }
        for (q, _) in queries {
            q.validate().map_err(OptError::InvalidQuery)?;
        }
        // Candidate beams per query, each candidate pre-decomposed.
        let beams: Vec<Vec<OptimizedQuery>> = queries
            .iter()
            .enumerate()
            .map(|(qi, (q, rels))| {
                enumerate(q, rels, &self.model, self.shape, self.beam.max(1))
                    .into_iter()
                    .map(|cand| {
                        let fragments = decompose(&cand.plan, &cand.costed, qi as u64 * 10_000);
                        let parcost = tn_estimate_dag(&self.machine, &fragments.dag);
                        OptimizedQuery {
                            seqcost: cand.costed.cost.total_cost,
                            plan: cand.plan,
                            parcost,
                            fragments,
                        }
                    })
                    .collect()
            })
            .collect();

        // Start from each query's solo parcost best.
        let mut chosen: Vec<usize> = Vec::with_capacity(beams.len());
        for beam in &beams {
            let best = beam
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.parcost.total_cmp(&b.parcost))
                .map(|(i, _)| i)
                .ok_or(OptError::NoPlan)?;
            chosen.push(best);
        }

        let joint = |chosen: &[usize]| -> f64 {
            let dags: Vec<&FragmentDag> = chosen
                .iter()
                .enumerate()
                .map(|(qi, &ci)| &beams[qi][ci].fragments.dag)
                .collect();
            tn_estimate_dags(&self.machine, &dags)
        };

        // Coordinate descent: re-pick each query's candidate holding the
        // others fixed, until a full pass changes nothing (≤ 3 passes).
        let mut best_joint = joint(&chosen);
        for _pass in 0..3 {
            let mut improved = false;
            for qi in 0..beams.len() {
                for ci in 0..beams[qi].len() {
                    if ci == chosen[qi] {
                        continue;
                    }
                    let mut trial = chosen.clone();
                    trial[qi] = ci;
                    let t = joint(&trial);
                    if t < best_joint - 1e-9 {
                        best_joint = t;
                        chosen = trial;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }

        let picked = chosen
            .into_iter()
            .enumerate()
            .map(|(qi, ci)| beams[qi][ci].clone())
            .collect();
        Ok((picked, best_joint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rels(specs: &[(f64, f64)]) -> Vec<RelInfo> {
        // (n_tuples, n_blocks) pairs; distinct fixed.
        specs
            .iter()
            .map(|&(t, b)| RelInfo {
                n_tuples: t,
                n_blocks: b,
                n_distinct: 1000.0,
                selectivity: 1.0,
                has_index: true,
                clustered: false,
            })
            .collect()
    }

    fn chain(n: usize) -> Query {
        let mut b = Query::join();
        for i in 0..n {
            b = b.rel(&format!("r{i}"), 1.0);
        }
        for i in 0..n - 1 {
            b = b.on(i, i + 1);
        }
        b.build()
    }

    fn opt() -> TwoPhaseOptimizer {
        TwoPhaseOptimizer::paper_default()
    }

    #[test]
    fn both_costings_produce_valid_plans() {
        let q = chain(4);
        // Mix of fat (few tuples/page ⇒ IO-bound scans) and thin relations.
        let rs = rels(&[(2_000.0, 2_000.0), (50_000.0, 700.0), (3_000.0, 3_000.0), (40_000.0, 600.0)]);
        for costing in [Costing::SeqCost, Costing::ParCost] {
            let o = opt().optimize(&q, &rs, costing).expect("plan");
            assert!(o.plan.validate(&q).is_ok());
            assert!(o.seqcost > 0.0 && o.parcost > 0.0);
            assert!(!o.fragments.fragments.is_empty());
        }
    }

    #[test]
    fn parcost_never_exceeds_seqcost_times_margin() {
        // Parallel execution of a plan cannot be slower than running it
        // sequentially (the scheduler can always fall back to one task at a
        // time at parallelism ≥ 1).
        let q = chain(3);
        let rs = rels(&[(10_000.0, 500.0), (20_000.0, 400.0), (5_000.0, 800.0)]);
        let o = opt().optimize(&q, &rs, Costing::SeqCost).expect("plan");
        assert!(
            o.parcost <= o.seqcost * 1.01,
            "parcost {} vs seqcost {}",
            o.parcost,
            o.seqcost
        );
    }

    #[test]
    fn parcost_choice_is_at_least_as_fast_as_seqcost_choice() {
        let q = chain(4);
        let rs = rels(&[(2_000.0, 2_000.0), (60_000.0, 800.0), (2_500.0, 2_500.0), (50_000.0, 700.0)]);
        let by_seq = opt().optimize(&q, &rs, Costing::SeqCost).expect("plan");
        let by_par = opt().optimize(&q, &rs, Costing::ParCost).expect("plan");
        assert!(
            by_par.parcost <= by_seq.parcost + 1e-9,
            "parcost ranking regressed: {} vs {}",
            by_par.parcost,
            by_seq.parcost
        );
    }

    #[test]
    fn left_deep_seqcost_matches_hong91_baseline_shape() {
        let mut o = opt();
        o.shape = PlanShape::LeftDeep;
        let q = chain(4);
        let rs = rels(&[(10_000.0, 500.0); 4]);
        let r = o.optimize(&q, &rs, Costing::SeqCost).expect("plan");
        assert!(r.plan.is_left_deep());
    }

    #[test]
    fn joint_optimization_never_loses_to_independent_choices() {
        // One IO-heavy query, one CPU-heavy query.
        let q1 = chain(2);
        let r1 = rels(&[(2_000.0, 2_000.0), (2_500.0, 2_500.0)]); // fat tuples
        let q2 = chain(2);
        let r2 = rels(&[(60_000.0, 800.0), (50_000.0, 700.0)]); // thin tuples
        let o = opt();
        let (plans, joint) =
            o.optimize_joint(&[(&q1, r1.clone()), (&q2, r2.clone())]).expect("plans");
        assert_eq!(plans.len(), 2);
        // Independent parcost choices, merged.
        let solo1 = {
            let mut oo = o.clone();
            oo.machine = o.machine.clone();
            let mut s = oo.optimize(&q1, &r1, Costing::ParCost).expect("plan");
            s.fragments = crate::fragment::decompose(
                &s.plan,
                &oo.model.cost_plan(&s.plan, &r1),
                0,
            );
            s
        };
        let solo2 = {
            let oo = o.clone();
            let mut s = oo.optimize(&q2, &r2, Costing::ParCost).expect("plan");
            s.fragments = crate::fragment::decompose(
                &s.plan,
                &oo.model.cost_plan(&s.plan, &r2),
                10_000,
            );
            s
        };
        let independent = xprs_scheduler::fluid::tn_estimate_dags(
            &o.machine,
            &[&solo1.fragments.dag, &solo2.fragments.dag],
        );
        assert!(
            joint <= independent + 1e-9,
            "joint {joint} must not lose to independently-chosen plans {independent}"
        );
        // Task ids are globally unique across the two queries.
        let ids: std::collections::HashSet<u64> = plans
            .iter()
            .flat_map(|p| p.fragments.fragments.iter().map(|f| f.profile.id.0))
            .collect();
        let total: usize = plans.iter().map(|p| p.fragments.fragments.len()).sum();
        assert_eq!(ids.len(), total);
    }

    #[test]
    fn disconnected_join_graph_is_a_typed_error_not_a_panic() {
        // Two relations, no join edge: no cross-product-free plan can
        // exist, and validation says so. This used to panic the process.
        let q = Query {
            rels: chain(2).rels,
            graph: crate::query::JoinGraph::new(),
        };
        let rs = rels(&[(1_000.0, 100.0), (1_000.0, 100.0)]);
        for costing in [Costing::SeqCost, Costing::ParCost] {
            let err = opt().optimize(&q, &rs, costing).expect_err("must not plan");
            assert!(matches!(err, OptError::InvalidQuery(_)), "got {err:?}");
        }
        // The same malformed query poisons a joint batch the same way.
        let err = opt().optimize_joint(&[(&q, rs)]).expect_err("must not plan");
        assert!(matches!(err, OptError::InvalidQuery(_)), "got {err:?}");
    }

    #[test]
    fn empty_joint_batch_is_a_typed_error() {
        assert_eq!(opt().optimize_joint(&[]).err(), Some(OptError::EmptyBatch));
        assert_eq!(OptError::EmptyBatch.to_string(), "nothing to optimize: empty query batch");
        assert_eq!(OptError::NoPlan.to_string(), "enumeration produced no plan");
    }

    #[test]
    fn catalog_integration_extracts_stats() {
        use xprs_disk::StripedLayout;
        use xprs_storage::{Datum, Schema, Tuple};
        let mut cat = Catalog::new(StripedLayout::new(4));
        cat.create("t", Schema::paper_rel());
        cat.load(
            "t",
            (0..500).map(|i| Tuple::from_values(vec![Datum::Int(i % 50), Datum::Text("x".repeat(100))])),
        );
        cat.build_index("t", false);
        let q = Query::selection("t", 0.2);
        let infos = opt().rel_infos(&cat, &q);
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].n_tuples, 500.0);
        assert_eq!(infos[0].n_distinct, 50.0);
        assert!(infos[0].has_index);
        assert_eq!(infos[0].selectivity, 0.2);
    }
}
