//! Join-order enumeration: System-R dynamic programming over relation
//! subsets, in left-deep-only or bushy mode, carrying a beam of candidate
//! plans per subset.
//!
//! Conventional DP keeps one best plan per subset (local pruning). Under
//! `parcost` local pruning is unsound — the parallel cost of a plan depends
//! on the shape of the *entire* fragment set — so the enumerator keeps the
//! `beam` cheapest (by `seqcost`) plans per subset and lets the caller
//! re-rank the surviving complete plans with whatever cost function it
//! wants. `beam = 1` recovers the classic algorithm.

use crate::cost::{CostModel, Costed, RelInfo};
use crate::plan::Plan;
use crate::query::Query;

/// Which tree shapes the enumerator may produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanShape {
    /// Every join's right input is a base relation (\[HONG91\]).
    LeftDeep,
    /// Arbitrary binary trees (joins of joins) — Section 4.
    Bushy,
}

/// A candidate plan with its cost annotation.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The plan.
    pub plan: Plan,
    /// Cost annotation (root).
    pub costed: Costed,
}

/// Enumerate plans for `q`, returning up to `beam` complete candidates in
/// ascending `seqcost` order.
///
/// # Panics
/// Panics if the query fails validation — enumeration over a malformed
/// query would silently produce wrong plans.
pub fn enumerate(
    q: &Query,
    rels: &[RelInfo],
    model: &CostModel,
    shape: PlanShape,
    beam: usize,
) -> Vec<Candidate> {
    q.validate().unwrap_or_else(|e| panic!("invalid query: {e}"));
    assert!(beam >= 1, "beam must keep at least one plan");
    let n = q.n_rels();
    let full = q.full_set();

    // best[s] = beam of candidates covering subset s.
    let mut best: Vec<Vec<Candidate>> = vec![Vec::new(); (full as usize) + 1];

    // Base relations: sequential scan, plus index scan when available.
    for i in 0..n {
        let mut cands = Vec::new();
        let scan = Plan::SeqScan { rel: i };
        cands.push(Candidate { costed: model.cost_plan(&scan, rels), plan: scan });
        if rels[i].has_index {
            let iscan = Plan::IndexScan { rel: i };
            cands.push(Candidate { costed: model.cost_plan(&iscan, rels), plan: iscan });
        }
        keep_beam(&mut cands, beam);
        best[1usize << i] = cands;
    }

    // Subsets in increasing popcount order.
    let mut subsets: Vec<u32> = (1..=full).filter(|s| s.count_ones() >= 2).collect();
    subsets.sort_by_key(|s| s.count_ones());

    for &s in &subsets {
        let mut cands: Vec<Candidate> = Vec::new();
        // Enumerate splits s = l ∪ r. Iterate proper non-empty subsets l of
        // s; to avoid duplicates consider each unordered split once (l < r
        // numerically) — join operators distinguish sides themselves.
        let mut l = (s.wrapping_sub(1)) & s;
        while l != 0 {
            let r = s & !l;
            if l < r {
                try_split(q, rels, model, shape, &best, l, r, &mut cands);
            }
            l = (l.wrapping_sub(1)) & s;
        }
        keep_beam(&mut cands, beam);
        best[s as usize] = cands;
    }

    best[full as usize].clone()
}

/// Enumerate and return only the cheapest complete plan by `seqcost`.
pub fn enumerate_best(
    q: &Query,
    rels: &[RelInfo],
    model: &CostModel,
    shape: PlanShape,
) -> Candidate {
    enumerate(q, rels, model, shape, 1)
        .into_iter()
        .next()
        .expect("a validated query always has at least one plan")
}

#[allow(clippy::too_many_arguments)]
fn try_split(
    q: &Query,
    rels: &[RelInfo],
    model: &CostModel,
    shape: PlanShape,
    best: &[Vec<Candidate>],
    l: u32,
    r: u32,
    out: &mut Vec<Candidate>,
) {
    if !q.graph.connects(l, r) {
        return; // no predicate: would be a cross product
    }
    if shape == PlanShape::LeftDeep && l.count_ones() > 1 && r.count_ones() > 1 {
        return;
    }
    for (a, b) in [(l, r), (r, l)] {
        if shape == PlanShape::LeftDeep && b.count_ones() > 1 {
            continue; // right input must be a base relation
        }
        for left in &best[a as usize] {
            for right in &best[b as usize] {
                for plan in join_methods(&left.plan, &right.plan) {
                    let costed = model.cost_plan(&plan, rels);
                    out.push(Candidate { plan, costed });
                }
            }
        }
    }
}

/// All physical join operators applicable to `(l, r)` in that orientation.
fn join_methods(l: &Plan, r: &Plan) -> Vec<Plan> {
    vec![
        Plan::HashJoin { build: Box::new(l.clone()), probe: Box::new(r.clone()) },
        Plan::MergeJoin { left: Box::new(l.clone()), right: Box::new(r.clone()) },
        Plan::NestLoop { outer: Box::new(l.clone()), inner: Box::new(r.clone()) },
    ]
}

fn keep_beam(cands: &mut Vec<Candidate>, beam: usize) {
    cands.sort_by(|a, b| a.costed.cost.total_cost.total_cmp(&b.costed.cost.total_cost));
    cands.truncate(beam);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rels(n: usize) -> Vec<RelInfo> {
        (0..n)
            .map(|i| RelInfo {
                n_tuples: 5_000.0 * (i as f64 + 1.0),
                n_blocks: 250.0 * (i as f64 + 1.0),
                n_distinct: 1_000.0,
                selectivity: 1.0,
                has_index: true,
                clustered: false,
            })
            .collect()
    }

    fn chain(n: usize) -> Query {
        let mut b = Query::join();
        for i in 0..n {
            b = b.rel(&format!("r{i}"), 1.0);
        }
        for i in 0..n - 1 {
            b = b.on(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn two_way_join_produces_a_valid_plan() {
        let q = chain(2);
        let best = enumerate_best(&q, &rels(2), &CostModel::paper_default(), PlanShape::Bushy);
        assert!(best.plan.validate(&q).is_ok());
        assert_eq!(best.plan.n_joins(), 1);
        assert!(best.costed.cost.total_cost > 0.0);
    }

    #[test]
    fn left_deep_mode_only_emits_left_deep_trees() {
        let q = chain(4);
        let cands = enumerate(&q, &rels(4), &CostModel::paper_default(), PlanShape::LeftDeep, 8);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.plan.is_left_deep(), "not left-deep: {}", c.plan.display());
            assert!(c.plan.validate(&q).is_ok());
        }
    }

    #[test]
    fn bushy_mode_finds_plans_left_deep_cannot() {
        let q = chain(4);
        let bushy = enumerate(&q, &rels(4), &CostModel::paper_default(), PlanShape::Bushy, 32);
        assert!(
            bushy.iter().any(|c| !c.plan.is_left_deep()),
            "a 4-way chain should admit at least one bushy candidate"
        );
    }

    #[test]
    fn bushy_best_is_no_worse_than_left_deep_best() {
        let q = chain(5);
        let m = CostModel::paper_default();
        let ld = enumerate_best(&q, &rels(5), &m, PlanShape::LeftDeep);
        let bushy = enumerate_best(&q, &rels(5), &m, PlanShape::Bushy);
        assert!(bushy.costed.cost.total_cost <= ld.costed.cost.total_cost + 1e-9);
    }

    #[test]
    fn beam_returns_distinct_ranked_candidates() {
        let q = chain(3);
        let cands = enumerate(&q, &rels(3), &CostModel::paper_default(), PlanShape::Bushy, 5);
        assert!(cands.len() > 1);
        for w in cands.windows(2) {
            assert!(w[0].costed.cost.total_cost <= w[1].costed.cost.total_cost);
        }
    }

    #[test]
    fn cross_products_are_never_generated() {
        // Star query: relation 0 joins each of 1..3; 1,2,3 are not directly
        // connected, so any subset {1,2} must be unreachable.
        let q = Query::join()
            .rel("hub", 1.0)
            .rel("s1", 1.0)
            .rel("s2", 1.0)
            .rel("s3", 1.0)
            .on(0, 1)
            .on(0, 2)
            .on(0, 3)
            .build();
        let cands = enumerate(&q, &rels(4), &CostModel::paper_default(), PlanShape::Bushy, 4);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.plan.validate(&q).is_ok());
        }
    }

    #[test]
    fn single_relation_query_yields_a_scan() {
        let q = Query::selection("r", 0.05);
        let mut rs = rels(1);
        rs[0].selectivity = 0.05;
        let best = enumerate_best(&q, &rs, &CostModel::paper_default(), PlanShape::Bushy);
        assert_eq!(best.plan.n_joins(), 0);
    }
}
