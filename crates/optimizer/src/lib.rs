//! # xprs-optimizer
//!
//! The two-phase query optimizer of XPRS, extended per Section 4 of the
//! paper to bushy trees and inter-operation parallelism.
//!
//! Phase one is a conventional System-R style optimizer: dynamic programming
//! over join orders with a textbook sequential cost model ([`cost`]),
//! enumerating either left-deep trees only (the \[HONG91\] baseline) or full
//! bushy trees ([`enumerate`]).
//!
//! Phase two parallelizes the chosen sequential plan: the plan is decomposed
//! at its **blocking edges** into plan fragments — maximal pipelineable
//! subtrees — each of which becomes a schedulable task with an estimated
//! sequential time `T_i`, I/O count `D_i`, and I/O rate `C_i = D_i / T_i`
//! ([`fragment`]).
//!
//! The paper's contribution is the cost function that ties the phases
//! together: `parcost(p, n) = T_n(F(p))` — the elapsed time of running the
//! plan's fragment DAG under the adaptive scheduling algorithm — replaces
//! `seqcost(p)` when optimizing response time in a single-user environment
//! ([`twophase`]). Because `parcost` depends on the *whole* fragment set,
//! local pruning is unsound; the enumerator therefore carries a beam of
//! candidate subplans per relation subset instead of a single winner.

pub mod cost;
pub mod enumerate;
pub mod fragment;
pub mod plan;
pub mod query;
pub mod twophase;

pub use cost::{CostModel, NodeCost};
pub use enumerate::{enumerate_best, PlanShape};
pub use fragment::{decompose, Fragment, FragmentSet};
pub use plan::Plan;
pub use query::{JoinGraph, Query};
pub use twophase::{Costing, OptError, OptimizedQuery, TwoPhaseOptimizer};
