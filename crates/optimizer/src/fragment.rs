//! Plan-fragment decomposition.
//!
//! Plans are cut at **blocking edges** — edges where one operation must
//! consume its child's entire output before producing anything:
//!
//! * the *build* side of a hash join,
//! * the *inner* (materialized) side of a nested-loop join,
//! * any merge-join input that still needs sorting (an input already ordered
//!   on the join attribute, e.g. an index scan, pipelines straight in).
//!
//! Each maximal pipelineable region becomes one fragment — the paper's unit
//! of parallel execution ("task"). A fragment's sequential time `T_i` is the
//! sum of its member nodes' own costs, its I/O count `D_i` the sum of their
//! I/Os, and its I/O rate `C_i = D_i / T_i`, which is exactly what the
//! scheduler's balance-point machinery consumes. Each fragment also carries
//! a shared-memory footprint estimate — its own materialized output plus the
//! hash tables / sorted inputs it holds while running — feeding the memory-
//! constrained scheduling of the paper's Section 5 future work.

use xprs_scheduler::{FragmentDag, IoKind, TaskId, TaskProfile};

use crate::cost::Costed;
use crate::plan::Plan;

/// One plan fragment, ready to schedule.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Scheduler-facing profile (`T_i`, `C_i`, I/O kind).
    pub profile: TaskProfile,
    /// Estimated I/O count `D_i`.
    pub ios: f64,
    /// Number of plan nodes fused into this fragment.
    pub n_nodes: usize,
}

/// The decomposition result: fragments plus their dependency DAG.
#[derive(Debug, Clone)]
pub struct FragmentSet {
    /// Fragments, index-aligned with the DAG.
    pub fragments: Vec<Fragment>,
    /// Producer→consumer dependencies.
    pub dag: FragmentDag,
}

impl FragmentSet {
    /// Total estimated sequential work across fragments.
    pub fn total_seq_time(&self) -> f64 {
        self.fragments.iter().map(|f| f.profile.seq_time).sum()
    }
}

struct Builder {
    // Accumulators per fragment under construction.
    time: Vec<f64>,
    ios: Vec<f64>,
    random: Vec<bool>,
    nodes: Vec<usize>,
    deps: Vec<Vec<usize>>,
    /// Estimated bytes of the fragment root's materialized output.
    out_bytes: Vec<f64>,
}

impl Builder {
    fn fresh(&mut self) -> usize {
        self.time.push(0.0);
        self.ios.push(0.0);
        self.random.push(false);
        self.nodes.push(0);
        self.deps.push(Vec::new());
        self.out_bytes.push(0.0);
        self.time.len() - 1
    }

    /// Walk `plan`/`costed` attributing nodes to fragment `frag`; blocking
    /// children start fresh fragments that `frag` depends on.
    fn walk(&mut self, plan: &Plan, costed: &Costed, frag: usize) {
        if self.nodes[frag] == 0 {
            // First node walked is the fragment's root: its output is what
            // gets materialized for the consumer.
            self.out_bytes[frag] = costed.cost.out_rows * costed.cost.row_bytes;
        }
        self.time[frag] += costed.cost.own_cost;
        self.ios[frag] += costed.cost.own_ios;
        self.random[frag] |= costed.cost.random_io;
        self.nodes[frag] += 1;
        match plan {
            Plan::SeqScan { .. } | Plan::IndexScan { .. } => {}
            Plan::HashJoin { build, probe } => {
                let b = self.fresh();
                self.walk(build, &costed.children[0], b);
                self.deps[frag].push(b);
                self.walk(probe, &costed.children[1], frag);
            }
            Plan::NestLoop { outer, inner } => {
                let i = self.fresh();
                self.walk(inner, &costed.children[1], i);
                self.deps[frag].push(i);
                self.walk(outer, &costed.children[0], frag);
            }
            Plan::MergeJoin { left, right } => {
                for (child, costed_child) in [(left, &costed.children[0]), (right, &costed.children[1])] {
                    if matches!(&**child, Plan::IndexScan { .. }) {
                        // A base index scan delivers in key order and
                        // pipelines straight into the merge. (Deeper sorted
                        // subtrees are materialized instead — the executor
                        // partitions a fragment by one key domain, and this
                        // keeps the decomposition identical on both sides.)
                        self.walk(child, costed_child, frag);
                    } else {
                        let c = self.fresh();
                        self.walk(child, costed_child, c);
                        self.deps[frag].push(c);
                    }
                }
            }
        }
    }
}

/// Decompose a costed plan into schedulable fragments. Fragment task ids
/// start at `base_id` (so fragments of several queries can coexist in one
/// scheduling run).
pub fn decompose(plan: &Plan, costed: &Costed, base_id: u64) -> FragmentSet {
    let mut b = Builder {
        time: vec![],
        ios: vec![],
        random: vec![],
        nodes: vec![],
        deps: vec![],
        out_bytes: vec![],
    };
    let root = b.fresh();
    b.walk(plan, costed, root);

    // Emit in dependency order (children before parents). Because walk()
    // creates child fragments before filling them, a simple topological
    // emission by depth-first post-order over deps is needed.
    let n = b.time.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    fn visit(i: usize, deps: &[Vec<usize>], visited: &mut [bool], order: &mut Vec<usize>) {
        if visited[i] {
            return;
        }
        visited[i] = true;
        for &d in &deps[i] {
            visit(d, deps, visited, order);
        }
        order.push(i);
    }
    for i in 0..n {
        visit(i, &b.deps, &mut visited, &mut order);
    }
    let mut new_index = vec![0usize; n];
    for (new_i, &old_i) in order.iter().enumerate() {
        new_index[old_i] = new_i;
    }

    let mut fragments = Vec::with_capacity(n);
    let mut dag = FragmentDag::new();
    for &old_i in &order {
        // Guard against degenerate estimates: a fragment always costs some
        // time and issues at least a trickle of I/O (result delivery).
        let time = b.time[old_i].max(1e-6);
        let ios = b.ios[old_i];
        let rate = (ios / time).max(1e-3);
        let kind = if b.random[old_i] { IoKind::Random } else { IoKind::Sequential };
        // Memory held while running: this fragment's own materialized output
        // plus every input table it probes or merges with.
        let memory = b.out_bytes[old_i]
            + b.deps[old_i].iter().map(|&d| b.out_bytes[d]).sum::<f64>();
        let profile = TaskProfile::new(TaskId(base_id + fragments.len() as u64), time, rate, kind)
            .with_memory(memory);
        let deps: Vec<usize> = b.deps[old_i].iter().map(|&d| new_index[d]).collect();
        dag.add(profile.clone(), &deps);
        fragments.push(Fragment { profile, ios, n_nodes: b.nodes[old_i] });
    }
    FragmentSet { fragments, dag }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, RelInfo};

    fn rels(n: usize) -> Vec<RelInfo> {
        (0..n)
            .map(|i| RelInfo {
                n_tuples: 10_000.0 + 1000.0 * i as f64,
                n_blocks: 500.0,
                n_distinct: 1000.0,
                selectivity: 1.0,
                has_index: true,
                clustered: false,
            })
            .collect()
    }

    fn decompose_plan(plan: &Plan, n_rels: usize) -> FragmentSet {
        let m = CostModel::paper_default();
        let costed = m.cost_plan(plan, &rels(n_rels));
        decompose(plan, &costed, 0)
    }

    fn scan(rel: usize) -> Box<Plan> {
        Box::new(Plan::SeqScan { rel })
    }

    #[test]
    fn single_scan_is_one_fragment() {
        let fs = decompose_plan(&Plan::SeqScan { rel: 0 }, 1);
        assert_eq!(fs.fragments.len(), 1);
        assert_eq!(fs.dag.roots(), vec![0]);
        assert_eq!(fs.fragments[0].n_nodes, 1);
        assert_eq!(fs.fragments[0].profile.io_kind, IoKind::Sequential);
    }

    #[test]
    fn hash_join_splits_at_the_build_side() {
        let p = Plan::HashJoin { build: scan(0), probe: scan(1) };
        let fs = decompose_plan(&p, 2);
        // Two fragments: the build scan, and probe-scan+join fused.
        assert_eq!(fs.fragments.len(), 2);
        // One root (the build); the probe fragment depends on it.
        let roots = fs.dag.roots();
        assert_eq!(roots.len(), 1);
        let consumer = (0..2).find(|i| !roots.contains(i)).unwrap();
        assert_eq!(fs.dag.deps_of(consumer), &[roots[0]]);
        // The probe fragment fused two plan nodes (scan + join).
        assert_eq!(fs.fragments[consumer].n_nodes, 2);
    }

    #[test]
    fn merge_join_of_index_scans_is_fully_pipelined() {
        let p = Plan::MergeJoin {
            left: Box::new(Plan::IndexScan { rel: 0 }),
            right: Box::new(Plan::IndexScan { rel: 1 }),
        };
        let fs = decompose_plan(&p, 2);
        assert_eq!(fs.fragments.len(), 1, "sorted inputs pipeline into the merge");
        assert_eq!(fs.fragments[0].n_nodes, 3);
        assert_eq!(fs.fragments[0].profile.io_kind, IoKind::Random);
    }

    #[test]
    fn merge_join_of_seq_scans_blocks_both_sides() {
        let p = Plan::MergeJoin { left: scan(0), right: scan(1) };
        let fs = decompose_plan(&p, 2);
        assert_eq!(fs.fragments.len(), 3);
        // The join fragment depends on both scans.
        let join_frag = (0..3).find(|&i| fs.dag.deps_of(i).len() == 2).unwrap();
        assert_eq!(fs.dag.roots().len(), 2);
        assert!(fs.fragments[join_frag].n_nodes == 1);
    }

    #[test]
    fn bushy_plan_exposes_independent_fragments() {
        // (0 HJ 1) HJ (2 HJ 3): the two inner builds are independent roots —
        // exactly the inter-operation parallelism opportunity.
        let p = Plan::HashJoin {
            build: Box::new(Plan::HashJoin { build: scan(0), probe: scan(1) }),
            probe: Box::new(Plan::HashJoin { build: scan(2), probe: scan(3) }),
        };
        let fs = decompose_plan(&p, 4);
        // Four fragments: scan 0; HJ(0,1) with its probe scan; scan 2; and
        // the top join fused with probe scan 3.
        assert_eq!(fs.fragments.len(), 4);
        assert_eq!(fs.dag.roots().len(), 2, "two independent build fragments");
    }

    #[test]
    fn fragment_times_partition_the_seqcost() {
        let p = Plan::HashJoin {
            build: Box::new(Plan::MergeJoin { left: scan(0), right: scan(1) }),
            probe: scan(2),
        };
        let m = CostModel::paper_default();
        let costed = m.cost_plan(&p, &rels(3));
        let fs = decompose(&p, &costed, 100);
        assert!((fs.total_seq_time() - costed.cost.total_cost).abs() < 1e-6);
        // Base ids respected.
        assert!(fs.fragments.iter().all(|f| f.profile.id.0 >= 100));
    }

    #[test]
    fn fragment_memory_accounts_for_held_tables() {
        // HJ(build = scan 0, probe = scan 1): the probe fragment holds the
        // build table plus its own output; the build fragment holds only its
        // own output.
        let p = Plan::HashJoin { build: scan(0), probe: scan(1) };
        let fs = decompose_plan(&p, 2);
        let build = &fs.fragments[0];
        let probe = &fs.fragments[1];
        assert!(build.profile.memory > 0.0);
        assert!(
            probe.profile.memory > build.profile.memory,
            "probe ({}) must hold the build table ({}) on top of its own output",
            probe.profile.memory,
            build.profile.memory
        );
    }

    #[test]
    fn dag_emission_is_topological() {
        let p = Plan::HashJoin {
            build: Box::new(Plan::HashJoin { build: scan(0), probe: scan(1) }),
            probe: scan(2),
        };
        let fs = decompose_plan(&p, 3);
        for i in 0..fs.fragments.len() {
            for &d in fs.dag.deps_of(i) {
                assert!(d < i, "dependency {d} of {i} must be emitted first");
            }
        }
    }
}
