//! Query specifications: a set of relations, per-relation selections, and an
//! equi-join graph.
//!
//! The reproduction's query language is deliberately the paper's: selections
//! on `r.a` (one-variable queries, Section 3) and multi-way equi-joins on
//! `a` (the bushy-tree experiments of Section 4). A query names up to 16
//! relations, gives each an optional selection selectivity, and connects
//! pairs with join edges.

/// An equi-join edge between two relations (indices into [`Query::rels`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// First relation index.
    pub left: usize,
    /// Second relation index.
    pub right: usize,
}

/// The join graph: which relation pairs are connected by predicates.
#[derive(Debug, Clone, Default)]
pub struct JoinGraph {
    edges: Vec<JoinEdge>,
}

impl JoinGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an edge between relation indices `left` and `right`.
    pub fn add_edge(&mut self, left: usize, right: usize) {
        assert_ne!(left, right, "self-joins need distinct relation entries");
        self.edges.push(JoinEdge { left, right });
    }

    /// All edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// Is there an edge between the relation subsets `a` and `b` (bitsets)?
    pub fn connects(&self, a: u32, b: u32) -> bool {
        self.edges.iter().any(|e| {
            let lbit = 1u32 << e.left;
            let rbit = 1u32 << e.right;
            (a & lbit != 0 && b & rbit != 0) || (a & rbit != 0 && b & lbit != 0)
        })
    }
}

/// One relation reference within a query.
#[derive(Debug, Clone)]
pub struct RelRef {
    /// Catalog name.
    pub name: String,
    /// Selection selectivity on this relation (1.0 = no selection).
    pub selectivity: f64,
}

/// A select-join query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Referenced relations.
    pub rels: Vec<RelRef>,
    /// Equi-join predicates.
    pub graph: JoinGraph,
}

impl Query {
    /// A single-relation selection query (the Section 3 workload shape).
    pub fn selection(name: &str, selectivity: f64) -> Self {
        Query {
            rels: vec![RelRef { name: name.to_string(), selectivity }],
            graph: JoinGraph::new(),
        }
    }

    /// Start building a join query.
    pub fn join() -> QueryBuilder {
        QueryBuilder { rels: Vec::new(), edges: Vec::new() }
    }

    /// Number of relations.
    pub fn n_rels(&self) -> usize {
        self.rels.len()
    }

    /// Bitset of all relations.
    pub fn full_set(&self) -> u32 {
        (1u32 << self.rels.len()) - 1
    }

    /// Check structural sanity: at most 16 relations, all edges in range,
    /// join graph connected (so plans need no cross products).
    pub fn validate(&self) -> Result<(), String> {
        if self.rels.is_empty() {
            return Err("query references no relations".into());
        }
        if self.rels.len() > 16 {
            return Err(format!("too many relations: {}", self.rels.len()));
        }
        for r in &self.rels {
            if !(r.selectivity > 0.0 && r.selectivity <= 1.0) {
                return Err(format!("selectivity {} of {} out of (0,1]", r.selectivity, r.name));
            }
        }
        for e in self.graph.edges() {
            if e.left >= self.rels.len() || e.right >= self.rels.len() {
                return Err(format!("edge ({}, {}) out of range", e.left, e.right));
            }
        }
        if self.rels.len() > 1 {
            // Connectivity by union-find-lite.
            let mut comp: Vec<usize> = (0..self.rels.len()).collect();
            fn find(comp: &mut Vec<usize>, i: usize) -> usize {
                if comp[i] != i {
                    let root = find(comp, comp[i]);
                    comp[i] = root;
                }
                comp[i]
            }
            for e in self.graph.edges() {
                let (a, b) = (find(&mut comp, e.left), find(&mut comp, e.right));
                comp[a] = b;
            }
            let root = find(&mut comp, 0);
            for i in 1..self.rels.len() {
                if find(&mut comp, i) != root {
                    return Err("join graph is disconnected (cross product required)".into());
                }
            }
        }
        Ok(())
    }
}

/// Builder for join queries.
pub struct QueryBuilder {
    rels: Vec<RelRef>,
    edges: Vec<(usize, usize)>,
}

impl QueryBuilder {
    /// Add a relation with a selection; returns its index.
    pub fn rel(mut self, name: &str, selectivity: f64) -> Self {
        self.rels.push(RelRef { name: name.to_string(), selectivity });
        self
    }

    /// Join relation indices `a` and `b` on attribute `a`.
    pub fn on(mut self, a: usize, b: usize) -> Self {
        self.edges.push((a, b));
        self
    }

    /// Finish, validating the query.
    ///
    /// # Panics
    /// Panics on a malformed query — construction-time bugs, not runtime
    /// conditions.
    pub fn build(self) -> Query {
        let mut graph = JoinGraph::new();
        for (a, b) in self.edges {
            graph.add_edge(a, b);
        }
        let q = Query { rels: self.rels, graph };
        if let Err(e) = q.validate() {
            panic!("invalid query: {e}");
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_query_shape() {
        let q = Query::selection("r1", 0.1);
        assert_eq!(q.n_rels(), 1);
        assert!(q.validate().is_ok());
        assert_eq!(q.full_set(), 0b1);
    }

    #[test]
    fn builder_constructs_a_chain_join() {
        let q = Query::join()
            .rel("a", 1.0)
            .rel("b", 0.5)
            .rel("c", 1.0)
            .on(0, 1)
            .on(1, 2)
            .build();
        assert_eq!(q.n_rels(), 3);
        assert!(q.graph.connects(0b001, 0b010));
        assert!(!q.graph.connects(0b001, 0b100));
        assert!(q.graph.connects(0b011, 0b100));
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_rejected() {
        Query::join().rel("a", 1.0).rel("b", 1.0).build();
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn bad_selectivity_rejected() {
        Query::join().rel("a", 0.0).build();
    }

    #[test]
    fn connects_is_symmetric() {
        let mut g = JoinGraph::new();
        g.add_edge(2, 0);
        assert!(g.connects(0b001, 0b100));
        assert!(g.connects(0b100, 0b001));
    }
}
