//! The `XprsSystem` facade.

use std::sync::Arc;

use xprs_executor::{ExecConfig, ExecError, ExecReport, Executor, QueryRun, RelBinding};
use xprs_optimizer::{Costing, OptError, OptimizedQuery, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::fluid::{FluidResult, FluidSim};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::{MachineConfig, SchedError, SchedulePolicy, TaskProfile};
use xprs_sim::{SimConfig, SimError, SimReport, SimTask, Simulator};
use xprs_storage::Catalog;
use xprs_workload::GeneratedWorkload;

/// The three scheduling algorithms of the paper's Section 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// One task at a time, intra-operation parallelism only.
    IntraOnly,
    /// Inter-operation pairing, no dynamic adjustment.
    InterWithoutAdj,
    /// The paper's proposal: pairing plus dynamic adjustment.
    InterWithAdj,
}

impl PolicyKind {
    /// All three, in the paper's comparison order.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::IntraOnly, PolicyKind::InterWithoutAdj, PolicyKind::InterWithAdj]
    }

    /// Display label matching Figure 7.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::IntraOnly => "INTRA-ONLY",
            PolicyKind::InterWithoutAdj => "INTER-W/O-ADJ",
            PolicyKind::InterWithAdj => "INTER-W/-ADJ",
        }
    }

    /// Instantiate the policy for machine `m`. `integral` selects whole
    /// workers (execution engines) vs fractional allocations (analysis).
    pub fn build(&self, m: &MachineConfig, integral: bool) -> Box<dyn SchedulePolicy> {
        match self {
            PolicyKind::IntraOnly => Box::new(IntraOnly::new(m.clone(), integral)),
            PolicyKind::InterWithoutAdj => {
                let mut cfg = AdaptiveConfig::without_adjustment(m.clone());
                cfg.integral = integral;
                Box::new(AdaptiveScheduler::new(cfg))
            }
            PolicyKind::InterWithAdj => {
                let mut cfg = AdaptiveConfig::with_adjustment(m.clone());
                cfg.integral = integral;
                Box::new(AdaptiveScheduler::new(cfg))
            }
        }
    }
}

/// Which engine executes a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// The analytic fluid model (the paper's own cost arithmetic).
    Fluid,
    /// The discrete-event simulator (queues, heads, integer workers).
    Des,
    /// Real threads over real data, optionally throttled to `speedup`×
    /// faster than real time (`None` = unthrottled).
    Threaded {
        /// Time compression factor; `None` runs at full speed.
        speedup: Option<f64>,
    },
}

/// The assembled system: machine + catalog + optimizer.
pub struct XprsSystem {
    machine: MachineConfig,
    catalog: Catalog,
    optimizer: TwoPhaseOptimizer,
}

impl XprsSystem {
    /// A system on the paper's machine with an empty catalog.
    pub fn paper_default() -> Self {
        Self::new(MachineConfig::paper_default())
    }

    /// A system on machine `m`.
    pub fn new(m: MachineConfig) -> Self {
        let mut optimizer = TwoPhaseOptimizer::paper_default();
        optimizer.machine = m.clone();
        optimizer.model.machine = m.clone();
        XprsSystem {
            catalog: Catalog::new(xprs_disk::StripedLayout::new(m.n_disks)),
            machine: m,
            optimizer,
        }
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Mutable catalog access (create/load relations, build indexes).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Read-only catalog access.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The two-phase optimizer (mutable for shape/beam experiments).
    pub fn optimizer_mut(&mut self) -> &mut TwoPhaseOptimizer {
        &mut self.optimizer
    }

    /// Load a generated workload's relations into the catalog.
    pub fn load_workload(&mut self, w: &GeneratedWorkload) {
        w.load_into(&mut self.catalog);
    }

    /// Optimize a query against the catalog.
    ///
    /// # Errors
    /// Propagates the typed [`OptError`] when no plan exists — previously
    /// an optimizer-internal panic.
    pub fn optimize(&self, q: &Query, costing: Costing) -> Result<OptimizedQuery, OptError> {
        self.optimizer.optimize_catalog(&self.catalog, q, costing)
    }

    /// Jointly optimize several queries for multi-user response time (the
    /// Section 5 extension): each query's plan is chosen to minimize the
    /// elapsed time of *all* queries' fragments scheduled together. Returns
    /// the per-query plans and the joint estimate.
    ///
    /// # Errors
    /// Propagates the typed [`OptError`] for an empty batch or a query
    /// with no plan.
    pub fn optimize_joint(&self, queries: &[&Query]) -> Result<(Vec<OptimizedQuery>, f64), OptError> {
        let with_rels: Vec<(&Query, Vec<xprs_optimizer::cost::RelInfo>)> = queries
            .iter()
            .map(|q| (*q, self.optimizer.rel_infos(&self.catalog, q)))
            .collect();
        self.optimizer.optimize_joint(&with_rels)
    }

    /// Derive concrete selection ranges realizing each relation's
    /// selectivity: the query keeps the lowest `selectivity` fraction of the
    /// key domain.
    pub fn bindings(&self, q: &Query) -> Vec<RelBinding> {
        q.rels
            .iter()
            .map(|r| {
                let rel = self
                    .catalog
                    .get(&r.name)
                    .unwrap_or_else(|| panic!("relation {} not in catalog", r.name));
                let s = rel.stats();
                let span = (s.max_a - s.min_a) as f64;
                let hi = if r.selectivity >= 1.0 {
                    s.max_a
                } else {
                    s.min_a + (span * r.selectivity).round() as i32
                };
                RelBinding { name: r.name.clone(), pred: (s.min_a, hi) }
            })
            .collect()
    }

    /// Estimate a task set's elapsed time with the fluid model.
    ///
    /// # Errors
    /// Propagates the typed [`SchedError`] when the policy misbehaves
    /// (diverges, wedges, or issues an invalid action).
    pub fn estimate(
        &self,
        tasks: &[TaskProfile],
        policy: PolicyKind,
    ) -> Result<FluidResult, SchedError> {
        let mut p = policy.build(&self.machine, false);
        FluidSim::new(self.machine.clone()).run(p.as_mut(), tasks)
    }

    /// Measure a task set on the discrete-event simulator. Each profile
    /// becomes a physical scan of its own relation.
    ///
    /// # Errors
    /// Propagates [`SimError`] — the typed scheduler failure plus the
    /// partial statistics up to the failure instant.
    pub fn simulate(
        &self,
        tasks: &[TaskProfile],
        policy: PolicyKind,
    ) -> Result<SimReport, SimError> {
        let params = xprs_disk::DiskParams::from_rates(
            self.machine.seq_bw,
            self.machine.almost_seq_bw,
            self.machine.random_bw,
        );
        let sim_tasks: Vec<(SimTask, f64)> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                (SimTask::from_profile(t.clone(), xprs_disk::RelId(i as u64 + 1), &params), 0.0)
            })
            .collect();
        let mut p = policy.build(&self.machine, true);
        Simulator::new(SimConfig { machine: self.machine.clone(), adjust_latency: 0.005 })
            .run(p.as_mut(), &sim_tasks)
    }

    /// Execute optimized queries on the threaded engine.
    ///
    /// # Errors
    /// Propagates [`ExecError`] — worker panics, channel failures and typed
    /// scheduler misbehaviour — with all workers drained first.
    pub fn execute(
        &self,
        runs: &[(OptimizedQuery, Vec<RelBinding>)],
        policy: PolicyKind,
        speedup: Option<f64>,
    ) -> Result<ExecReport, ExecError> {
        let cfg = match speedup {
            None => ExecConfig::unthrottled(),
            Some(s) => ExecConfig::scaled(s),
        };
        let cfg = ExecConfig { machine: self.machine.clone(), ..cfg };
        let exec = Executor::new(cfg, Arc::new(self.catalog.clone()));
        let runs: Vec<QueryRun> = runs
            .iter()
            .map(|(o, b)| QueryRun { optimized: o.clone(), bindings: b.clone() })
            .collect();
        let mut p = policy.build(&self.machine, true);
        exec.run(&runs, p.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xprs_scheduler::{IoKind, TaskId};
    use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

    fn profiles() -> Vec<TaskProfile> {
        vec![
            TaskProfile::new(TaskId(0), 10.0, 65.0, IoKind::Sequential),
            TaskProfile::new(TaskId(1), 10.0, 8.0, IoKind::Sequential),
        ]
    }

    #[test]
    fn policy_kinds_build_their_named_policies() {
        let m = MachineConfig::paper_default();
        for kind in PolicyKind::all() {
            let p = kind.build(&m, true);
            match kind {
                PolicyKind::IntraOnly => assert_eq!(p.name(), "INTRA-ONLY"),
                PolicyKind::InterWithoutAdj => assert_eq!(p.name(), "INTER-WITHOUT-ADJ"),
                PolicyKind::InterWithAdj => assert_eq!(p.name(), "INTER-WITH-ADJ"),
            }
        }
    }

    #[test]
    fn estimate_and_simulate_agree_qualitatively() {
        let sys = XprsSystem::paper_default();
        let est_intra = sys.estimate(&profiles(), PolicyKind::IntraOnly).expect("fluid").elapsed;
        let est_adj = sys.estimate(&profiles(), PolicyKind::InterWithAdj).expect("fluid").elapsed;
        assert!(est_adj < est_intra);
        let sim_intra = sys.simulate(&profiles(), PolicyKind::IntraOnly).expect("sim").elapsed;
        let sim_adj = sys.simulate(&profiles(), PolicyKind::InterWithAdj).expect("sim").elapsed;
        assert!(sim_adj < sim_intra);
    }

    #[test]
    fn end_to_end_workload_on_the_threaded_engine() {
        let w = WorkloadGenerator::new().generate(&WorkloadConfig {
            kind: WorkloadKind::Extreme,
            n_tasks: 4,
            length: xprs_workload::LengthModel::Tuples { min: 100, max: 800 },
            seed: 9,
        });
        let mut sys = XprsSystem::paper_default();
        sys.load_workload(&w);
        let runs: Vec<_> = w
            .tasks
            .iter()
            .map(|t| {
                let q = Query::selection(&t.relation, 1.0);
                let o = sys.optimize(&q, Costing::SeqCost).expect("plan");
                let b = sys.bindings(&q);
                (o, b)
            })
            .collect();
        let report = sys.execute(&runs, PolicyKind::InterWithAdj, None).expect("exec");
        assert_eq!(report.results.len(), 4);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.rows.rows.len() as u64, w.tasks[i].n_tuples);
        }
    }

    #[test]
    fn bindings_scale_with_selectivity() {
        let w = WorkloadGenerator::new().generate(&WorkloadConfig {
            kind: WorkloadKind::AllCpu,
            n_tasks: 1,
            length: xprs_workload::LengthModel::Tuples { min: 5000, max: 5000 },
            seed: 3,
        });
        let mut sys = XprsSystem::paper_default();
        sys.load_workload(&w);
        let full = Query::selection(&w.tasks[0].relation, 1.0);
        let half = Query::selection(&w.tasks[0].relation, 0.5);
        let bf = sys.bindings(&full)[0].pred;
        let bh = sys.bindings(&half)[0].pred;
        assert!(bh.1 < bf.1);
        assert_eq!(bh.0, bf.0);
    }
}
