//! # xprs
//!
//! The facade crate of the XPRS inter-operation-parallelism reproduction
//! (Wei Hong, *Exploiting Inter-Operation Parallelism in XPRS*, UCB/ERL
//! M92/3, 1992): one entry point over the storage substrate, the two-phase
//! optimizer, the adaptive scheduler, the discrete-event simulator and the
//! multi-threaded executor.
//!
//! ```
//! use xprs::{PolicyKind, XprsSystem};
//! use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};
//!
//! // Generate the paper's "extreme mix" workload and measure all three
//! // scheduling algorithms on the simulated machine.
//! let workload = WorkloadGenerator::new()
//!     .generate(&WorkloadConfig::paper(WorkloadKind::Extreme, 42));
//! let sys = XprsSystem::paper_default();
//! // A misbehaving policy is a typed error, not a panic; the paper's
//! // policies run these workloads to completion.
//! let intra = sys.simulate(&workload.profiles(), PolicyKind::IntraOnly).expect("sim").elapsed;
//! let with_adj =
//!     sys.simulate(&workload.profiles(), PolicyKind::InterWithAdj).expect("sim").elapsed;
//! assert!(with_adj <= intra * 1.01);
//! ```

pub mod system;

pub use system::{Engine, PolicyKind, XprsSystem};

pub use xprs_disk as disk;
pub use xprs_executor as executor;
pub use xprs_optimizer as optimizer;
pub use xprs_scheduler as scheduler;
pub use xprs_sim as sim;
pub use xprs_storage as storage;
pub use xprs_workload as workload;

pub use xprs_optimizer::{Costing, OptError, OptimizedQuery, PlanShape, Query, TwoPhaseOptimizer};
pub use xprs_scheduler::{MachineConfig, TaskId, TaskProfile};
