//! The whole array: one [`DiskState`] per spindle plus aggregate statistics.
//!
//! [`DiskArrayModel`] is the single-owner form used by the discrete-event
//! simulator, which serializes all accesses itself. The threaded executor
//! instead wraps each [`DiskState`] in its own mutex (a disk serves one
//! request at a time, so holding the lock for the scaled service time *is*
//! the disk model) — see `xprs-executor::io`.

use crate::model::{DiskParams, DiskState, IoRequest, RelId, ServiceClass, WorkerId};
use crate::stripe::StripedLayout;

/// Aggregate counters across the array.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ArrayStats {
    /// Requests served in each class: sequential, almost-sequential, random.
    pub sequential: u64,
    /// Almost-sequential count.
    pub almost_sequential: u64,
    /// Random count.
    pub random: u64,
    /// Total busy seconds summed over disks.
    pub busy_time: f64,
}

impl ArrayStats {
    /// All requests served.
    pub fn total(&self) -> u64 {
        self.sequential + self.almost_sequential + self.random
    }

    /// Average delivered bandwidth over `elapsed` seconds, I/Os per second.
    pub fn delivered_rate(&self, elapsed: f64) -> f64 {
        if elapsed > 0.0 {
            self.total() as f64 / elapsed
        } else {
            0.0
        }
    }

    /// Fraction of elapsed disk-seconds spent busy (`n_disks × elapsed`).
    pub fn utilization(&self, n_disks: u32, elapsed: f64) -> f64 {
        if elapsed > 0.0 {
            self.busy_time / (n_disks as f64 * elapsed)
        } else {
            0.0
        }
    }
}

/// A single-owner disk array: striping plus one head state per disk.
#[derive(Debug, Clone)]
pub struct DiskArrayModel {
    layout: StripedLayout,
    disks: Vec<DiskState>,
}

impl DiskArrayModel {
    /// `n_disks` identical disks with parameters `params`.
    pub fn new(n_disks: u32, params: DiskParams) -> Self {
        DiskArrayModel {
            layout: StripedLayout::new(n_disks),
            disks: (0..n_disks).map(|_| DiskState::new(params.clone())).collect(),
        }
    }

    /// The paper's array: 4 disks at 97/60/35 I/Os per second.
    pub fn paper_default() -> Self {
        Self::new(4, DiskParams::paper_default())
    }

    /// The striping layout.
    pub fn layout(&self) -> StripedLayout {
        self.layout
    }

    /// Number of disks.
    pub fn n_disks(&self) -> u32 {
        self.layout.n_disks()
    }

    /// Which disk a request for `(rel, global_block)` is routed to.
    pub fn route(&self, global_block: u64) -> u32 {
        self.layout.disk_of(global_block)
    }

    /// Serve a read of `global_block` of `rel` issued by `worker` (`solo`
    /// marks a parallelism-1 stream — see [`IoRequest::solo`]); returns
    /// `(disk, class, service seconds)`. The caller is responsible for
    /// modelling queueing — this advances head state and statistics only.
    pub fn serve(
        &mut self,
        rel: RelId,
        global_block: u64,
        worker: WorkerId,
        solo: bool,
    ) -> (u32, ServiceClass, f64) {
        let disk = self.layout.disk_of(global_block);
        let req =
            IoRequest { rel, local_block: self.layout.local_block(global_block), worker, solo };
        let (class, dur) = self.disks[disk as usize].serve(&req);
        (disk, class, dur)
    }

    /// Immutable view of one disk's state.
    pub fn disk(&self, disk: u32) -> &DiskState {
        &self.disks[disk as usize]
    }

    /// Mutable view of one disk's state (for owners that route themselves).
    pub fn disk_mut(&mut self, disk: u32) -> &mut DiskState {
        &mut self.disks[disk as usize]
    }

    /// Aggregate statistics over all disks.
    pub fn stats(&self) -> ArrayStats {
        let mut s = ArrayStats::default();
        for d in &self.disks {
            s.sequential += d.count_of(ServiceClass::Sequential);
            s.almost_sequential += d.count_of(ServiceClass::AlmostSequential);
            s.random += d.count_of(ServiceClass::Random);
            s.busy_time += d.busy_time();
        }
        s
    }

    /// Reset all disks to cold state and zero statistics.
    pub fn reset(&mut self) {
        for d in &mut self.disks {
            d.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_route_round_robin() {
        let mut a = DiskArrayModel::paper_default();
        for b in 0..8u64 {
            let (disk, _, _) = a.serve(RelId(1), b, WorkerId(0), true);
            assert_eq!(disk, (b % 4) as u32);
        }
        assert_eq!(a.stats().total(), 8);
    }

    #[test]
    fn solo_scan_achieves_sequential_rate_per_disk() {
        // One worker scanning 400 blocks round-robin: each disk sees local
        // blocks 0..100 in order from the same worker → after its cold first
        // request everything is sequential.
        let mut a = DiskArrayModel::paper_default();
        for b in 0..400u64 {
            a.serve(RelId(1), b, WorkerId(0), true);
        }
        let s = a.stats();
        assert_eq!(s.random, 4); // one cold seek per disk
        assert_eq!(s.sequential, 396);
    }

    #[test]
    fn two_burst_interleaved_scans_are_mostly_random() {
        // Two 2-worker tasks alternate worker-sized bursts on each disk —
        // the pattern parallel scans actually produce — so every burst's
        // requests find their stream's read-ahead evicted.
        let mut a = DiskArrayModel::paper_default();
        for chunk in 0..25u64 {
            for b in 0..8 {
                a.serve(RelId(1), chunk * 8 + b, WorkerId(b % 2), false);
            }
            for b in 0..8 {
                a.serve(RelId(2), chunk * 8 + b, WorkerId(2 + b % 2), false);
            }
        }
        let s = a.stats();
        // Each disk sees two requests per relation per chunk: the first of
        // each pair finds its read-ahead evicted (two foreign requests
        // intervened) and seeks; roughly half of all requests are random.
        assert!(
            s.random as f64 > 0.45 * s.total() as f64,
            "expected heavy seeking, got {s:?}"
        );
        assert!(s.almost_sequential > 0);
    }

    #[test]
    fn stats_rates_and_utilization() {
        let mut a = DiskArrayModel::paper_default();
        for b in 0..400u64 {
            a.serve(RelId(1), b, WorkerId(0), true);
        }
        let s = a.stats();
        // 396 sequential + 4 random ≈ 4.2 s of busy time.
        let expect = 396.0 / 97.0 + 4.0 / 35.0;
        assert!((s.busy_time - expect).abs() < 1e-9);
        // If that work happened over 2 s of wall time on 4 disks:
        assert!((s.utilization(4, 2.0) - expect / 8.0).abs() < 1e-12);
        assert!((s.delivered_rate(2.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_all_disks() {
        let mut a = DiskArrayModel::paper_default();
        for b in 0..40u64 {
            a.serve(RelId(1), b, WorkerId(0), true);
        }
        a.reset();
        assert_eq!(a.stats().total(), 0);
        assert_eq!(a.stats().busy_time, 0.0);
    }
}
