//! Deterministic fault injection for the disk array and the executor.
//!
//! A [`FaultPlan`] is a fixed schedule of faults decided before the run
//! starts: transient read errors keyed by `(relation, block)`, sustained
//! per-disk service-time multipliers keyed by request ordinal, and worker
//! stalls/deaths keyed by `(fragment, slot, units completed)`. Keying every
//! fault to *logical* progress rather than wall-clock time is what makes a
//! plan reproducible across thread interleavings: the same plan against the
//! same query fires the same faults no matter how the OS schedules the
//! workers.
//!
//! The plan is immutable after construction; the only mutable state is the
//! atomic "already fired" bookkeeping, so a single `Arc<FaultPlan>` is
//! shared freely between the master, the machine layer, and every worker.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use crate::model::RelId;

/// What happens to a worker slot when its scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFaultKind {
    /// Fail-stop at a unit boundary: the worker stops pulling units and
    /// never reports a clean exit. Its unfinished partition share must be
    /// reclaimed by the master.
    Death,
    /// The worker freezes for this many wall-clock milliseconds, then
    /// resumes. Long stalls are indistinguishable from death to the
    /// heartbeat monitor — by design.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

/// A worker fault scheduled against logical progress: fires once, the first
/// time worker `slot` of fragment `fragment` has `after_units` or more
/// completed units behind it.
#[derive(Debug)]
struct WorkerFault {
    fragment: usize,
    slot: usize,
    after_units: u64,
    kind: WorkerFaultKind,
    taken: AtomicBool,
}

/// A transient read error: the next `remaining` reads of `(rel, block)`
/// fail, then the block reads cleanly — the classic recoverable-media model.
#[derive(Debug)]
struct ReadError {
    rel: RelId,
    block: u64,
    remaining: AtomicU32,
}

/// A sustained slowdown: from its `after_requests`-th service onward, disk
/// `disk` takes `multiplier`× the modeled service time for every request.
#[derive(Debug)]
struct Slowdown {
    disk: usize,
    after_requests: u64,
    multiplier: f64,
}

/// Counters for how many faults actually fired — tests assert against these
/// so a "survived the chaos" pass cannot silently mean "no chaos happened".
#[derive(Debug, Default)]
pub struct FaultStats {
    read_errors: AtomicU64,
    slow_requests: AtomicU64,
    stalls: AtomicU64,
    deaths: AtomicU64,
}

impl FaultStats {
    /// Transient read errors delivered.
    pub fn read_errors_fired(&self) -> u64 {
        self.read_errors.load(Ordering::Relaxed)
    }

    /// Requests served at a degraded (multiplier > 1) rate.
    pub fn slow_requests(&self) -> u64 {
        self.slow_requests.load(Ordering::Relaxed)
    }

    /// Worker stalls delivered.
    pub fn stalls_fired(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Worker deaths delivered.
    pub fn deaths_fired(&self) -> u64 {
        self.deaths.load(Ordering::Relaxed)
    }
}

/// A deterministic, pre-decided schedule of faults. See the module docs for
/// the determinism argument; construct with the `with_*` builders or
/// [`FaultPlan::seeded`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    read_errors: Vec<ReadError>,
    slowdowns: Vec<Slowdown>,
    worker_faults: Vec<WorkerFault>,
    stats: FaultStats,
}

impl FaultPlan {
    /// An empty plan: injects nothing, every query runs clean.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `count` consecutive transient read failures on one block of
    /// `rel` (global block numbering, as the executor's `Machine` sees it).
    #[must_use]
    pub fn with_read_error(mut self, rel: RelId, block: u64, count: u32) -> Self {
        self.read_errors.push(ReadError { rel, block, remaining: AtomicU32::new(count) });
        self
    }

    /// Schedule a sustained slowdown of `multiplier`× on `disk`, starting at
    /// its `after_requests`-th request and lasting for the rest of the run.
    ///
    /// # Panics
    /// Panics if `multiplier` is not finite and ≥ 1 — a "slowdown" that
    /// speeds the disk up would let a degraded run beat the clean model.
    #[must_use]
    pub fn with_slowdown(mut self, disk: usize, after_requests: u64, multiplier: f64) -> Self {
        assert!(
            multiplier.is_finite() && multiplier >= 1.0,
            "slowdown multiplier must be finite and >= 1, got {multiplier}"
        );
        self.slowdowns.push(Slowdown { disk, after_requests, multiplier });
        self
    }

    /// Schedule a fail-stop death of worker `slot` on fragment `fragment`
    /// once it has completed `after_units` units.
    #[must_use]
    pub fn with_worker_death(mut self, fragment: usize, slot: usize, after_units: u64) -> Self {
        self.worker_faults.push(WorkerFault {
            fragment,
            slot,
            after_units,
            kind: WorkerFaultKind::Death,
            taken: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a `millis`-long stall of worker `slot` on fragment
    /// `fragment` once it has completed `after_units` units.
    #[must_use]
    pub fn with_worker_stall(
        mut self,
        fragment: usize,
        slot: usize,
        after_units: u64,
        millis: u64,
    ) -> Self {
        self.worker_faults.push(WorkerFault {
            fragment,
            slot,
            after_units,
            kind: WorkerFaultKind::Stall { millis },
            taken: AtomicBool::new(false),
        });
        self
    }

    /// Does this plan inject anything at all? An empty plan lets callers
    /// skip fault bookkeeping entirely.
    pub fn is_empty(&self) -> bool {
        self.read_errors.is_empty() && self.slowdowns.is_empty() && self.worker_faults.is_empty()
    }

    /// Consume one transient read error for `(rel, block)` if one is still
    /// pending. Returns `true` exactly `count` times per scheduled error,
    /// across any number of racing readers.
    pub fn take_read_error(&self, rel: RelId, block: u64) -> bool {
        for e in &self.read_errors {
            if e.rel != rel || e.block != block {
                continue;
            }
            // Claim one failure; a concurrent reader may win the race, in
            // which case keep scanning (two specs for one block compose).
            let mut left = e.remaining.load(Ordering::Relaxed);
            while left > 0 {
                match e.remaining.compare_exchange_weak(
                    left,
                    left - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.stats.read_errors.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(cur) => left = cur,
                }
            }
        }
        false
    }

    /// The service-time multiplier for the `request_index`-th request on
    /// `disk` (0-based ordinal of requests that disk has served). Overlapping
    /// slowdowns compound; a clean disk returns exactly 1.0.
    pub fn slowdown_multiplier(&self, disk: usize, request_index: u64) -> f64 {
        let mut mult = 1.0;
        for s in &self.slowdowns {
            if s.disk == disk && request_index >= s.after_requests {
                mult *= s.multiplier;
            }
        }
        if mult > 1.0 {
            self.stats.slow_requests.fetch_add(1, Ordering::Relaxed);
        }
        mult
    }

    /// Fire the pending worker fault for `(fragment, slot)` whose trigger
    /// point `units_done` has reached, if any. Each scheduled fault fires at
    /// most once.
    pub fn take_worker_fault(
        &self,
        fragment: usize,
        slot: usize,
        units_done: u64,
    ) -> Option<WorkerFaultKind> {
        for f in &self.worker_faults {
            if f.fragment != fragment || f.slot != slot || units_done < f.after_units {
                continue;
            }
            if f.taken.swap(true, Ordering::Relaxed) {
                continue;
            }
            match f.kind {
                WorkerFaultKind::Death => self.stats.deaths.fetch_add(1, Ordering::Relaxed),
                WorkerFaultKind::Stall { .. } => self.stats.stalls.fetch_add(1, Ordering::Relaxed),
            };
            return Some(f.kind);
        }
        None
    }

    /// Fired-fault counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// How many faults the plan schedules in total (fired or not).
    pub fn scheduled(&self) -> usize {
        self.read_errors.len() + self.slowdowns.len() + self.worker_faults.len()
    }
}

/// The shape of the system a seeded plan draws its faults against.
#[derive(Debug, Clone)]
pub struct FaultDomain {
    /// Relations that can suffer read errors, with their block counts.
    pub rels: Vec<(RelId, u64)>,
    /// Number of disks in the array.
    pub n_disks: usize,
    /// Number of fragments in the plan under test.
    pub n_fragments: usize,
    /// Upper bound on worker slots per fragment.
    pub max_slots: usize,
}

/// splitmix64 — the standard seed expander; good enough for drawing fault
/// coordinates and fully deterministic.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Draw a random (but fully seed-determined) plan against `domain`:
    /// a handful of transient read errors, up to one sustained slowdown,
    /// and up to two worker faults. The same `(seed, domain)` always yields
    /// the identical plan.
    pub fn seeded(seed: u64, domain: &FaultDomain) -> FaultPlan {
        let mut s = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut plan = FaultPlan::new();
        if domain.rels.is_empty() || domain.n_disks == 0 {
            return plan;
        }
        let n_read_errors = splitmix64(&mut s) % 4; // 0..=3
        for _ in 0..n_read_errors {
            let (rel, blocks) = domain.rels[(splitmix64(&mut s) as usize) % domain.rels.len()];
            if blocks == 0 {
                continue;
            }
            let block = splitmix64(&mut s) % blocks;
            let count = 1 + (splitmix64(&mut s) % 2) as u32; // 1..=2
            plan = plan.with_read_error(rel, block, count);
        }
        if splitmix64(&mut s).is_multiple_of(2) {
            let disk = (splitmix64(&mut s) as usize) % domain.n_disks;
            let after = splitmix64(&mut s) % 32;
            let mult = 2.0 + (splitmix64(&mut s) % 4) as f64; // 2..=5×
            plan = plan.with_slowdown(disk, after, mult);
        }
        if domain.n_fragments > 0 && domain.max_slots > 0 {
            let n_worker_faults = splitmix64(&mut s) % 3; // 0..=2
            for _ in 0..n_worker_faults {
                let fragment = (splitmix64(&mut s) as usize) % domain.n_fragments;
                let slot = (splitmix64(&mut s) as usize) % domain.max_slots;
                let after = splitmix64(&mut s) % 8;
                if splitmix64(&mut s).is_multiple_of(2) {
                    plan = plan.with_worker_death(fragment, slot, after);
                } else {
                    let millis = 5 + splitmix64(&mut s) % 20;
                    plan = plan.with_worker_stall(fragment, slot, after, millis);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RelId = RelId(3);

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(!p.take_read_error(R, 0));
        assert_eq!(p.slowdown_multiplier(0, 100), 1.0);
        assert_eq!(p.take_worker_fault(0, 0, 99), None);
        assert_eq!(p.scheduled(), 0);
    }

    #[test]
    fn read_error_fires_exactly_count_times() {
        let p = FaultPlan::new().with_read_error(R, 7, 2);
        assert!(p.take_read_error(R, 7));
        assert!(p.take_read_error(R, 7));
        assert!(!p.take_read_error(R, 7));
        assert!(!p.take_read_error(R, 8), "other blocks unaffected");
        assert_eq!(p.stats().read_errors_fired(), 2);
    }

    #[test]
    fn read_error_count_holds_under_contention() {
        use std::sync::Arc;
        let p = Arc::new(FaultPlan::new().with_read_error(R, 1, 10));
        let hits: usize = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || (0..100).filter(|_| p.take_read_error(R, 1)).count())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .sum();
        assert_eq!(hits, 10);
    }

    #[test]
    fn slowdown_starts_at_the_chosen_request_and_compounds() {
        let p = FaultPlan::new().with_slowdown(1, 5, 3.0).with_slowdown(1, 10, 2.0);
        assert_eq!(p.slowdown_multiplier(1, 4), 1.0);
        assert_eq!(p.slowdown_multiplier(1, 5), 3.0);
        assert_eq!(p.slowdown_multiplier(1, 10), 6.0);
        assert_eq!(p.slowdown_multiplier(0, 999), 1.0, "other disks clean");
        assert!(p.stats().slow_requests() >= 2);
    }

    #[test]
    #[should_panic(expected = "slowdown multiplier")]
    fn speedup_multipliers_are_rejected() {
        let _ = FaultPlan::new().with_slowdown(0, 0, 0.5);
    }

    #[test]
    fn worker_fault_fires_once_at_its_trigger_point() {
        let p = FaultPlan::new().with_worker_death(2, 1, 3).with_worker_stall(2, 0, 0, 50);
        assert_eq!(p.take_worker_fault(2, 1, 2), None, "not yet due");
        assert_eq!(p.take_worker_fault(2, 1, 3), Some(WorkerFaultKind::Death));
        assert_eq!(p.take_worker_fault(2, 1, 4), None, "already taken");
        assert_eq!(p.take_worker_fault(2, 0, 0), Some(WorkerFaultKind::Stall { millis: 50 }));
        assert_eq!(p.stats().deaths_fired(), 1);
        assert_eq!(p.stats().stalls_fired(), 1);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let domain = FaultDomain {
            rels: vec![(RelId(1), 100), (RelId(2), 50)],
            n_disks: 4,
            n_fragments: 3,
            max_slots: 8,
        };
        let a = FaultPlan::seeded(42, &domain);
        let b = FaultPlan::seeded(42, &domain);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same plan");
        // Some nearby seed must give a different plan (debug repr differs).
        let differs = (0..16_u64)
            .any(|s| format!("{:?}", FaultPlan::seeded(s, &domain)) != format!("{a:?}"));
        assert!(differs, "seeds must actually vary the plan");
    }

    #[test]
    fn seeded_plan_on_empty_domain_is_empty() {
        let domain = FaultDomain { rels: vec![], n_disks: 0, n_fragments: 0, max_slots: 0 };
        assert!(FaultPlan::seeded(7, &domain).is_empty());
    }
}
