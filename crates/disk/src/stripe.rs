//! Round-robin block striping arithmetic.
//!
//! XPRS stripes every relation sequentially, block by block, across the disk
//! array: global block `b` lives on disk `b mod D` at local position
//! `b div D`. All address translation between a relation's global block
//! numbers and per-disk local blocks goes through [`StripedLayout`].

/// Round-robin striping over `n_disks` disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedLayout {
    n_disks: u32,
}

impl StripedLayout {
    /// A layout over `n_disks` disks (must be at least 1).
    pub fn new(n_disks: u32) -> Self {
        assert!(n_disks >= 1, "a disk array needs at least one disk");
        StripedLayout { n_disks }
    }

    /// Number of disks in the array.
    pub fn n_disks(&self) -> u32 {
        self.n_disks
    }

    /// The disk holding global block `block`.
    pub fn disk_of(&self, block: u64) -> u32 {
        (block % self.n_disks as u64) as u32
    }

    /// The local block index of global block `block` on its disk.
    pub fn local_block(&self, block: u64) -> u64 {
        block / self.n_disks as u64
    }

    /// Inverse mapping: the global block at `(disk, local)`.
    pub fn global_block(&self, disk: u32, local: u64) -> u64 {
        local * self.n_disks as u64 + disk as u64
    }

    /// How many of a relation's first `n_blocks` blocks land on `disk`.
    pub fn blocks_on_disk(&self, n_blocks: u64, disk: u32) -> u64 {
        debug_assert!(disk < self.n_disks);
        let d = self.n_disks as u64;
        let full = n_blocks / d;
        let extra = if (n_blocks % d) > disk as u64 { 1 } else { 0 };
        full + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_mapping() {
        let s = StripedLayout::new(4);
        assert_eq!(s.disk_of(0), 0);
        assert_eq!(s.disk_of(5), 1);
        assert_eq!(s.disk_of(7), 3);
        assert_eq!(s.local_block(0), 0);
        assert_eq!(s.local_block(5), 1);
        assert_eq!(s.local_block(8), 2);
    }

    #[test]
    fn global_is_inverse_of_local() {
        let s = StripedLayout::new(4);
        for b in 0..1000u64 {
            assert_eq!(s.global_block(s.disk_of(b), s.local_block(b)), b);
        }
    }

    #[test]
    fn block_counts_per_disk_partition_the_relation() {
        let s = StripedLayout::new(4);
        for n in [0u64, 1, 3, 4, 7, 100, 101, 102, 103] {
            let sum: u64 = (0..4).map(|d| s.blocks_on_disk(n, d)).sum();
            assert_eq!(sum, n);
            // Balanced to within one block.
            let counts: Vec<u64> = (0..4).map(|d| s.blocks_on_disk(n, d)).collect();
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn single_disk_degenerates_to_identity() {
        let s = StripedLayout::new(1);
        assert_eq!(s.disk_of(42), 0);
        assert_eq!(s.local_block(42), 42);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        StripedLayout::new(0);
    }
}
