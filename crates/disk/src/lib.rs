//! # xprs-disk
//!
//! The striped disk-array model of the XPRS testbed.
//!
//! XPRS stripes every relation block-by-block, round-robin, across the disk
//! array to expose maximum I/O bandwidth. The paper measured each disk (after
//! file-system overhead) at three service regimes:
//!
//! | regime            | rate (I/Os per second) | when |
//! |-------------------|------------------------|------|
//! | sequential        | 97                     | one backend reading a relation's blocks in stripe order |
//! | almost sequential | 60                     | several backends of *one* task reading a striped relation — slightly unordered |
//! | random            | 35                     | index-scan pointer chasing, or the head seeking between the block streams of *different* tasks |
//!
//! This crate provides the per-disk service-time classification
//! ([`DiskState`]), the round-robin striping arithmetic ([`StripedLayout`])
//! and aggregated array statistics ([`ArrayStats`]). It deliberately owns no
//! clock and no queues: the discrete-event simulator (`xprs-sim`) and the
//! threaded executor (`xprs-executor`) each impose their own notion of time
//! on the same physics, so the interference effect the paper's Section 2.3
//! models — two interleaved sequential scans degrading the array toward its
//! random bandwidth — *emerges* in both engines rather than being assumed.

pub mod array;
pub mod fault;
pub mod model;
pub mod spill;
pub mod stripe;

pub use array::{ArrayStats, DiskArrayModel};
pub use fault::{FaultDomain, FaultPlan, FaultStats, WorkerFaultKind};
pub use model::{ClassStats, DiskParams, DiskState, IoRequest, RelId, ServiceClass, WorkerId};
pub use spill::{SpillFile, SpillRun, SPILL_BLOCK_BYTES, SPILL_REL_BASE};
pub use stripe::StripedLayout;
