//! Per-disk service-time model.
//!
//! Each disk remembers what it served last. An incoming request is charged
//! the sequential, almost-sequential or random service time depending on how
//! far the head must move and whether the stream it belongs to was
//! interrupted:
//!
//! * **Sequential** — the very next local block of the same relation,
//!   requested by the same worker that the disk served last: the head does
//!   not move and read-ahead hits.
//! * **Almost sequential** — the same relation within a small window of the
//!   last position (forward or backward), or an in-order block arriving from
//!   a *different* worker of the same scan. This is what a multi-backend
//!   parallel scan of one striped relation produces.
//! * **Random** — a different relation, or a jump beyond the window: the
//!   head seeks.
//!
//! The disk keeps a small per-relation *stream memory* (head position plus
//! how long ago the stream was last served). A stream continuation within
//! the reorder window stays almost-sequential when the drive's read-ahead
//! survived the interruption: at most a few requests intervened and none of
//! them was itself a sequential continuation (a raw seek reads through the
//! buffer; another *stream* re-anchors the prefetch and evicts it). The
//! interloper always pays its own seek. Under this rule the array
//! behaviours the paper measures all emerge: a solo backend gets the
//! sequential rate, one parallel scan gets the almost-sequential rate, a
//! dominant scan shrugs off occasional probes, and two comparably-paced
//! scans degrade toward the random rate — the Section 2.3 interference
//! line.

/// Identifies a relation (or any distinct on-disk block stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u64);

/// Identifies the worker (slave backend) issuing a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkerId(pub u64);

/// One block-read request as seen by a single disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Relation the block belongs to.
    pub rel: RelId,
    /// Local block index *on this disk* (global block / number of disks).
    pub local_block: u64,
    /// Issuing worker.
    pub worker: WorkerId,
    /// True when the issuing task runs with parallelism 1. Only a solo
    /// synchronous stream keeps the drive's read-ahead train alive; the
    /// paper observed that "even for parallel sequential scans the reads
    /// may become unordered due to the asynchronousness of the parallel
    /// backends", so parallel scans top out at the almost-sequential rate.
    pub solo: bool,
}

/// How a request was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Head did not move; read-ahead hit.
    Sequential,
    /// Small reorder within one scan.
    AlmostSequential,
    /// Full seek.
    Random,
}

/// Service-time parameters of one disk.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    /// Seconds per sequential I/O (`1/97` on the paper's disks).
    pub seq_service: f64,
    /// Seconds per almost-sequential I/O (`1/60`).
    pub almost_seq_service: f64,
    /// Seconds per random I/O (`1/35`).
    pub random_service: f64,
    /// How far (in local blocks, either direction) a same-relation request
    /// may land from the previous one and still count as almost-sequential.
    pub reorder_window: u64,
    /// How many pure-seek interlopers the read-ahead buffer survives before
    /// a stream continuation must seek again.
    pub absorb_limit: u64,
}

impl DiskParams {
    /// The paper's measured disk: 97 / 60 / 35 I/Os per second.
    pub fn paper_default() -> Self {
        DiskParams {
            seq_service: 1.0 / 97.0,
            almost_seq_service: 1.0 / 60.0,
            random_service: 1.0 / 35.0,
            reorder_window: 16,
            absorb_limit: 4,
        }
    }

    /// Build from the three rates in I/Os per second.
    ///
    /// # Panics
    /// Panics unless `seq_rate >= almost_seq_rate >= random_rate > 0`.
    pub fn from_rates(seq_rate: f64, almost_seq_rate: f64, random_rate: f64) -> Self {
        assert!(
            seq_rate >= almost_seq_rate && almost_seq_rate >= random_rate && random_rate > 0.0,
            "rates must satisfy seq >= almost-seq >= random > 0"
        );
        DiskParams {
            seq_service: 1.0 / seq_rate,
            almost_seq_service: 1.0 / almost_seq_rate,
            random_service: 1.0 / random_rate,
            reorder_window: 16,
            absorb_limit: 4,
        }
    }

    /// The service time charged for `class`.
    pub fn service_time(&self, class: ServiceClass) -> f64 {
        match class {
            ServiceClass::Sequential => self.seq_service,
            ServiceClass::AlmostSequential => self.almost_seq_service,
            ServiceClass::Random => self.random_service,
        }
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Debug, Clone, Copy)]
struct StreamMemo {
    last_local: u64,
    last_worker: WorkerId,
    /// Value of the disk's serve counter when this stream was last served.
    seq: u64,
}

/// Mutable head/stream state of one disk. The owner (simulator thread or the
/// executor's per-disk mutex) must serialize calls to [`DiskState::serve`] —
/// a disk services one request at a time by nature.
#[derive(Debug, Clone)]
pub struct DiskState {
    params: DiskParams,
    streams: std::collections::HashMap<RelId, StreamMemo>,
    served: u64,
    /// Serve counter at the most recent request that was itself a stream
    /// continuation (sequential or almost-sequential class).
    last_continuation: u64,
    /// Cumulative busy seconds, by service class.
    busy: [f64; 3],
    /// Request counts, by service class.
    counts: [u64; 3],
}

impl DiskState {
    /// A cold disk with the given parameters.
    pub fn new(params: DiskParams) -> Self {
        DiskState {
            params,
            streams: std::collections::HashMap::new(),
            served: 0,
            last_continuation: 0,
            busy: [0.0; 3],
            counts: [0; 3],
        }
    }

    /// Classify a request against the disk's stream memory without serving
    /// it (pure; used by tests and by look-ahead heuristics).
    pub fn classify(&self, req: &IoRequest) -> ServiceClass {
        match self.streams.get(&req.rel) {
            None => ServiceClass::Random, // first touch of this stream: seek
            Some(memo) => {
                // Requests for other relations served since this stream's
                // last request. The read-ahead buffer survives a few raw
                // seeks (they read through it) but not another stream's
                // continuation, which re-anchors the prefetch.
                let intervening = self.served - memo.seq;
                let evicted = self.last_continuation > memo.seq
                    || intervening > self.params.absorb_limit;
                let forward_one = req.local_block == memo.last_local + 1;
                if forward_one && memo.last_worker == req.worker && req.solo && intervening == 0 {
                    return ServiceClass::Sequential;
                }
                let dist = req.local_block.abs_diff(memo.last_local);
                if dist <= self.params.reorder_window && !evicted {
                    ServiceClass::AlmostSequential
                } else {
                    ServiceClass::Random
                }
            }
        }
    }

    /// Serve a request: classify it, account the busy time, update the head
    /// position, and return the class and service duration in seconds.
    pub fn serve(&mut self, req: &IoRequest) -> (ServiceClass, f64) {
        self.serve_degraded(req, 1.0)
    }

    /// [`DiskState::serve`] on a degraded disk: the modeled service time is
    /// stretched by `multiplier` (≥ 1), and the stretched time is what the
    /// busy accounting records — so observed per-class rates derived from
    /// `busy_time_of` / `count_of` reflect the slowdown, which is exactly
    /// what degradation-aware recalibration needs to see.
    pub fn serve_degraded(&mut self, req: &IoRequest, multiplier: f64) -> (ServiceClass, f64) {
        let class = self.classify(req);
        let dur = self.params.service_time(class) * multiplier;
        let idx = class_index(class);
        self.busy[idx] += dur;
        self.counts[idx] += 1;
        self.served += 1;
        if class != ServiceClass::Random {
            self.last_continuation = self.served;
        }
        self.streams.insert(
            req.rel,
            StreamMemo { last_local: req.local_block, last_worker: req.worker, seq: self.served },
        );
        (class, dur)
    }

    /// Parameters this disk was built with.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Total seconds spent serving requests.
    pub fn busy_time(&self) -> f64 {
        self.busy.iter().sum()
    }

    /// Seconds spent serving requests of `class`.
    pub fn busy_time_of(&self, class: ServiceClass) -> f64 {
        self.busy[class_index(class)]
    }

    /// Number of requests served in `class`.
    pub fn count_of(&self, class: ServiceClass) -> u64 {
        self.counts[class_index(class)]
    }

    /// Total requests served.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Point-in-time copy of the per-class accounting, for metrics export
    /// and windowed utilization audits (diff two snapshots to isolate what
    /// one pairing window did to this disk).
    pub fn class_stats(&self) -> ClassStats {
        ClassStats { counts: self.counts, busy: self.busy }
    }

    /// Forget the head position and zero the statistics (fresh run).
    pub fn reset(&mut self) {
        self.streams.clear();
        self.served = 0;
        self.last_continuation = 0;
        self.busy = [0.0; 3];
        self.counts = [0; 3];
    }
}

fn class_index(c: ServiceClass) -> usize {
    match c {
        ServiceClass::Sequential => 0,
        ServiceClass::AlmostSequential => 1,
        ServiceClass::Random => 2,
    }
}

/// Plain-old-data snapshot of one disk's per-class request counts and busy
/// seconds, indexed `[sequential, almost_sequential, random]`. Supports
/// window diffs: subtract the snapshot taken at a window's start from the
/// one at its end and the delta is the traffic inside the window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassStats {
    /// Requests served, by service class.
    pub counts: [u64; 3],
    /// Busy seconds, by service class.
    pub busy: [f64; 3],
}

impl ClassStats {
    /// Count for `class`.
    pub fn count_of(&self, class: ServiceClass) -> u64 {
        self.counts[class_index(class)]
    }

    /// Busy seconds for `class`.
    pub fn busy_of(&self, class: ServiceClass) -> f64 {
        self.busy[class_index(class)]
    }

    /// Total requests across classes.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total busy seconds across classes.
    pub fn total_busy(&self) -> f64 {
        self.busy.iter().sum()
    }

    /// What happened since `earlier` (saturating; a mismatched pair
    /// degrades to zeros rather than nonsense).
    pub fn diff(&self, earlier: &ClassStats) -> ClassStats {
        let mut out = ClassStats::default();
        for i in 0..3 {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
            out.busy[i] = (self.busy[i] - earlier.busy[i]).max(0.0);
        }
        out
    }

    /// Element-wise sum (e.g. to aggregate an array of disks).
    pub fn merged(&self, other: &ClassStats) -> ClassStats {
        let mut out = *self;
        for i in 0..3 {
            out.counts[i] += other.counts[i];
            out.busy[i] += other.busy[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskState {
        DiskState::new(DiskParams::paper_default())
    }

    fn req(rel: u64, block: u64, worker: u64) -> IoRequest {
        IoRequest { rel: RelId(rel), local_block: block, worker: WorkerId(worker), solo: true }
    }

    fn preq(rel: u64, block: u64, worker: u64) -> IoRequest {
        IoRequest { rel: RelId(rel), local_block: block, worker: WorkerId(worker), solo: false }
    }

    #[test]
    fn solo_backend_scan_is_sequential_after_warmup() {
        let mut d = disk();
        let (c0, _) = d.serve(&req(1, 0, 0));
        assert_eq!(c0, ServiceClass::Random); // cold seek
        for b in 1..100 {
            let (c, dur) = d.serve(&req(1, b, 0));
            assert_eq!(c, ServiceClass::Sequential);
            assert!((dur - 1.0 / 97.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_scan_of_one_relation_is_almost_sequential() {
        // Two workers of the same task alternate in stripe order: in-order
        // blocks from a different worker are almost-sequential.
        let mut d = disk();
        d.serve(&preq(1, 0, 0));
        let (c, dur) = d.serve(&preq(1, 1, 1));
        assert_eq!(c, ServiceClass::AlmostSequential);
        assert!((dur - 1.0 / 60.0).abs() < 1e-12);
        // Mild reorder from worker skew also stays almost-sequential.
        let (c, _) = d.serve(&preq(1, 3, 0));
        assert_eq!(c, ServiceClass::AlmostSequential);
        let (c, _) = d.serve(&preq(1, 2, 1));
        assert_eq!(c, ServiceClass::AlmostSequential);
        // Even in-order same-worker requests stay almost-sequential while
        // the task is parallel: asynchronous backends defeat read-ahead.
        let (c, _) = d.serve(&preq(1, 3, 1));
        assert_eq!(c, ServiceClass::AlmostSequential);
    }

    #[test]
    fn fine_alternation_makes_one_stream_pay_the_seeks() {
        // Strict ABAB alternation: whichever stream's continuation lands
        // right after a raw seek keeps its read-ahead; the other stream's
        // continuation arrives after a *continuation* and must seek. The
        // pair cannot both ride the buffer — that is the interference.
        let mut d = disk();
        d.serve(&req(1, 0, 0));
        let (c, _) = d.serve(&req(2, 0, 1));
        assert_eq!(c, ServiceClass::Random); // cold stream
        let (c, _) = d.serve(&req(1, 1, 0));
        assert_eq!(c, ServiceClass::AlmostSequential); // after a raw seek
        let (c, _) = d.serve(&req(2, 1, 1));
        assert_eq!(c, ServiceClass::Random); // after a continuation
        let (c, _) = d.serve(&req(1, 2, 0));
        assert_eq!(c, ServiceClass::AlmostSequential);
        let (c, _) = d.serve(&req(2, 2, 1));
        assert_eq!(c, ServiceClass::Random);
    }

    #[test]
    fn bursty_interleaving_of_two_relations_degrades_to_random() {
        // Two or more foreign requests evict the read-ahead: multi-worker
        // tasks interleave in worker-sized bursts and pay full seeks.
        let mut d = disk();
        d.serve(&req(1, 0, 0));
        d.serve(&req(1, 1, 1));
        let mut rand = 0;
        for i in 1..20u64 {
            for w in 0..2 {
                let (c, _) = d.serve(&preq(2, 2 * (i - 1) + w, 2 + w));
                if c == ServiceClass::Random {
                    rand += 1;
                }
            }
            for w in 0..2 {
                let (c, _) = d.serve(&preq(1, 2 * i + w, w));
                if c == ServiceClass::Random {
                    rand += 1;
                }
            }
        }
        // Each burst's first request pays the seek: half of all requests.
        assert!(rand >= 36, "expected heavy seeking, got {rand} random of 76");
    }

    #[test]
    fn dominant_stream_keeps_long_sequential_runs() {
        // 9 requests of task A for every request of task B: only the two
        // requests around each switch pay the seek, matching the paper's
        // ratio-based bandwidth interpolation.
        let mut d = disk();
        let mut a_block = 0;
        d.serve(&req(1, a_block, 0));
        let mut seq = 0;
        let mut rand = 0;
        for b_block in 0..10u64 {
            for _ in 0..9 {
                a_block += 1;
                let (c, _) = d.serve(&req(1, a_block, 0));
                if c == ServiceClass::Sequential {
                    seq += 1;
                } else {
                    rand += 1;
                }
            }
            let (c, _) = d.serve(&req(2, b_block, 1));
            // B returns after nine foreign requests: read-ahead long gone.
            assert_eq!(c, ServiceClass::Random);
        }
        // A single B interloper no longer evicts A's read-ahead: the first
        // A request after each B drops to almost-sequential (counted in
        // `rand` here) rather than a full seek; 9 rounds are interrupted.
        assert_eq!(rand, 9);
        assert_eq!(seq, 81);
    }

    #[test]
    fn far_jump_within_a_relation_is_random() {
        let mut d = disk();
        d.serve(&req(1, 0, 0));
        let (c, _) = d.serve(&req(1, 1000, 0));
        assert_eq!(c, ServiceClass::Random);
    }

    #[test]
    fn busy_accounting_sums_by_class() {
        let mut d = disk();
        d.serve(&req(1, 0, 0)); // random (cold)
        d.serve(&req(1, 1, 0)); // sequential
        d.serve(&req(1, 2, 1)); // almost-seq
        assert_eq!(d.count_of(ServiceClass::Random), 1);
        assert_eq!(d.count_of(ServiceClass::Sequential), 1);
        assert_eq!(d.count_of(ServiceClass::AlmostSequential), 1);
        assert_eq!(d.total_count(), 3);
        let expect = 1.0 / 35.0 + 1.0 / 97.0 + 1.0 / 60.0;
        assert!((d.busy_time() - expect).abs() < 1e-12);
    }

    #[test]
    fn degraded_service_charges_the_stretched_time() {
        let mut d = disk();
        d.serve(&req(1, 0, 0)); // cold seek at nominal speed
        let (c, dur) = d.serve_degraded(&req(1, 1, 0), 3.0);
        assert_eq!(c, ServiceClass::Sequential);
        assert!((dur - 3.0 / 97.0).abs() < 1e-12);
        // Busy accounting carries the stretched time: observed rate drops.
        let expect = 1.0 / 35.0 + 3.0 / 97.0;
        assert!((d.busy_time() - expect).abs() < 1e-12);
        assert_eq!(d.count_of(ServiceClass::Sequential), 1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut d = disk();
        d.serve(&req(1, 0, 0));
        d.serve(&req(1, 1, 0));
        d.reset();
        assert_eq!(d.total_count(), 0);
        assert_eq!(d.busy_time(), 0.0);
        let (c, _) = d.serve(&req(1, 2, 0));
        assert_eq!(c, ServiceClass::Random);
    }

    #[test]
    fn class_stats_snapshot_diff_and_merge() {
        let mut d = disk();
        d.serve(&req(1, 0, 0)); // random (cold)
        let edge = d.class_stats();
        d.serve(&req(1, 1, 0)); // sequential
        d.serve(&req(1, 2, 1)); // almost-seq
        let now = d.class_stats();
        assert_eq!(now.total_count(), d.total_count());
        assert!((now.total_busy() - d.busy_time()).abs() < 1e-12);
        let window = now.diff(&edge);
        assert_eq!(window.counts, [1, 1, 0]);
        assert!((window.busy_of(ServiceClass::Sequential) - 1.0 / 97.0).abs() < 1e-12);
        let doubled = window.merged(&window);
        assert_eq!(doubled.total_count(), 4);
    }

    #[test]
    fn from_rates_validates_ordering() {
        let p = DiskParams::from_rates(100.0, 50.0, 25.0);
        assert!((p.service_time(ServiceClass::Sequential) - 0.01).abs() < 1e-12);
        assert!((p.service_time(ServiceClass::Random) - 0.04).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rates must satisfy")]
    fn from_rates_rejects_inverted_rates() {
        DiskParams::from_rates(35.0, 60.0, 97.0);
    }
}
