//! Spill-file accounting for operators that exceed their memory grant.
//!
//! When a hash build or a worker's sort buffer outgrows the pages the
//! admission layer granted it, the overflow is written out as a sorted
//! *run* and read back later for the k-way merge. This module owns the
//! bookkeeping side of that protocol: which synthetic relation the runs
//! belong to, where each run starts, and how many striped blocks it
//! occupies. The actual service-time physics stay in [`crate::model`] —
//! a spill write or read-back is just another [`crate::IoRequest`]
//! against the array, so spill traffic interferes with concurrent scans
//! exactly the way the paper's Section 2.3 says it must.

use crate::model::RelId;

/// Spill relations live in an id range no catalog relation can reach
/// (the catalog hands out small incrementing ids), so a spill request is
/// distinguishable in traces and can never alias a heap relation.
pub const SPILL_REL_BASE: u64 = 1 << 32;

/// Spill files use the same 8 KB block granularity as heap pages.
pub const SPILL_BLOCK_BYTES: u64 = 8192;

/// One sorted run written by a worker that overflowed its grant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillRun {
    /// First block of the run within its spill file.
    pub start: u64,
    /// Blocks the run occupies (always at least one).
    pub blocks: u64,
    /// Rows in the run.
    pub rows: u64,
}

/// Per-worker spill file: an append-only sequence of sorted runs.
///
/// A file is identified by a synthetic [`RelId`] derived from the owning
/// fragment and worker slot, so each worker appends to its own stream and
/// run writes from different workers never contend for a tail pointer.
#[derive(Debug, Clone)]
pub struct SpillFile {
    rel: RelId,
    next_block: u64,
    runs: Vec<SpillRun>,
}

impl SpillFile {
    /// A fresh spill file for `worker` of `fragment`.
    pub fn new(fragment: u64, worker: u64) -> Self {
        SpillFile {
            rel: RelId(SPILL_REL_BASE | (fragment << 16) | (worker & 0xFFFF)),
            next_block: 0,
            runs: Vec::new(),
        }
    }

    /// The synthetic relation id spill I/O is issued under.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// Record a run of `rows` rows totalling `bytes` bytes; returns the
    /// run's block extent for charging the write to the disk array.
    pub fn append(&mut self, rows: u64, bytes: u64) -> SpillRun {
        let blocks = bytes.div_ceil(SPILL_BLOCK_BYTES).max(1);
        let run = SpillRun { start: self.next_block, blocks, rows };
        self.next_block += blocks;
        self.runs.push(run.clone());
        run
    }

    /// Runs in append order.
    pub fn runs(&self) -> &[SpillRun] {
        &self.runs
    }

    /// Total blocks written to this file.
    pub fn total_blocks(&self) -> u64 {
        self.next_block
    }

    /// Total rows across all runs.
    pub fn total_rows(&self) -> u64 {
        self.runs.iter().map(|r| r.rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_contiguous_and_block_rounded() {
        let mut f = SpillFile::new(3, 1);
        let a = f.append(100, 8192);
        let b = f.append(50, 8193);
        let c = f.append(1, 10);
        assert_eq!(a, SpillRun { start: 0, blocks: 1, rows: 100 });
        assert_eq!(b, SpillRun { start: 1, blocks: 2, rows: 50 });
        assert_eq!(c, SpillRun { start: 3, blocks: 1, rows: 1 });
        assert_eq!(f.total_blocks(), 4);
        assert_eq!(f.total_rows(), 151);
        assert_eq!(f.runs().len(), 3);
    }

    #[test]
    fn spill_rel_ids_cannot_alias_catalog_relations() {
        let f = SpillFile::new(0, 0);
        assert!(f.rel().0 >= SPILL_REL_BASE);
        let g = SpillFile::new(7, 3);
        assert_ne!(f.rel(), g.rel());
        assert_ne!(SpillFile::new(7, 4).rel(), g.rel());
    }

    #[test]
    fn empty_file_accounts_to_zero() {
        let f = SpillFile::new(1, 2);
        assert_eq!(f.total_blocks(), 0);
        assert_eq!(f.total_rows(), 0);
        assert!(f.runs().is_empty());
    }
}
