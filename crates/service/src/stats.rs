//! Per-class service counters and latency histograms.
//!
//! Everything here is lock-free (`xprs-obs` atomics) so runner threads and
//! the submission path can record outcomes without serializing on a stats
//! mutex, and an observer can snapshot mid-flight without stopping traffic.

use xprs_obs::{Counter, HistSnapshot, Histogram};
use xprs_workload::QueryClass;

/// Counters and latency distributions for one service class.
#[derive(Debug, Default)]
pub struct ClassStats {
    /// Requests accepted into the queue.
    pub submitted: Counter,
    /// Requests that ran to completion before their deadline.
    pub completed: Counter,
    /// Requests refused at the door with [`crate::ServiceError::Overloaded`].
    pub shed: Counter,
    /// Requests cancelled by their deadline (queued or mid-run).
    pub deadline_cancelled: Counter,
    /// Requests that failed inside the executor.
    pub failed: Counter,
    /// End-to-end latency (submit → outcome) in microseconds, for every
    /// request that was admitted (completed, cancelled, or failed).
    pub latency_us: Histogram,
    /// Time spent waiting in the admission queue, in microseconds.
    pub queue_wait_us: Histogram,
}

impl ClassStats {
    fn new() -> Self {
        Self::default()
    }

    /// Admitted requests whose outcome has not yet been recorded.
    pub fn in_flight(&self) -> u64 {
        self.submitted.get()
            - self.completed.get()
            - self.deadline_cancelled.get()
            - self.failed.get()
    }
}

/// Service-wide statistics, one [`ClassStats`] per [`QueryClass`].
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Short lookups with tight deadlines.
    pub interactive: ClassStats,
    /// Long scans with generous deadlines.
    pub batch: ClassStats,
}

impl ServiceStats {
    pub(crate) fn new() -> Self {
        ServiceStats { interactive: ClassStats::new(), batch: ClassStats::new() }
    }

    /// The stats bucket for `class`.
    pub fn class(&self, class: QueryClass) -> &ClassStats {
        match class {
            QueryClass::Interactive => &self.interactive,
            QueryClass::Batch => &self.batch,
        }
    }

    /// Total requests shed across classes.
    pub fn total_shed(&self) -> u64 {
        self.interactive.shed.get() + self.batch.shed.get()
    }

    /// Latency snapshot for `class` (microsecond buckets).
    pub fn latency_snapshot(&self, class: QueryClass) -> HistSnapshot {
        self.class(class).latency_us.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_counts_admitted_minus_settled() {
        let s = ServiceStats::new();
        s.interactive.submitted.add(5);
        s.interactive.completed.add(2);
        s.interactive.deadline_cancelled.inc();
        s.interactive.failed.inc();
        assert_eq!(s.interactive.in_flight(), 1);
        // Shed requests were never admitted, so they do not affect in-flight.
        s.interactive.shed.add(10);
        assert_eq!(s.interactive.in_flight(), 1);
        assert_eq!(s.total_shed(), 10);
    }

    #[test]
    fn class_lookup_routes_to_the_right_bucket() {
        let s = ServiceStats::new();
        s.class(QueryClass::Batch).submitted.inc();
        assert_eq!(s.batch.submitted.get(), 1);
        assert_eq!(s.interactive.submitted.get(), 0);
    }
}
