//! The continuous query service: a bounded admission queue in front of a
//! pool of runner threads sharing one [`ExecSession`].
//!
//! Flow of a request (DESIGN.md §15):
//!
//! 1. **Door** — [`QueryService::submit`] either enqueues the request or
//!    refuses it with a typed [`ServiceError::Overloaded`] carrying a
//!    `retry_after` hint. The queue is the *only* buffer in the service and
//!    it is bounded, so offered load beyond capacity turns into shed
//!    responses, never unbounded memory growth.
//! 2. **Deadline** — the per-class deadline starts at submit time, so
//!    queue wait counts against it (a request that waits out its whole
//!    deadline in the queue is cancelled without ever running).
//! 3. **Run** — a runner thread executes the query via
//!    [`Executor::run_shared`] against the shared session; the executor's
//!    memory-grant admission arbitrates buffer-pool capacity *within* the
//!    concurrency the service allows, and the request's
//!    [`CancelToken`] stops workers at unit/morsel boundaries when the
//!    deadline fires mid-run.
//! 4. **Outcome** — completion, deadline cancellation, or typed failure is
//!    recorded in [`ServiceStats`] and delivered to the caller's
//!    [`Ticket`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xprs_executor::{CancelToken, ExecConfig, ExecSession, Executor, QueryRun};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_storage::Catalog;
use xprs_workload::QueryClass;

use crate::stats::ServiceStats;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission-queue capacity. A submit that finds the queue full is
    /// shed with [`ServiceError::Overloaded`]. This is the service's only
    /// buffer: nothing else in the pipeline grows with offered load.
    pub queue_cap: usize,
    /// Runner threads — queries executing concurrently against the shared
    /// session. The executor's memory grants arbitrate the buffer pool
    /// among them.
    pub max_concurrent: usize,
    /// Deadline for [`QueryClass::Interactive`] requests, measured from
    /// submit (queue wait included).
    pub interactive_deadline: Duration,
    /// Deadline for [`QueryClass::Batch`] requests, measured from submit.
    pub batch_deadline: Duration,
    /// Executor configuration shared by every run (machine model, faults,
    /// grants, patrol cadence).
    pub exec: ExecConfig,
}

impl ServiceConfig {
    /// A service tuned for functional tests: small queue, two runners,
    /// generous deadlines, unthrottled executor with memory grants and a
    /// tight patrol (the service always wants cross-run admission retries
    /// and dead-worker recovery).
    pub fn quick() -> Self {
        let mut exec = ExecConfig::unthrottled().with_memory_grants().with_patrol(2, 3);
        // Recalibration is safe under a shared machine now that the patrol
        // attributes cross-run contention (the interference factor scales
        // the observed rate by the number of active runs before the drift
        // test) and clamps each correction step, so one noisy per-run
        // window can no longer destabilize the balance-point fixpoint
        // (DESIGN.md §15.4). The wide band keeps recalibration reserved
        // for genuine sustained degradation; deadlines and shedding still
        // handle ordinary load.
        exec.recal_band = 0.5;
        ServiceConfig {
            queue_cap: 16,
            max_concurrent: 2,
            interactive_deadline: Duration::from_secs(10),
            batch_deadline: Duration::from_secs(30),
            exec,
        }
    }

    fn deadline_for(&self, class: QueryClass) -> Duration {
        match class {
            QueryClass::Interactive => self.interactive_deadline,
            QueryClass::Batch => self.batch_deadline,
        }
    }
}

/// Typed refusal or failure at the submission door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The admission queue is full. `retry_after` is the service's own
    /// estimate of when capacity frees up (current queue depth times the
    /// smoothed per-query service time, divided across runners) — a
    /// well-behaved client backs off at least this long.
    Overloaded {
        /// Suggested client back-off before resubmitting.
        retry_after: Duration,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { retry_after } => {
                write!(f, "service overloaded; retry after {retry_after:?}")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// How an admitted request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStatus {
    /// Ran to completion; `rows` result tuples were produced.
    Completed {
        /// Result tuples in the root fragment's output.
        rows: u64,
    },
    /// The per-class deadline fired (in the queue or mid-run) and the
    /// query was cooperatively cancelled; its grant, pins and partition
    /// shares were released.
    DeadlineCancelled,
    /// The executor refused or aborted the run; the rendered error.
    Failed {
        /// Display-rendered [`xprs_executor::ExecError`].
        error: String,
    },
}

/// The settled outcome of one admitted request.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Tenant that submitted the request.
    pub tenant: u32,
    /// Service class it was submitted under.
    pub class: QueryClass,
    /// End-to-end latency: submit → outcome recorded.
    pub latency: Duration,
    /// Portion of `latency` spent waiting in the admission queue.
    pub queue_wait: Duration,
    /// Terminal status.
    pub status: QueryStatus,
}

/// One admitted request: what to run and for whom.
#[derive(Debug)]
pub struct QueryRequest {
    /// Submitting tenant (index into the arrival spec).
    pub tenant: u32,
    /// Service class — selects the deadline and the stats bucket.
    pub class: QueryClass,
    /// The optimized query and its bindings.
    pub run: QueryRun,
}

/// Claim check for an admitted request. Dropping the ticket abandons the
/// outcome but never the query — the runner still settles it and records
/// stats (a disconnected client must not leak grants or skew counters).
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<QueryOutcome>,
    token: CancelToken,
}

impl Ticket {
    /// Block until the request settles.
    pub fn wait(self) -> QueryOutcome {
        self.rx.recv().expect("runner settles every admitted job before exiting")
    }

    /// Poll for the outcome without blocking.
    pub fn try_wait(&self) -> Option<QueryOutcome> {
        self.rx.try_recv().ok()
    }

    /// Cancel the request from the client side (same path as the
    /// deadline): queued → retired unrun, running → cooperative stop.
    pub fn cancel(&self) {
        self.token.cancel();
    }
}

/// One queue entry.
struct Job {
    req: QueryRequest,
    token: CancelToken,
    submitted_at: Instant,
    resp: mpsc::Sender<QueryOutcome>,
}

/// State shared between the submission path and the runner threads.
struct Shared {
    cfg: ServiceConfig,
    catalog: Arc<Catalog>,
    session: ExecSession,
    queue: Mutex<VecDeque<Job>>,
    work: Condvar,
    stopping: AtomicBool,
    stats: ServiceStats,
    /// Exponentially-smoothed per-query service time, in nanoseconds.
    /// Seeds the `retry_after` hint; 0 until the first completion.
    ema_service_nanos: AtomicU64,
}

impl Shared {
    /// Fold one observed run time into the smoothed service time
    /// (α = 1/8, integer arithmetic — this is a hint, not a measurement).
    fn note_service_time(&self, run: Duration) {
        let sample = run.as_nanos().min(u64::MAX as u128) as u64;
        let old = self.ema_service_nanos.load(Ordering::Relaxed);
        let new = if old == 0 { sample } else { old - old / 8 + sample / 8 };
        self.ema_service_nanos.store(new, Ordering::Relaxed);
    }

    /// Back-off hint for a shed request: the queue ahead of the client,
    /// served at the smoothed rate across all runners. Clamped to
    /// [1 ms, 5 s] so a cold or pathological estimate stays sane.
    fn retry_after(&self, queue_len: usize) -> Duration {
        let ema = self.ema_service_nanos.load(Ordering::Relaxed);
        let per_query = if ema == 0 { 10_000_000 } else { ema }; // cold: assume 10 ms
        let runners = self.cfg.max_concurrent.max(1) as u64;
        let nanos = per_query.saturating_mul(queue_len as u64 + 1) / runners;
        Duration::from_nanos(nanos).clamp(Duration::from_millis(1), Duration::from_secs(5))
    }
}

/// The long-running query service. See the module docs for the pipeline.
pub struct QueryService {
    shared: Arc<Shared>,
    runners: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Start the service: build the shared executor session (one machine,
    /// one buffer pool, one worker pool) and spawn `max_concurrent` runner
    /// threads.
    pub fn start(cfg: ServiceConfig, catalog: Arc<Catalog>) -> Self {
        assert!(cfg.queue_cap > 0, "a service needs a queue");
        assert!(cfg.max_concurrent > 0, "a service needs at least one runner");
        let session = Executor::new(cfg.exec.clone(), catalog.clone()).session();
        let shared = Arc::new(Shared {
            cfg,
            catalog,
            session,
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            stopping: AtomicBool::new(false),
            stats: ServiceStats::new(),
            ema_service_nanos: AtomicU64::new(0),
        });
        let runners = (0..shared.cfg.max_concurrent)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("svc-runner-{i}"))
                    .spawn(move || runner_loop(&shared))
                    .expect("spawn service runner")
            })
            .collect();
        QueryService { shared, runners }
    }

    /// Submit a request. Admission is all-or-nothing: either the request
    /// is queued with its deadline already ticking and a [`Ticket`] is
    /// returned, or it is shed with a typed error and the service retains
    /// nothing.
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, ServiceError> {
        if self.shared.stopping.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let class = req.class;
        let token = CancelToken::with_deadline(self.shared.cfg.deadline_for(class));
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("service queue poisoned");
            if q.len() >= self.shared.cfg.queue_cap {
                drop(q);
                self.shared.stats.class(class).shed.inc();
                let depth = self.shared.cfg.queue_cap;
                return Err(ServiceError::Overloaded {
                    retry_after: self.shared.retry_after(depth),
                });
            }
            q.push_back(Job {
                req,
                token: token.clone(),
                submitted_at: Instant::now(),
                resp: tx,
            });
        }
        self.shared.stats.class(class).submitted.inc();
        self.shared.work.notify_one();
        Ok(Ticket { rx, token })
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("service queue poisoned").len()
    }

    /// Live service counters and latency histograms.
    pub fn stats(&self) -> &ServiceStats {
        &self.shared.stats
    }

    /// Buffer-pool pages currently reserved by memory grants across the
    /// shared session. Zero once the service is idle — anything else is a
    /// grant leak.
    pub fn reserved_pages(&self) -> u64 {
        self.shared.session.reserved_pages()
    }

    /// Buffer-pool pages currently pinned across the shared session. Zero
    /// once the service is idle — anything else is a pin leak.
    pub fn pinned_pages(&self) -> u64 {
        self.shared.session.pinned_pages()
    }

    /// Stop accepting work, drain the queue (queued jobs still run, or are
    /// retired by their deadlines), join every runner, and shut the shared
    /// worker pool down. Idempotent via the runners' own exit protocol.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.work.notify_all();
        for r in self.runners.drain(..) {
            let _ = r.join();
        }
        self.shared.session.shutdown();
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // A dropped service behaves like shutdown(): no hung runner
        // threads, no leaked worker pool.
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.work.notify_all();
        for r in self.runners.drain(..) {
            let _ = r.join();
        }
        self.shared.session.shutdown();
    }
}

/// Runner thread: pop → run (or retire) → settle, until the service stops
/// and the queue is drained.
fn runner_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("service queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.stopping.load(Ordering::Acquire) {
                    return;
                }
                q = shared
                    .work
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("service queue poisoned")
                    .0;
            }
        };
        settle(shared, job);
    }
}

/// Execute (or retire) one admitted job and record its outcome.
fn settle(shared: &Shared, job: Job) {
    let Job { req, token, submitted_at, resp } = job;
    let queue_wait = submitted_at.elapsed();
    let class_stats = shared.stats.class(req.class);
    class_stats.queue_wait_us.observe(queue_wait.as_micros().min(u64::MAX as u128) as u64);

    // Deadline (or client cancel) fired while the job sat in the queue:
    // retire it without staffing anything.
    let status = if token.is_cancelled() {
        QueryStatus::DeadlineCancelled
    } else {
        let exec = Executor::new(shared.cfg.exec.clone(), shared.catalog.clone());
        let mut policy =
            AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(shared.cfg.exec.machine.clone()));
        let run_start = Instant::now();
        match exec.run_shared(&shared.session, &[req.run], &mut policy, std::slice::from_ref(&token))
        {
            Ok(report) => {
                shared.note_service_time(run_start.elapsed());
                if report.cancelled.first().copied().unwrap_or(false) {
                    QueryStatus::DeadlineCancelled
                } else {
                    let rows =
                        report.results.first().map_or(0, |r| r.rows.rows.len() as u64);
                    QueryStatus::Completed { rows }
                }
            }
            Err(e) => QueryStatus::Failed { error: e.to_string() },
        }
    };

    let latency = submitted_at.elapsed();
    class_stats.latency_us.observe(latency.as_micros().min(u64::MAX as u128) as u64);
    match &status {
        QueryStatus::Completed { .. } => class_stats.completed.inc(),
        QueryStatus::DeadlineCancelled => class_stats.deadline_cancelled.inc(),
        QueryStatus::Failed { .. } => class_stats.failed.inc(),
    }
    // The client may have dropped its ticket; the outcome is already in
    // the stats, so a dead receiver is not an error.
    let _ = resp.send(QueryOutcome {
        tenant: req.tenant,
        class: req.class,
        latency,
        queue_wait,
        status,
    });
}
