//! # xprs-service
//!
//! A long-running, overload-safe **continuous query service** over the
//! XPRS executor. Batch runs (`Executor::run`) assume a closed world: a
//! fixed query list, one caller, and however long it takes. A service
//! faces the opposite regime — an open-loop arrival stream
//! ([`xprs_workload::generate_arrivals`]) from many tenants that keeps
//! offering load whether or not the machine can absorb it. This crate
//! supplies the four mechanisms that regime needs:
//!
//! * **Bounded admission** — one bounded queue in front of the runners;
//!   a full queue sheds with the typed
//!   [`ServiceError::Overloaded`]`{ retry_after }` instead of buffering
//!   without limit.
//! * **Deadlines from submit time** — each class
//!   ([`xprs_workload::QueryClass`]) carries a deadline that starts
//!   ticking at the door, so queue wait counts against it.
//! * **Cooperative cancellation** — a fired deadline stops the query's
//!   workers at unit/morsel boundaries via
//!   [`xprs_executor::CancelToken`], releasing its memory grant, buffer
//!   pins and partition shares exactly once (the service exposes the
//!   [`QueryService::reserved_pages`]/[`QueryService::pinned_pages`]
//!   ledgers so tests and CI can prove it).
//! * **Graceful degradation** — injected worker deaths and disk
//!   slowdowns (via the executor's fault plan and heartbeat patrol) show
//!   up as bounded per-tenant latency inflation and shed counters in
//!   [`ServiceStats`], never a hung service or a leaked grant.

pub mod service;
pub mod stats;

pub use service::{
    QueryOutcome, QueryRequest, QueryService, QueryStatus, ServiceConfig, ServiceError, Ticket,
};
pub use stats::{ClassStats, ServiceStats};
