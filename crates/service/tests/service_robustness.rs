//! Robustness tests for the continuous query service: uncontended traffic
//! completes without shedding, overload sheds with a typed error, mass
//! deadline cancellation leaks nothing, and injected faults degrade the
//! service gracefully instead of hanging it.

use std::sync::Arc;
use std::time::Duration;

use xprs_disk::{FaultPlan, StripedLayout};
use xprs_executor::{ExecConfig, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_service::{QueryRequest, QueryService, QueryStatus, ServiceConfig, ServiceError};
use xprs_storage::{Catalog, Datum, Schema, Tuple};
use xprs_workload::QueryClass;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0x5E2F_u64;
    for (name, n, key_mod, blen) in [
        ("fat", 300u64, 100u64, 800usize), // ~10 tuples per page: IO-heavy
        ("thin", 2000, 150, 16),           // many tuples per page: CPU-heavy
    ] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let a = (lcg(&mut seed) % key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(blen))])
            })
            .collect();
        cat.load(name, rows);
        cat.build_index(name, false);
    }
    Arc::new(cat)
}

/// Interactive template: narrow-predicate lookup on the CPU-light relation.
fn lookup(cat: &Arc<Catalog>) -> QueryRun {
    let q = Query::selection("thin", 1.0);
    QueryRun {
        optimized: TwoPhaseOptimizer::paper_default()
            .optimize_catalog(cat, &q, Costing::SeqCost)
            .expect("plan"),
        bindings: vec![RelBinding { name: "thin".into(), pred: (0, 20) }],
    }
}

/// Batch template: full two-way join (build + probe fragments).
fn scan_join(cat: &Arc<Catalog>) -> QueryRun {
    let q = Query::join().rel("fat", 1.0).rel("thin", 1.0).on(0, 1).build();
    QueryRun {
        optimized: TwoPhaseOptimizer::paper_default()
            .optimize_catalog(cat, &q, Costing::SeqCost)
            .expect("plan"),
        bindings: vec![
            RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) },
            RelBinding { name: "thin".into(), pred: (i32::MIN, i32::MAX) },
        ],
    }
}

fn req(cat: &Arc<Catalog>, tenant: u32, class: QueryClass) -> QueryRequest {
    QueryRequest {
        tenant,
        class,
        run: match class {
            QueryClass::Interactive => lookup(cat),
            QueryClass::Batch => scan_join(cat),
        },
    }
}

#[test]
fn uncontended_traffic_completes_with_zero_shed_and_clean_ledgers() {
    let cat = catalog();
    let svc = QueryService::start(ServiceConfig::quick(), cat.clone());

    let tickets: Vec<_> = (0..12)
        .map(|i| {
            let class =
                if i % 3 == 0 { QueryClass::Batch } else { QueryClass::Interactive };
            svc.submit(req(&cat, i % 4, class)).expect("uncontended submit must admit")
        })
        .collect();
    for t in tickets {
        let out = t.wait();
        match out.status {
            QueryStatus::Completed { rows } => {
                assert!(rows > 0, "templates select real tuples");
            }
            other => panic!("uncontended query must complete, got {other:?}"),
        }
        assert!(out.latency >= out.queue_wait);
    }

    let stats = svc.stats();
    assert_eq!(stats.total_shed(), 0, "uncontended phase must not shed");
    assert_eq!(stats.interactive.completed.get() + stats.batch.completed.get(), 12);
    assert_eq!(stats.interactive.in_flight(), 0);
    assert_eq!(stats.batch.in_flight(), 0);
    assert_eq!(svc.reserved_pages(), 0, "grant ledger must balance at idle");
    assert_eq!(svc.pinned_pages(), 0, "pin ledger must balance at idle");
    svc.shutdown();
}

#[test]
fn full_queue_sheds_typed_overload_with_backoff_hint() {
    let cat = catalog();
    // One runner, a two-slot queue, and throttled execution (~25x real
    // time) so runs take long enough for the flood to pile up.
    let cfg = ServiceConfig {
        queue_cap: 2,
        max_concurrent: 1,
        interactive_deadline: Duration::from_secs(30),
        batch_deadline: Duration::from_secs(30),
        exec: ExecConfig::scaled(25.0).with_memory_grants().with_patrol(2, 3),
    };
    let svc = QueryService::start(cfg, cat.clone());

    let mut admitted = Vec::new();
    let mut shed = 0u32;
    for i in 0..20 {
        match svc.submit(req(&cat, i % 4, QueryClass::Batch)) {
            Ok(t) => admitted.push(t),
            Err(ServiceError::Overloaded { retry_after }) => {
                shed += 1;
                assert!(
                    retry_after >= Duration::from_millis(1)
                        && retry_after <= Duration::from_secs(5),
                    "retry_after hint out of band: {retry_after:?}"
                );
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(shed > 0, "a 2-slot queue flooded with 20 jobs must shed");
    assert_eq!(svc.stats().batch.shed.get(), shed as u64);
    assert_eq!(svc.stats().batch.submitted.get() + shed as u64, 20);

    // Every admitted job still settles — shedding never strands a ticket.
    for t in admitted {
        let out = t.wait();
        assert!(
            matches!(out.status, QueryStatus::Completed { .. }),
            "admitted job must complete, got {:?}",
            out.status
        );
    }
    assert_eq!(svc.reserved_pages(), 0);
    assert_eq!(svc.pinned_pages(), 0);
    svc.shutdown();
}

#[test]
fn deadlines_cancel_queued_and_running_without_leaking() {
    let cat = catalog();
    // Throttled runs with a deadline far shorter than a join's runtime:
    // the head-of-line jobs are cancelled mid-run, the tail is cancelled
    // while still queued (queue wait counts against the deadline).
    let cfg = ServiceConfig {
        queue_cap: 16,
        max_concurrent: 2,
        interactive_deadline: Duration::from_millis(40),
        batch_deadline: Duration::from_secs(30),
        exec: ExecConfig::scaled(25.0).with_memory_grants().with_patrol(2, 3),
    };
    let svc = QueryService::start(cfg, cat.clone());

    let tickets: Vec<_> = (0..8)
        .map(|i| {
            // Batch-weight work submitted under the interactive deadline.
            let mut r = req(&cat, i % 4, QueryClass::Batch);
            r.class = QueryClass::Interactive;
            svc.submit(r).expect("queue has room")
        })
        .collect();
    let mut cancelled = 0;
    for t in tickets {
        match t.wait().status {
            QueryStatus::DeadlineCancelled => cancelled += 1,
            QueryStatus::Completed { .. } => {}
            QueryStatus::Failed { error } => panic!("deadline must cancel, not fail: {error}"),
        }
    }
    assert!(cancelled > 0, "a 40 ms deadline on throttled joins must fire");
    assert_eq!(svc.stats().interactive.deadline_cancelled.get(), cancelled);

    // Mass cancellation must leave the ledgers balanced and the service
    // alive: a fresh, generously-deadlined query still completes.
    assert_eq!(svc.reserved_pages(), 0, "cancellation leaked a memory grant");
    assert_eq!(svc.pinned_pages(), 0, "cancellation leaked a buffer pin");
    let out = svc.submit(req(&cat, 0, QueryClass::Batch)).expect("service still admits").wait();
    assert!(
        matches!(out.status, QueryStatus::Completed { .. }),
        "service must keep serving after mass cancellation, got {:?}",
        out.status
    );
    svc.shutdown();
}

#[test]
fn client_cancel_rides_the_same_path_as_deadlines() {
    let cat = catalog();
    let svc = QueryService::start(ServiceConfig::quick(), cat.clone());
    let t = svc.submit(req(&cat, 0, QueryClass::Batch)).expect("admit");
    t.cancel();
    // Cancel is cooperative: the job settles as cancelled (if caught
    // before/mid-run) or completed (if it already finished) — never hangs.
    let out = t.wait();
    assert!(
        matches!(out.status, QueryStatus::DeadlineCancelled | QueryStatus::Completed { .. }),
        "client cancel must settle cleanly, got {:?}",
        out.status
    );
    assert_eq!(svc.reserved_pages(), 0);
    assert_eq!(svc.pinned_pages(), 0);
    svc.shutdown();
}

#[test]
fn shutdown_rejects_new_work_and_drains_admitted_jobs() {
    let cat = catalog();
    let svc = QueryService::start(ServiceConfig::quick(), cat.clone());
    let t = svc.submit(req(&cat, 0, QueryClass::Interactive)).expect("admit");
    let out = t.wait();
    assert!(matches!(out.status, QueryStatus::Completed { .. }));
    svc.shutdown();
}

#[test]
fn service_degrades_gracefully_under_worker_death_and_disk_slowdown() {
    let cat = catalog();
    // A worker death early in every run's fragment 0 plus a sustained 4x
    // slowdown on disk 0: traffic keeps flowing, every job settles, and
    // the ledgers still balance.
    let plan = Arc::new(
        FaultPlan::new().with_worker_death(0, 0, 3).with_slowdown(0, 20, 4.0),
    );
    let exec = ExecConfig::unthrottled()
        .with_memory_grants()
        .with_faults(plan.clone())
        .with_patrol(2, 3)
        // Recalibration stays ON under the shared session: the patrol now
        // divides the observed slowdown by the cross-run interference
        // factor and clamps each correction step, so concurrent runs must
        // not wedge the policy into FixpointDiverged (every Failed
        // outcome below is a regression of that fix).
        .with_recalibration(0.5);
    let cfg = ServiceConfig {
        queue_cap: 32,
        max_concurrent: 2,
        interactive_deadline: Duration::from_secs(30),
        batch_deadline: Duration::from_secs(30),
        exec,
    };
    let svc = QueryService::start(cfg, cat.clone());

    let tickets: Vec<_> = (0..10)
        .map(|i| {
            let class =
                if i % 2 == 0 { QueryClass::Batch } else { QueryClass::Interactive };
            svc.submit(req(&cat, i % 4, class)).expect("queue has room")
        })
        .collect();
    let mut completed = 0;
    for t in tickets {
        match t.wait().status {
            QueryStatus::Completed { rows } => {
                assert!(rows > 0);
                completed += 1;
            }
            QueryStatus::DeadlineCancelled => panic!("30 s deadline must not fire here"),
            QueryStatus::Failed { error } => panic!("faults must be absorbed, not fatal: {error}"),
        }
    }
    assert_eq!(completed, 10, "every admitted job must settle under faults");
    assert!(plan.stats().deaths_fired() >= 1, "the worker death must engage");
    assert!(plan.stats().slow_requests() > 0, "the slowdown must engage");
    assert_eq!(svc.reserved_pages(), 0, "fault recovery leaked a grant");
    assert_eq!(svc.pinned_pages(), 0, "fault recovery leaked a pin");
    svc.shutdown();
}
