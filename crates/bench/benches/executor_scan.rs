//! Criterion benchmarks for the executor data path: a parallel full scan
//! under the de-contended path vs the seed's global-lock path.
//!
//! The relation is smaller than `bench_executor`'s (the Criterion loop runs
//! each configuration many times); run the `bench_executor` binary for the
//! recorded `BENCH_executor.json` numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use xprs_bench::exec_scan;
use xprs_executor::DataPath;

fn bench_scan_paths(c: &mut Criterion) {
    let cat = exec_scan::catalog(8_192);
    for (path, tag) in
        [(DataPath::GlobalLock, "global_lock"), (DataPath::Decontended, "decontended")]
    {
        for workers in [1u32, 8] {
            c.bench_function(&format!("executor_scan/{tag}/{workers}_workers"), |b| {
                b.iter(|| black_box(exec_scan::run(&cat, workers, path, 8).emitted))
            });
        }
    }
}

criterion_group!(benches, bench_scan_paths);
criterion_main!(benches);
