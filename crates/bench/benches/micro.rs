//! Criterion microbenchmarks for the hot paths of the reproduction:
//! balance-point solving, the fluid `T_n` estimator, a full DES Figure 7
//! cell, B-tree operations, partition hand-out, and plan enumeration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use xprs::{PolicyKind, XprsSystem};
use xprs_optimizer::cost::{CostModel, RelInfo};
use xprs_optimizer::enumerate::{enumerate, PlanShape};
use xprs_optimizer::Query;
use xprs_scheduler::balance::balance_point;
use xprs_scheduler::fluid::tn_estimate;
use xprs_scheduler::{IoKind, MachineConfig, TaskId, TaskProfile};
use xprs_storage::partition::PagePartition;
use xprs_storage::{BTreeIndex, TupleId};
use xprs_workload::WorkloadKind;

fn bench_balance_point(c: &mut Criterion) {
    let m = MachineConfig::paper_default();
    let io = TaskProfile::new(TaskId(0), 20.0, 65.0, IoKind::Sequential);
    let cpu = TaskProfile::new(TaskId(1), 20.0, 8.0, IoKind::Sequential);
    c.bench_function("balance_point/interference_corrected", |b| {
        b.iter(|| balance_point(black_box(&io), black_box(&cpu), &m))
    });
}

fn bench_tn_estimate(c: &mut Criterion) {
    let m = MachineConfig::paper_default();
    let tasks = xprs_bench::paper_workload(WorkloadKind::RandomMix, 42);
    c.bench_function("fluid/tn_estimate_10_tasks", |b| {
        b.iter(|| tn_estimate(&m, black_box(&tasks)))
    });
}

fn bench_des_fig7_cell(c: &mut Criterion) {
    let sys = XprsSystem::paper_default();
    let tasks = xprs_bench::paper_workload(WorkloadKind::Extreme, 42);
    c.bench_function("des/extreme_with_adj_10_tasks", |b| {
        b.iter(|| sys.simulate(black_box(&tasks), PolicyKind::InterWithAdj).expect("sim").elapsed)
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("btree/insert_10k", |b| {
        b.iter_batched(
            || (),
            |_| {
                let mut idx = BTreeIndex::new(false);
                for k in 0..10_000 {
                    idx.insert(k, TupleId { block: k as u64, slot: 0 });
                }
                idx
            },
            BatchSize::SmallInput,
        )
    });
    let mut idx = BTreeIndex::new(false);
    for k in 0..100_000 {
        idx.insert(k, TupleId { block: k as u64, slot: 0 });
    }
    c.bench_function("btree/lookup_in_100k", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            black_box(idx.lookup(k))
        })
    });
    c.bench_function("btree/range_1k_of_100k", |b| {
        b.iter(|| black_box(idx.range(40_000, 40_999)))
    });
}

fn bench_partition(c: &mut Criterion) {
    c.bench_function("page_partition/hand_out_4k_pages_8_workers", |b| {
        b.iter_batched(
            || PagePartition::new(4096, 8),
            |mut p| {
                let mut n = 0u64;
                loop {
                    let mut any = false;
                    for slot in 0..8 {
                        if p.next_page(slot).is_some() {
                            n += 1;
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_enumerate(c: &mut Criterion) {
    let mut b = Query::join();
    for i in 0..5 {
        b = b.rel(&format!("r{i}"), 1.0);
    }
    for i in 0..4 {
        b = b.on(i, i + 1);
    }
    let q = b.build();
    let rels: Vec<RelInfo> = (0..5)
        .map(|i| RelInfo {
            n_tuples: 5_000.0 * (i as f64 + 1.0),
            n_blocks: 300.0,
            n_distinct: 1_000.0,
            selectivity: 1.0,
            has_index: true,
            clustered: false,
        })
        .collect();
    let model = CostModel::paper_default();
    c.bench_function("optimizer/enumerate_bushy_5rel_beam4", |b| {
        b.iter(|| enumerate(black_box(&q), &rels, &model, PlanShape::Bushy, 4).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_balance_point, bench_tn_estimate, bench_des_fig7_cell, bench_btree,
              bench_partition, bench_enumerate
}
criterion_main!(benches);
