//! Ablation: the task-pairing heuristic.
//!
//! The paper pairs the *most* IO-bound with the *most* CPU-bound task so
//! later pairings stay near the diagonal, and suggests shortest-job-first
//! for multi-user response time. This harness compares MostExtreme, FIFO
//! and SJF on turnaround (batch) and mean response time (Poisson-ish
//! arrival stream), on the fluid engine.

use xprs_bench::{header, mean, paper_workload, row};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::fluid::FluidSim;
use xprs_scheduler::{MachineConfig, Pairing, TaskId, TaskProfile};
use xprs_workload::WorkloadKind;

fn policy(m: &MachineConfig, pairing: Pairing) -> AdaptiveScheduler {
    let mut cfg = AdaptiveConfig::with_adjustment(m.clone());
    cfg.pairing = pairing;
    AdaptiveScheduler::new(cfg)
}

fn main() {
    let m = MachineConfig::paper_default();
    let sim = FluidSim::new(m.clone());
    let seeds: Vec<u64> = (1..=10).collect();

    println!("# Ablation — pairing heuristic (INTER-W/-ADJ, fluid engine)");
    println!();
    println!("## Batch turnaround, Random workload (10 tasks at t = 0), mean over {} seeds", seeds.len());
    println!();
    header(&["heuristic", "elapsed (s)", "mean response (s)"]);
    for (label, pairing) in [
        ("MostExtreme (paper)", Pairing::MostExtreme),
        ("FIFO", Pairing::Fifo),
        ("ShortestJobFirst", Pairing::ShortestJobFirst),
    ] {
        let mut elapsed = Vec::new();
        let mut resp = Vec::new();
        for &s in &seeds {
            let tasks = paper_workload(WorkloadKind::RandomMix, s);
            let mut p = policy(&m, pairing);
            let r = sim.run(&mut p, &tasks).expect("sim");
            elapsed.push(r.elapsed);
            let releases: Vec<(TaskId, f64)> = tasks.iter().map(|t| (t.id, 0.0)).collect();
            resp.push(r.mean_response_time(&releases));
        }
        row(&[
            label.to_string(),
            format!("{:6.2}", mean(&elapsed)),
            format!("{:6.2}", mean(&resp)),
        ]);
    }

    println!();
    println!("## Multi-user stream: 20 tasks arriving every 1.5 s (queueing regime)");
    println!();
    header(&["heuristic", "elapsed (s)", "mean response (s)"]);
    for (label, pairing) in [
        ("MostExtreme (paper)", Pairing::MostExtreme),
        ("FIFO", Pairing::Fifo),
        ("ShortestJobFirst", Pairing::ShortestJobFirst),
    ] {
        let mut elapsed = Vec::new();
        let mut resp = Vec::new();
        for &s in &seeds {
            let mut tasks: Vec<TaskProfile> = paper_workload(WorkloadKind::RandomMix, s);
            tasks.extend(paper_workload(WorkloadKind::RandomMix, s + 1000).into_iter().map(
                |mut t| {
                    t.id = TaskId(t.id.0 + 10);
                    t
                },
            ));
            let arrivals: Vec<(TaskProfile, f64)> =
                tasks.iter().enumerate().map(|(i, t)| (t.clone(), 1.5 * i as f64)).collect();
            let mut p = policy(&m, pairing);
            let r = sim.run_with_arrivals(&mut p, &arrivals).expect("fluid");
            elapsed.push(r.elapsed);
            let releases: Vec<(TaskId, f64)> =
                arrivals.iter().map(|(t, at)| (t.id, *at)).collect();
            resp.push(r.mean_response_time(&releases));
        }
        row(&[
            label.to_string(),
            format!("{:6.2}", mean(&elapsed)),
            format!("{:6.2}", mean(&resp)),
        ]);
    }
    println!();
    println!(
        "Expected shape: MostExtreme minimizes turnaround; SJF trades a little \
         turnaround for better mean response time in the stream setting."
    );
}
