//! Emit `BENCH_join.json`: join-materialization throughput of the rebuilt
//! data path (worker-sorted runs → pool-parallel k-way merge → CSR index,
//! `DataPath::Decontended`) against the legacy path (per-tuple lock, flat
//! harvest, full serial re-sort, `HashMap` index, `DataPath::GlobalLock`).
//!
//! The workload is a stream of back-to-back `big ⋈ small` hash joins with
//! the build side pinned to the large relation, so the span under test is
//! dominated by fragment materialization — worker output, the sort/merge,
//! and key-index construction. For each worker count in {1, 2, 4, 8} and
//! each path, the stream runs several times and the median join wall time
//! and materialized-tuples/second are recorded. The headline number is the
//! 8-worker throughput ratio of the new path over the legacy one.
//!
//! A second, **disk-resident** section joins a larger-than-memory build
//! side (spilling the pool several times over, scaled-time machine) against
//! a small probe relation, sweeping the worker count under morsel stealing
//! — the regime where the build scan's disk waits, not materialization
//! contention, bound the join.
//!
//! A third, **skew** section sweeps a Zipf(θ) key-domain merge join at
//! θ ∈ {0, 0.5, 1.0} on the disk-resident 8-worker configuration. At θ = 1
//! one key dominates the join output; the section records throughput plus
//! the heavy-hitter counters (keys detected, per-way row balance) so the
//! CI gate can check both graceful degradation (θ = 1 throughput within
//! 2× of θ = 0) and that the fan-out machinery actually engaged.
//!
//! Usage: `bench_join [output.json]` (default `BENCH_join.json`).

use xprs_bench::{exec_disk, exec_join, exec_skew, host_header_json};
use xprs_executor::{DataPath, ExecConfig, MorselMode};

const BUILD_TUPLES: u64 = 200_000;
const PROBE_TUPLES: u64 = 8_000;
const KEY_MOD: u64 = 1_000_000;
const QUERIES: usize = 8;
const TRIALS: usize = 5;
const WORKERS: [u32; 4] = [1, 2, 4, 8];
const DR_TRIALS: usize = 3;
const DR_SEED: u64 = 0x10D1;
const SKEW_THETAS: [f64; 3] = [0.0, 0.5, 1.0];
const SKEW_TRIALS: usize = 3;
const SKEW_WORKERS: u32 = 8;

struct Row {
    path: DataPath,
    workers: u32,
    wall: f64,
    join_wall: f64,
    tuples_per_sec: f64,
    pool_threads: u64,
    pool_jobs: u64,
}

fn path_name(p: DataPath) -> &'static str {
    match p {
        DataPath::Decontended => "decontended",
        DataPath::GlobalLock => "global_lock",
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_join.json".to_string());
    let cat = exec_join::catalog(BUILD_TUPLES, PROBE_TUPLES, KEY_MOD);

    let mut rows: Vec<Row> = Vec::new();
    for path in [DataPath::GlobalLock, DataPath::Decontended] {
        for &w in &WORKERS {
            let mut walls = Vec::with_capacity(TRIALS);
            let mut join_walls = Vec::with_capacity(TRIALS);
            let mut last = None;
            exec_join::run(&cat, w, path, QUERIES); // warmup (page cache, allocator)
            for _ in 0..TRIALS {
                let r = exec_join::run(&cat, w, path, QUERIES);
                assert!(r.emitted > 0, "vacuous join");
                walls.push(r.wall);
                join_walls.push(r.join_wall);
                last = Some(r);
            }
            let last = last.unwrap();
            let wall = median(&mut walls);
            // Throughput is materialized tuples (build side + joined
            // output) over the *join phase* wall (first fragment start to
            // last fragment finish); per-process setup is excluded.
            let join_wall = median(&mut join_walls);
            rows.push(Row {
                path,
                workers: w,
                wall,
                join_wall,
                tuples_per_sec: last.materialized as f64 / join_wall,
                pool_threads: last.pool_threads,
                pool_jobs: last.pool_jobs,
            });
            eprintln!(
                "{:<12} w={} join={:.4}s total={:.4}s  {:>12.0} tuples/s  emitted={}  threads={} jobs={}",
                path_name(path),
                w,
                join_wall,
                wall,
                last.materialized as f64 / join_wall,
                last.emitted,
                last.pool_threads,
                last.pool_jobs
            );
        }
    }

    let tput = |p: DataPath, w: u32| {
        rows.iter().find(|r| r.path == p && r.workers == w).unwrap().tuples_per_sec
    };
    let speedup_at_8 = tput(DataPath::Decontended, 8) / tput(DataPath::GlobalLock, 8);
    eprintln!("join speedup at 8 workers (decontended / global_lock): {speedup_at_8:.2}x");

    // ---- Disk-resident join: the build scan spills the pool ----
    let (dr_cat, dr_wl) = exec_disk::catalog(DR_SEED);
    let mut dr_rows = Vec::new();
    for &w in &WORKERS {
        let mut join_walls = Vec::with_capacity(DR_TRIALS);
        let mut last = None;
        for _ in 0..DR_TRIALS {
            let r = exec_disk::join_run(&dr_cat, &dr_wl, w, MorselMode::stealing());
            assert!(r.emitted > 0, "vacuous disk-resident join");
            join_walls.push(r.join_wall);
            last = Some(r);
        }
        let last = last.unwrap();
        let join_wall = median(&mut join_walls);
        let tput = last.materialized as f64 / join_wall;
        eprintln!(
            "disk_resident join w={w} join={join_wall:.3}s  {tput:>10.1} tuples/s  \
             hit_rate={:.3}  steals={}",
            last.hit_rate, last.steals
        );
        dr_rows.push((w, join_wall, tput, last));
    }
    let dr_speedup = dr_rows.iter().find(|r| r.0 == 8).unwrap().2
        / dr_rows.iter().find(|r| r.0 == 1).unwrap().2;
    eprintln!("disk-resident join speedup (8w / 1w, stealing): {dr_speedup:.2}x");

    // ---- Skewed key-domain merge join: Zipf θ sweep at 8 workers ----
    let mut skew_rows = Vec::new();
    for theta in SKEW_THETAS {
        let (sk_cat, sk_wl) = exec_skew::catalog(theta);
        let mut join_walls = Vec::with_capacity(SKEW_TRIALS);
        let mut last = None;
        for _ in 0..SKEW_TRIALS {
            let r = exec_skew::run(&sk_cat, &sk_wl, SKEW_WORKERS);
            assert!(r.emitted > 0, "vacuous skewed join");
            join_walls.push(r.join_wall);
            last = Some(r);
        }
        let last = last.unwrap();
        let join_wall = median(&mut join_walls);
        let tput = last.emitted as f64 / join_wall;
        eprintln!(
            "skew theta={theta:.1} w={SKEW_WORKERS} join={join_wall:.3}s  {tput:>10.1} rows/s  \
             emitted={}  hot_keys={}  way_max={}  way_mean={}",
            last.emitted, last.hot_keys, last.way_rows_max, last.way_rows_mean
        );
        skew_rows.push((theta, join_wall, tput, last));
    }
    let skew_tput = |theta: f64| {
        skew_rows.iter().find(|r| (r.0 - theta).abs() < 1e-9).unwrap().2
    };
    let skew_ratio = skew_tput(1.0) / skew_tput(0.0);
    eprintln!("skew throughput ratio (theta 1.0 / theta 0.0, 8 workers): {skew_ratio:.3}x");

    // Hand-rolled JSON: the workspace builds offline with no serde.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"executor_join\",\n");
    json.push_str(&host_header_json(
        ExecConfig::unthrottled().machine.n_procs,
        ExecConfig::unthrottled().bufpool_pages,
    ));
    json.push_str(&format!("  \"build_tuples\": {BUILD_TUPLES},\n"));
    json.push_str(&format!("  \"probe_tuples\": {PROBE_TUPLES},\n"));
    json.push_str(&format!("  \"key_mod\": {KEY_MOD},\n"));
    json.push_str(&format!("  \"queries_per_run\": {QUERIES},\n"));
    json.push_str(&format!("  \"trials_per_config\": {TRIALS},\n"));
    json.push_str("  \"wall_stat\": \"median\",\n");
    json.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"data_path\": \"{}\", \"workers\": {}, \"join_wall_seconds\": {:.6}, \
             \"total_wall_seconds\": {:.6}, \"materialized_tuples_per_sec\": {:.1}, \
             \"pool_threads\": {}, \"pool_jobs\": {}}}{}\n",
            path_name(r.path),
            r.workers,
            r.join_wall,
            r.wall,
            r.tuples_per_sec,
            r.pool_threads,
            r.pool_jobs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"disk_resident\": {\n");
    json.push_str(&format!("    \"bufpool_pages\": {},\n", exec_disk::BUFPOOL_PAGES));
    json.push_str(&format!("    \"spill_factor\": {},\n", exec_disk::SPILL_FACTOR));
    json.push_str(&format!("    \"trials_per_config\": {DR_TRIALS},\n"));
    json.push_str("    \"configs\": [\n");
    for (i, (w, join_wall, tput, r)) in dr_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"mode\": \"stealing\", \"workers\": {}, \"join_wall_seconds\": {:.6}, \
             \"materialized_tuples_per_sec\": {:.1}, \"bufpool_hit_rate\": {:.4}, \
             \"steals\": {}, \"pool_threads\": {}}}{}\n",
            w,
            join_wall,
            tput,
            r.hit_rate,
            r.steals,
            r.pool_threads,
            if i + 1 == dr_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!("    \"speedup_8w_over_1w\": {dr_speedup:.3}\n"));
    json.push_str("  },\n");
    json.push_str("  \"skew\": {\n");
    json.push_str(&format!("    \"bufpool_pages\": {},\n", exec_skew::BUFPOOL_PAGES));
    json.push_str(&format!("    \"spill_factor\": {},\n", exec_skew::SPILL_FACTOR));
    json.push_str(&format!("    \"merge_ways\": {},\n", exec_skew::MERGE_WAYS));
    json.push_str(&format!("    \"workers\": {SKEW_WORKERS},\n"));
    json.push_str(&format!("    \"trials_per_config\": {SKEW_TRIALS},\n"));
    json.push_str("    \"configs\": [\n");
    for (i, (theta, join_wall, tput, r)) in skew_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"theta\": {theta:.1}, \"join_wall_seconds\": {join_wall:.6}, \
             \"emitted_rows\": {}, \"rows_per_sec\": {tput:.1}, \"hot_keys\": {}, \
             \"way_rows_max\": {}, \"way_rows_mean\": {}, \"bufpool_hit_rate\": {:.4}, \
             \"pinned_at_exit\": {}, \"granted_pages\": {}, \"released_pages\": {}}}{}\n",
            r.emitted,
            r.hot_keys,
            r.way_rows_max,
            r.way_rows_mean,
            r.hit_rate,
            r.pinned_at_exit,
            r.granted_pages,
            r.released_pages,
            if i + 1 == skew_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!("    \"tput_ratio_theta1_vs_theta0\": {skew_ratio:.3}\n"));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup_parallel_merge_vs_hash_build_at_8_workers\": {speedup_at_8:.3}\n"
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
