//! Figure 4: the IO-CPU balance point. For representative IO/CPU pairs,
//! prints the closed-form constant-B solution, the seek-interference-
//! corrected solution (the three-equation system of Section 2.3), and the
//! step-4 `T_inter` vs `T_intra` comparison.

use xprs_bench::{header, row};
use xprs_scheduler::balance::{balance_point, balance_point_constant_b};
use xprs_scheduler::estimate::{inter_is_worthwhile, t_inter, t_intra};
use xprs_scheduler::{IoKind, MachineConfig, TaskId, TaskProfile};

fn main() {
    let m = MachineConfig::paper_default();
    let n = m.n_procs as f64;
    let b = m.total_bandwidth();
    println!("# Figure 4 — IO-CPU balance points (N = {n}, B = {b} io/s)");
    println!();
    header(&[
        "C_io",
        "C_cpu",
        "x_io (const B)",
        "x_cpu (const B)",
        "x_io (corrected)",
        "x_cpu (corrected)",
        "B_eff",
        "T_inter vs ΣT_intra",
        "worthwhile?",
    ]);
    for (c_io, c_cpu) in [(70.0, 5.0), (65.0, 8.0), (60.0, 10.0), (50.0, 20.0), (40.0, 25.0), (35.0, 29.0)] {
        let io = TaskProfile::new(TaskId(0), 20.0, c_io, IoKind::Sequential);
        let cpu = TaskProfile::new(TaskId(1), 20.0, c_cpu, IoKind::Sequential);
        let naive = balance_point_constant_b(c_io, c_cpu, n, b).expect("valid pair");
        let corrected = balance_point(&io, &cpu, &m).expect("valid pair");
        let est = t_inter(&io, &cpu, &corrected, &m);
        let serial = t_intra(&io, &m) + t_intra(&cpu, &m);
        row(&[
            format!("{c_io:4.0}"),
            format!("{c_cpu:4.0}"),
            format!("{:5.2}", naive.x_io),
            format!("{:5.2}", naive.x_cpu),
            format!("{:5.2}", corrected.x_io),
            format!("{:5.2}", corrected.x_cpu),
            format!("{:6.1}", corrected.effective_bw),
            format!("{:5.2} vs {:5.2} s", est.elapsed, serial),
            if inter_is_worthwhile(&io, &cpu, &corrected, &m) { "yes" } else { "no" }.into(),
        ]);
    }
    println!();
    println!(
        "The corrected balance point allocates fewer workers to the IO-bound task \
         because the effective bandwidth drops below the nominal {b} io/s once two \
         sequential streams share the disk heads."
    );

    println!();
    println!("## Marginal pairs near the diagonal (the step-4 check)");
    println!();
    println!(
        "Close to C = B/N the seek penalty eats the entire pairing gain; the scheduler's \
         T_inter vs ΣT_intra comparison is what keeps such pairs from being forced."
    );
    println!();
    header(&["C_io", "C_cpu", "T_inter", "ΣT_intra", "decision"]);
    for (c_io, c_cpu) in [(32.0, 28.0), (35.0, 25.0), (31.0, 29.5)] {
        let io = TaskProfile::new(TaskId(0), 20.0, c_io, IoKind::Sequential);
        let cpu = TaskProfile::new(TaskId(1), 20.0, c_cpu, IoKind::Sequential);
        let serial = t_intra(&io, &m) + t_intra(&cpu, &m);
        match balance_point(&io, &cpu, &m) {
            Some(bp) => {
                let est = t_inter(&io, &cpu, &bp, &m);
                let keep = inter_is_worthwhile(&io, &cpu, &bp, &m);
                row(&[
                    format!("{c_io:4.1}"),
                    format!("{c_cpu:4.1}"),
                    format!("{:5.2} s", est.elapsed),
                    format!("{serial:5.2} s"),
                    if keep { "pair" } else { "run one at a time" }.into(),
                ]);
            }
            None => row(&[
                format!("{c_io:4.1}"),
                format!("{c_cpu:4.1}"),
                "-".into(),
                format!("{serial:5.2} s"),
                "no balance point".into(),
            ]),
        }
    }
}
