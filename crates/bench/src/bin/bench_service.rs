//! Emit `BENCH_service.json`: the continuous query service under a
//! replayed open-loop arrival schedule, with and without injected faults.
//!
//! Three scenarios — `no_fault`, `worker_death`, `disk_slowdown` — each
//! run two phases over the same seeded multi-tenant arrival schedule:
//!
//! * **uncontended** — offered load well inside capacity: the gate is
//!   *zero* shed and clean ledgers.
//! * **overload** — offered load several times capacity against a small
//!   queue: the gate is that overload surfaces as typed
//!   `ServiceError::Overloaded` shedding (never unbounded growth), while
//!   every admitted query still settles and the ledgers still balance.
//!
//! Per phase and class the report carries sustained completion QPS and
//! p50/p99/p999 end-to-end latency; per tenant, completion counts and
//! worst-case latency (the graceful-degradation bound under faults).
//!
//! Usage: `bench_service [BENCH_service.json]`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use xprs_bench::host_header_json;
use xprs_disk::{FaultPlan, StripedLayout};
use xprs_executor::{ExecConfig, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_service::{
    QueryOutcome, QueryRequest, QueryService, QueryStatus, ServiceConfig, ServiceError,
};
use xprs_storage::{Catalog, Datum, Schema, Tuple};
use xprs_workload::{generate_arrivals, ArrivalSpec, QueryClass, TenantLoad};

/// Wall seconds per simulated second: runs are throttle-dominated, so the
/// service times (and the visible effect of a disk slowdown) are set by
/// the machine model, not by host speed.
const SCALE: f64 = 1.0 / 40.0;
const N_TENANTS: u32 = 4;
const SEED: u64 = 0x5E41_11CE;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0xBE5C_u64;
    for (name, n, key_mod, blen) in [
        ("fat", 240u64, 80u64, 800usize), // ~10 tuples per page: IO-heavy
        ("thin", 1600, 120, 16),          // many tuples per page: CPU-heavy
    ] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let a = (lcg(&mut seed) % key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(blen))])
            })
            .collect();
        cat.load(name, rows);
        cat.build_index(name, false);
    }
    Arc::new(cat)
}

fn lookup(cat: &Arc<Catalog>) -> QueryRun {
    let q = Query::selection("thin", 1.0);
    QueryRun {
        optimized: TwoPhaseOptimizer::paper_default()
            .optimize_catalog(cat, &q, Costing::SeqCost)
            .expect("plan"),
        bindings: vec![RelBinding { name: "thin".into(), pred: (0, 15) }],
    }
}

fn scan_join(cat: &Arc<Catalog>) -> QueryRun {
    let q = Query::join().rel("fat", 1.0).rel("thin", 1.0).on(0, 1).build();
    QueryRun {
        optimized: TwoPhaseOptimizer::paper_default()
            .optimize_catalog(cat, &q, Costing::SeqCost)
            .expect("plan"),
        bindings: vec![
            RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) },
            RelBinding { name: "thin".into(), pred: (i32::MIN, i32::MAX) },
        ],
    }
}

#[derive(Clone, Copy)]
enum Fault {
    None,
    WorkerDeath,
    DiskSlowdown,
}

impl Fault {
    fn name(self) -> &'static str {
        match self {
            Fault::None => "no_fault",
            Fault::WorkerDeath => "worker_death",
            Fault::DiskSlowdown => "disk_slowdown",
        }
    }
    fn plan(self) -> Option<Arc<FaultPlan>> {
        match self {
            Fault::None => None,
            // A worker dies three units into fragment 0 of a run — the
            // heartbeat patrol must reclaim its share and staff a spare.
            Fault::WorkerDeath => Some(Arc::new(FaultPlan::new().with_worker_death(0, 0, 3))),
            // Disk 0 serves 4x slower from its 30th request on, sustained.
            Fault::DiskSlowdown => Some(Arc::new(FaultPlan::new().with_slowdown(0, 30, 4.0))),
        }
    }
}

struct ClassPhase {
    class: QueryClass,
    submitted: u64,
    completed: u64,
    shed: u64,
    deadline_cancelled: u64,
    failed: u64,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    mean_us: f64,
}

struct TenantPhase {
    tenant: u32,
    settled: u64,
    completed: u64,
    max_latency_us: u64,
}

struct PhaseResult {
    phase: &'static str,
    wall: f64,
    classes: Vec<ClassPhase>,
    tenants: Vec<TenantPhase>,
    reserved_pages: u64,
    pinned_pages: u64,
    retry_after_hints_us: Vec<u64>,
}

/// Replay `spec` against a fresh service and collect per-class and
/// per-tenant results. Open loop: submissions happen on schedule no
/// matter how the service is doing; a full queue produces typed shed
/// errors, which are counted, not retried.
fn run_phase(
    cat: &Arc<Catalog>,
    phase: &'static str,
    cfg: ServiceConfig,
    spec: &ArrivalSpec,
) -> PhaseResult {
    let svc = QueryService::start(cfg, cat.clone());
    let schedule = generate_arrivals(spec);
    let mut tickets = Vec::new();
    let mut retry_after_hints_us = Vec::new();
    let t0 = Instant::now();
    for a in &schedule {
        let due = t0 + Duration::from_secs_f64(a.at);
        if let Some(gap) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(gap);
        }
        let run = match a.class {
            QueryClass::Interactive => lookup(cat),
            QueryClass::Batch => scan_join(cat),
        };
        match svc.submit(QueryRequest { tenant: a.tenant, class: a.class, run }) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Overloaded { retry_after }) => {
                retry_after_hints_us.push(retry_after.as_micros() as u64);
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(|t| t.wait()).collect();
    let wall = t0.elapsed().as_secs_f64();
    for o in &outcomes {
        if let QueryStatus::Failed { error } = &o.status {
            eprintln!("  [failed] tenant={} class={}: {error}", o.tenant, o.class.label());
        }
    }

    let classes = [QueryClass::Interactive, QueryClass::Batch]
        .into_iter()
        .map(|class| {
            let s = svc.stats().class(class);
            let snap = s.latency_us.snapshot();
            ClassPhase {
                class,
                submitted: s.submitted.get(),
                completed: s.completed.get(),
                shed: s.shed.get(),
                deadline_cancelled: s.deadline_cancelled.get(),
                failed: s.failed.get(),
                qps: s.completed.get() as f64 / wall,
                p50_us: snap.quantile(0.50),
                p99_us: snap.quantile(0.99),
                p999_us: snap.quantile(0.999),
                mean_us: snap.mean(),
            }
        })
        .collect();
    let tenants = (0..N_TENANTS)
        .map(|tenant| {
            let mine: Vec<&QueryOutcome> =
                outcomes.iter().filter(|o| o.tenant == tenant).collect();
            TenantPhase {
                tenant,
                settled: mine.len() as u64,
                completed: mine
                    .iter()
                    .filter(|o| matches!(o.status, QueryStatus::Completed { .. }))
                    .count() as u64,
                max_latency_us: mine
                    .iter()
                    .map(|o| o.latency.as_micros() as u64)
                    .max()
                    .unwrap_or(0),
            }
        })
        .collect();
    let result = PhaseResult {
        phase,
        wall,
        classes,
        tenants,
        reserved_pages: svc.reserved_pages(),
        pinned_pages: svc.pinned_pages(),
        retry_after_hints_us,
    };
    svc.shutdown();
    result
}

fn exec_cfg(fault: Fault) -> ExecConfig {
    let mut cfg = ExecConfig::scaled(1.0 / SCALE).with_memory_grants().with_patrol(2, 3);
    // Far smaller than the relations' footprint: the scans stay
    // disk-resident, so the disks actually see sustained traffic (a pool
    // that caches the working set would make the slowdown scenario
    // vacuous).
    cfg.bufpool_pages = 24;
    // Per-run recalibration is off in the shared-session regime: each run
    // observes only its slice of the shared disks, so the "observed" rate
    // is dominated by cross-run contention, and recalibrating on it hands
    // the policy a skewed machine (seen as FixpointDiverged under the
    // slowdown). The service handles degradation with deadlines and
    // shedding instead.
    cfg.recal_band = 0.0;
    if let Some(plan) = fault.plan() {
        cfg = cfg.with_faults(plan);
    }
    cfg
}

/// Uncontended: well inside the service rate of `max_concurrent` runners.
fn uncontended_spec() -> ArrivalSpec {
    ArrivalSpec {
        seed: SEED,
        horizon: 2.0,
        tenants: (0..N_TENANTS)
            .map(|_| TenantLoad { interactive_qps: 4.0, batch_qps: 0.25 })
            .collect(),
    }
}

/// Overload: several times capacity against a small queue.
fn overload_spec() -> ArrivalSpec {
    ArrivalSpec {
        seed: SEED ^ 0xFF,
        horizon: 1.5,
        tenants: (0..N_TENANTS)
            .map(|_| TenantLoad { interactive_qps: 30.0, batch_qps: 6.0 })
            .collect(),
    }
}

fn class_json(c: &ClassPhase) -> String {
    format!(
        "{{\"class\": \"{}\", \"submitted\": {}, \"completed\": {}, \"shed\": {}, \
         \"deadline_cancelled\": {}, \"failed\": {}, \"qps\": {:.2}, \
         \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"mean_us\": {:.1}}}",
        c.class.label(),
        c.submitted,
        c.completed,
        c.shed,
        c.deadline_cancelled,
        c.failed,
        c.qps,
        c.p50_us,
        c.p99_us,
        c.p999_us,
        c.mean_us,
    )
}

fn phase_json(p: &PhaseResult) -> String {
    let classes: Vec<String> = p.classes.iter().map(class_json).collect();
    let tenants: Vec<String> = p
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\": {}, \"settled\": {}, \"completed\": {}, \"max_latency_us\": {}}}",
                t.tenant, t.settled, t.completed, t.max_latency_us
            )
        })
        .collect();
    let hint = if p.retry_after_hints_us.is_empty() {
        0
    } else {
        p.retry_after_hints_us.iter().sum::<u64>() / p.retry_after_hints_us.len() as u64
    };
    format!(
        "{{\"phase\": \"{}\", \"wall\": {:.3}, \"reserved_pages_at_idle\": {}, \
         \"pinned_pages_at_idle\": {}, \"mean_retry_after_us\": {},\n        \
         \"classes\": [{}],\n        \"tenants\": [{}]}}",
        p.phase,
        p.wall,
        p.reserved_pages,
        p.pinned_pages,
        hint,
        classes.join(", "),
        tenants.join(", "),
    )
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_service.json".to_string());
    let cat = catalog();
    let mut scenario_blocks = Vec::new();

    for fault in [Fault::None, Fault::WorkerDeath, Fault::DiskSlowdown] {
        let plan = fault.plan();
        let mk_cfg = |queue_cap: usize| {
            let mut exec = exec_cfg(fault);
            // One shared plan instance per scenario so engagement counters
            // aggregate across both phases.
            if let Some(p) = &plan {
                exec = exec.with_faults(p.clone());
            }
            ServiceConfig {
                queue_cap,
                max_concurrent: 3,
                interactive_deadline: Duration::from_secs(8),
                batch_deadline: Duration::from_secs(20),
                exec,
            }
        };

        // Uncontended: roomy queue, load inside capacity.
        let un = run_phase(&cat, "uncontended", mk_cfg(64), &uncontended_spec());
        // Overload: small queue, several times capacity.
        let over = run_phase(&cat, "overload", mk_cfg(8), &overload_spec());

        let (deaths, slow) =
            plan.as_ref().map_or((0, 0), |p| (p.stats().deaths_fired(), p.stats().slow_requests()));
        for p in [&un, &over] {
            for c in &p.classes {
                eprintln!(
                    "{} {} {}: submitted={} completed={} shed={} cancelled={} failed={} \
                     qps={:.1} p50={}us p99={}us p999={}us",
                    fault.name(),
                    p.phase,
                    c.class.label(),
                    c.submitted,
                    c.completed,
                    c.shed,
                    c.deadline_cancelled,
                    c.failed,
                    c.qps,
                    c.p50_us,
                    c.p99_us,
                    c.p999_us,
                );
            }
        }
        eprintln!("{}: deaths_fired={} slow_requests={}", fault.name(), deaths, slow);
        scenario_blocks.push(format!(
            "    {{\"scenario\": \"{}\", \"deaths_fired\": {}, \"slow_requests\": {},\n      \
             \"phases\": [\n        {},\n        {}\n      ]}}",
            fault.name(),
            deaths,
            slow,
            phase_json(&un),
            phase_json(&over),
        ));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"service\",\n");
    json.push_str(&host_header_json(
        ExecConfig::unthrottled().machine.n_procs,
        ExecConfig::unthrottled().bufpool_pages,
    ));
    json.push_str(&format!("  \"scale\": {SCALE},\n"));
    json.push_str(&format!("  \"tenants\": {N_TENANTS},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str("  \"scenarios\": [\n");
    json.push_str(&scenario_blocks.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
