//! Figure 3: IO-bound and CPU-bound tasks in the parallelism/bandwidth
//! rectangle. For a spread of task I/O rates, prints the line
//! `IO_i(x) = C_i · x`, the classification against `B/N`, and the maximum
//! useful parallelism `maxp` (where the line exits the rectangle).

use xprs_bench::{header, row};
use xprs_scheduler::{Boundedness, IoKind, MachineConfig, TaskId, TaskProfile};

fn main() {
    let m = MachineConfig::paper_default();
    println!("# Figure 3 — task classification in the N × B rectangle");
    println!();
    println!(
        "N = {} processors, B = {} io/s, threshold B/N = {} io/s.",
        m.n_procs,
        m.total_bandwidth(),
        m.io_threshold()
    );
    println!();
    header(&["C_i (io/s)", "class", "maxp(f_i)", "IO_i(maxp) (io/s)", "binding limit"]);
    for c in [5.0, 10.0, 20.0, 30.0, 30.5, 40.0, 50.0, 60.0, 70.0] {
        let t = TaskProfile::new(TaskId(0), 10.0, c, IoKind::Sequential);
        let class = match t.classify(&m) {
            Boundedness::IoBound => "IO-bound",
            Boundedness::CpuBound => "CPU-bound",
        };
        let maxp = t.maxp(&m);
        let limit = match t.classify(&m) {
            Boundedness::IoBound => "disk bandwidth",
            Boundedness::CpuBound => "processors",
        };
        row(&[
            format!("{c:5.1}"),
            class.to_string(),
            format!("{maxp:5.2}"),
            format!("{:6.1}", t.io_rate_at(maxp)),
            limit.to_string(),
        ]);
    }
    println!();
    println!("## Line data (for plotting): io rate as a function of parallelism x");
    println!();
    header(&["x", "C=10 (CPU-bound)", "C=30 (diagonal)", "C=60 (IO-bound)"]);
    for x in 0..=8 {
        let x = x as f64;
        row(&[
            format!("{x:2.0}"),
            format!("{:6.1}", (10.0 * x).min(m.total_bandwidth())),
            format!("{:6.1}", (30.0 * x).min(m.total_bandwidth())),
            format!("{:6.1}", (60.0 * x).min(m.total_bandwidth())),
        ]);
    }
}
