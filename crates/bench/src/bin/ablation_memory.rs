//! Section 5 future work, implemented: memory-constrained scheduling.
//!
//! "We cannot run two hashjoins in parallel unless there is enough memory
//! for both hash tables." Each task carries a shared-memory footprint; the
//! scheduler pairs tasks only when their combined footprint fits. This
//! harness gives every Extreme-workload task a footprint and sweeps the
//! machine's memory from unconstrained down to single-task territory: the
//! INTER-W/-ADJ advantage decays to INTRA-ONLY exactly as pairing becomes
//! impossible.

use xprs_bench::{header, mean, paper_workload, row};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::fluid::FluidSim;
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::{MachineConfig, TaskProfile};
use xprs_workload::WorkloadKind;

const MB: f64 = 1024.0 * 1024.0;

/// Give each task a footprint proportional to its sequential time — the
/// longer the scan, the bigger the hash table it would feed.
fn with_footprints(tasks: Vec<TaskProfile>) -> Vec<TaskProfile> {
    tasks.into_iter().map(|t| { let m = t.seq_time * 1.5 * MB; t.with_memory(m) }).collect()
}

fn main() {
    let seeds: Vec<u64> = (1..=10).collect();
    println!("# Ablation — memory-constrained pairing (Section 5 future work)");
    println!();
    println!(
        "Extreme workload, fluid engine, {} seeds; task footprints 3–30 MB \
         (1.5 MB per second of sequential work).",
        seeds.len()
    );
    println!();

    let mut base = MachineConfig::paper_default();
    base.memory = f64::INFINITY;
    let intra_mean = {
        let sim = FluidSim::new(base.clone());
        let xs: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                let tasks = with_footprints(paper_workload(WorkloadKind::Extreme, s));
                let mut p = IntraOnly::new(base.clone(), true);
                sim.run(&mut p, &tasks).expect("fluid").elapsed
            })
            .collect();
        mean(&xs)
    };
    println!("INTRA-ONLY baseline (memory-independent: one task at a time): {intra_mean:6.2} s");
    println!();
    header(&["machine memory", "INTER-W/-ADJ elapsed (s)", "win vs INTRA-ONLY"]);
    for budget in [f64::INFINITY, 64.0 * MB, 40.0 * MB, 24.0 * MB, 12.0 * MB, 4.0 * MB] {
        let mut m = base.clone();
        m.memory = budget;
        let sim = FluidSim::new(m.clone());
        let xs: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                let tasks = with_footprints(paper_workload(WorkloadKind::Extreme, s));
                let mut p = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m.clone()));
                sim.run(&mut p, &tasks).expect("fluid").elapsed
            })
            .collect();
        let t = mean(&xs);
        let label = if budget.is_infinite() {
            "unconstrained".to_string()
        } else {
            format!("{:4.0} MB", budget / MB)
        };
        row(&[label, format!("{t:6.2}"), format!("{:+5.1}%", 100.0 * (1.0 - t / intra_mean))]);
    }
    println!();
    println!(
        "With plenty of memory every worthwhile pair runs; as the budget shrinks the \
         scheduler first substitutes smaller partners, then runs tasks one at a time — \
         the elapsed time converges to the INTRA-ONLY baseline instead of thrashing."
    );
}
