//! Section 5 future work, implemented: joint parallel optimization of
//! multiple queries.
//!
//! Two concurrent queries — one whose cheapest solo plan is IO-heavy and
//! one CPU-heavy — are optimized (a) independently by solo `parcost` and
//! (b) jointly, choosing each plan to minimize the elapsed time of both
//! queries' fragments scheduled together by the Section 2.5 algorithm.

use xprs::{Costing, Query, XprsSystem};
use xprs::scheduler::fluid::tn_estimate_dags;
use xprs_bench::{header, row};
use xprs_storage::{Datum, Schema, Tuple};
use xprs_workload::Calibration;

fn main() {
    let mut sys = XprsSystem::paper_default();
    let cal = Calibration::paper_default();
    for (name, rate, n) in [
        ("fat_x", 63.0, 1600u64),
        ("fat_y", 58.0, 1400),
        ("fat_z", 66.0, 1800),
        ("thin_u", 7.0, 36_000),
        ("thin_v", 10.0, 30_000),
        ("thin_w", 8.0, 28_000),
    ] {
        let blen = cal.blen_for_rate(rate);
        let cat = sys.catalog_mut();
        cat.create(name, Schema::paper_rel());
        cat.load(
            name,
            (0..n).map(|i| Tuple::from_values(vec![Datum::Int(i as i32), Datum::Text("x".repeat(blen))])),
        );
        cat.build_index(name, false);
    }

    // Each query mixes IO-heavy and CPU-heavy relations, so its choice of
    // join order decides which of its fragments end up IO- vs CPU-bound.
    let q1 = Query::join()
        .rel("fat_x", 1.0)
        .rel("thin_u", 1.0)
        .rel("fat_y", 1.0)
        .on(0, 1)
        .on(1, 2)
        .build();
    let q2 = Query::join()
        .rel("thin_v", 1.0)
        .rel("fat_z", 1.0)
        .rel("thin_w", 1.0)
        .on(0, 1)
        .on(1, 2)
        .build();

    println!("# Section 5 extension — joint multi-query parallel optimization");
    println!();

    // Independent solo choices, then scheduled together.
    let solo1 = sys.optimize(&q1, Costing::ParCost).expect("plan");
    let solo2 = {
        // Re-decompose with non-colliding ids for joint scheduling.
        let mut o = sys.optimize(&q2, Costing::ParCost).expect("plan");
        let rels = Vec::new();
        let _ = rels as Vec<u8>;
        o.fragments = {
            let model = xprs_optimizer::CostModel::paper_default();
            let infos: Vec<xprs_optimizer::cost::RelInfo> = q2
                .rels
                .iter()
                .map(|r| {
                    let rel = sys.catalog().get(&r.name).unwrap();
                    let s = rel.stats();
                    xprs_optimizer::cost::RelInfo {
                        n_tuples: s.n_tuples as f64,
                        n_blocks: s.n_blocks as f64,
                        n_distinct: s.n_distinct_a as f64,
                        selectivity: r.selectivity,
                        has_index: rel.index_on_a.is_some(),
                        clustered: false,
                    }
                })
                .collect();
            let costed = model.cost_plan(&o.plan, &infos);
            xprs_optimizer::fragment::decompose(&o.plan, &costed, 10_000)
        };
        o
    };
    let independent = tn_estimate_dags(
        sys.machine(),
        &[&solo1.fragments.dag, &solo2.fragments.dag],
    );

    let (joint_plans, joint) = sys.optimize_joint(&[&q1, &q2]).expect("plans");

    header(&["strategy", "q1 plan", "q2 plan", "joint elapsed (s)"]);
    row(&[
        "independent solo parcost".into(),
        solo1.plan.display(),
        solo2.plan.display(),
        format!("{independent:6.2}"),
    ]);
    row(&[
        "joint optimization".into(),
        joint_plans[0].plan.display(),
        joint_plans[1].plan.display(),
        format!("{joint:6.2}"),
    ]);
    println!();
    println!(
        "Joint win: {:+.1}%. Optimized alone, each query picks the plan that best \
         overlaps *its own* fragments; optimized together, the planner can pick plan \
         shapes whose fragments pair across queries — e.g. keeping a query's plan \
         IO-lean because its partner query supplies the CPU-bound work.",
        100.0 * (1.0 - joint / independent)
    );
}
