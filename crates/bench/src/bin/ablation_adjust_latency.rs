//! Ablation: cost of the adjustment protocol.
//!
//! The paper's adjustment mechanism is viable *because* shared-memory
//! message rounds are cheap. This harness sweeps the protocol latency from
//! free to shared-nothing-network territory and measures INTER-W/-ADJ on
//! the Extreme workload; as the protocol gets slower its advantage decays
//! toward (and past) the no-adjustment variant.

use xprs_bench::{header, mean, row};
use xprs_disk::{DiskParams, RelId};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::{MachineConfig, SchedulePolicy};
use xprs_sim::{SimConfig, SimTask, Simulator};
use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

fn tasks_for(seed: u64) -> Vec<(SimTask, f64)> {
    let params = DiskParams::paper_default();
    WorkloadGenerator::new()
        .generate(&WorkloadConfig::paper(WorkloadKind::Extreme, seed))
        .profiles()
        .into_iter()
        .enumerate()
        .map(|(i, p)| (SimTask::from_profile(p, RelId(i as u64 + 1), &params), 0.0))
        .collect()
}

fn measure(policy_of: &dyn Fn() -> Box<dyn SchedulePolicy>, latency: f64, seeds: &[u64]) -> f64 {
    let cfg = SimConfig { machine: MachineConfig::paper_default(), adjust_latency: latency };
    let xs: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            let mut p = policy_of();
            Simulator::new(cfg.clone()).run(p.as_mut(), &tasks_for(s)).expect("sim").elapsed
        })
        .collect();
    mean(&xs)
}

fn main() {
    let m = MachineConfig::paper_default();
    let seeds: Vec<u64> = (1..=10).collect();
    println!("# Ablation — adjustment-protocol latency (Extreme workload, DES, {} seeds)", seeds.len());
    println!();

    let with_adj: Box<dyn Fn() -> Box<dyn SchedulePolicy>> = {
        let m = m.clone();
        Box::new(move || Box::new(AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m.clone()))))
    };
    let intra: Box<dyn Fn() -> Box<dyn SchedulePolicy>> = {
        let m = m.clone();
        Box::new(move || Box::new(IntraOnly::new(m.clone(), true)))
    };

    let baseline = measure(&intra, 0.005, &seeds);
    println!("INTRA-ONLY baseline: {baseline:6.2} s");
    println!();
    header(&["protocol latency", "INTER-W/-ADJ elapsed (s)", "win vs INTRA-ONLY"]);
    for latency in [0.0, 0.005, 0.05, 0.5, 2.0, 5.0] {
        let t = measure(&with_adj, latency, &seeds);
        row(&[
            format!("{:>7} ms", (latency * 1000.0) as u64),
            format!("{t:6.2}"),
            format!("{:+5.1}%", 100.0 * (1.0 - t / baseline)),
        ]);
    }
    println!();
    println!(
        "Shared-memory rounds (≤ 5 ms) leave the win intact; at shared-nothing network \
         costs (hundreds of ms to seconds) the dynamic adjustment stops paying — the \
         paper's argument for why this design needs a shared-memory machine."
    );
}
