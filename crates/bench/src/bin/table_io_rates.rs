//! Section 3's calibration tables:
//!
//! 1. the disk-bandwidth table (97 / 60 / 35 io/s), *measured* by running
//!    scans against the discrete-event machine;
//! 2. the tuple-size ↔ I/O-rate calibration with the `r_min`/`r_max`
//!    anchors (5 and 70 io/s);
//! 3. the per-class task I/O-rate table, with the rates the generator
//!    realizes and the rates measured by a solo DES run of each task.

use xprs::{PolicyKind, XprsSystem};
use xprs_bench::{header, mean, row};
use xprs_scheduler::MachineConfig;
use xprs_workload::{Calibration, WorkloadConfig, WorkloadGenerator, WorkloadKind};

fn main() {
    println!("# Section 3 calibration tables");

    disk_bandwidths();
    calibration_anchors();
    class_table();
}

/// Measure the three service regimes on the simulated machine.
fn disk_bandwidths() {
    use xprs_disk::{DiskParams, DiskState, IoRequest, RelId, WorkerId};
    println!();
    println!("## Disk service regimes (per disk, measured)");
    println!();
    let mut d = DiskState::new(DiskParams::paper_default());
    // Solo sequential stream.
    let mut busy = 0.0;
    for b in 0..1000u64 {
        let (_, dur) = d.serve(&IoRequest { rel: RelId(1), local_block: b, worker: WorkerId(0), solo: true });
        busy += dur;
    }
    let seq_rate = 1000.0 / busy;
    // One parallel scan (two workers, slightly unordered).
    d.reset();
    busy = 0.0;
    for b in 0..500u64 {
        for w in 0..2u64 {
            let (_, dur) = d.serve(&IoRequest {
                rel: RelId(1),
                local_block: 2 * b + w,
                worker: WorkerId(w),
                solo: false,
            });
            busy += dur;
        }
    }
    let par_rate = 1000.0 / busy;
    // Random pointer chasing.
    d.reset();
    busy = 0.0;
    let mut block = 7u64;
    for _ in 0..1000 {
        block = block.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 100_000;
        let (_, dur) = d.serve(&IoRequest { rel: RelId(1), local_block: block, worker: WorkerId(0), solo: true });
        busy += dur;
    }
    let rand_rate = 1000.0 / busy;
    header(&["pattern", "paper (io/s)", "measured (io/s)"]);
    row(&["sequential read".into(), "97".into(), format!("{seq_rate:5.1}")]);
    row(&["almost sequential read".into(), "60".into(), format!("{par_rate:5.1}")]);
    row(&["random read".into(), "35".into(), format!("{rand_rate:5.1}")]);
    let m = MachineConfig::paper_default();
    println!();
    println!(
        "Aggregate parallel bandwidth B = {} × {} = {} io/s; threshold B/N = {} io/s.",
        m.n_disks,
        m.almost_seq_bw,
        m.total_bandwidth(),
        m.io_threshold()
    );
}

/// The r_min / r_max anchors and the rate ↔ tuple-size inversion.
fn calibration_anchors() {
    let c = Calibration::paper_default();
    println!();
    println!("## Tuple-size calibration (r_min / r_max anchors)");
    println!();
    header(&["relation", "b length (bytes)", "tuples/page", "model rate (io/s)", "paper rate"]);
    row(&[
        "r_min (b = NULL)".into(),
        "0".into(),
        format!("{}", c.tuples_per_page(0)),
        format!("{:4.1}", c.rate(0)),
        "5".into(),
    ]);
    let big = 8192 - 24 - 14;
    row(&[
        "r_max (one tuple/page)".into(),
        format!("{big}"),
        format!("{}", c.tuples_per_page(big)),
        format!("{:4.1}", c.rate(big)),
        "70".into(),
    ]);
    println!();
    header(&["target rate (io/s)", "b length chosen", "achieved rate"]);
    for target in [10.0, 20.0, 30.0, 45.0, 60.0, 70.0] {
        let blen = c.blen_for_rate(target);
        row(&[format!("{target:4.0}"), format!("{blen}"), format!("{:5.2}", c.rate(blen))]);
    }
}

/// The task-class table, cross-checked against solo DES measurements.
fn class_table() {
    let sys = XprsSystem::paper_default();
    let mut solo_machine = MachineConfig::paper_default();
    solo_machine.n_procs = 1; // measure each task sequentially
    let solo_sys = XprsSystem::new(solo_machine);

    println!();
    println!("## Task classes (paper's table) and realized rates");
    println!();
    header(&[
        "class",
        "paper range (io/s)",
        "generated range",
        "solo-DES measured range",
    ]);
    for (kind, paper_range) in [
        (WorkloadKind::AllCpu, "[5, 30)"),
        (WorkloadKind::AllIo, "(30, 60]"),
        (WorkloadKind::Extreme, "[5,15] ∪ [60,70]"),
        (WorkloadKind::RandomMix, "[5, 70]"),
    ] {
        let mut gen_rates = Vec::new();
        let mut measured = Vec::new();
        for seed in 1..=3u64 {
            let w = WorkloadGenerator::new().generate(&WorkloadConfig::paper(kind, seed));
            for t in &w.tasks {
                gen_rates.push(t.profile.io_rate);
                // Sequential (parallelism-1) run of just this task.
                let report =
                    solo_sys.simulate(std::slice::from_ref(&t.profile), PolicyKind::IntraOnly).expect("sim");
                measured.push(t.profile.total_ios() / report.elapsed);
            }
        }
        let span = |xs: &[f64]| {
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(0.0, f64::max);
            format!("[{lo:4.1}, {hi:4.1}] (mean {:4.1})", mean(xs))
        };
        row(&[
            kind.label().to_string(),
            paper_range.to_string(),
            span(&gen_rates),
            span(&measured),
        ]);
    }
    let _ = sys;
}
