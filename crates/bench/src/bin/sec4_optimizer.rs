//! Section 4: optimizing bushy-tree plans for inter-operation parallelism.
//!
//! Builds a catalog whose relations mix IO-heavy (fat-tuple) and CPU-heavy
//! (thin-tuple) scans, then optimizes multi-join queries three ways:
//!
//! * `HONG91` — left-deep trees ranked by `seqcost` (the prior work);
//! * `bushy + seqcost` — bushy enumeration, conventional ranking;
//! * `bushy + parcost` — the paper's proposal: rank complete plans by
//!   `parcost(p, n) = T_n(F(p))`.
//!
//! For each choice it reports `seqcost`, `parcost` (estimated parallel
//! response time) and the fragment structure.

use xprs::{Costing, PlanShape, Query, XprsSystem};
use xprs_bench::{header, row};
use xprs_storage::{Datum, Schema, Tuple};
use xprs_workload::Calibration;

fn main() {
    let mut sys = XprsSystem::paper_default();
    let cal = Calibration::paper_default();

    // Four relations: two IO-heavy (fat tuples) and two CPU-heavy (thin).
    // Keys are distinct within each relation (a foreign-key-like equi-join),
    // so joins filter rather than multiply.
    let specs: [(&str, f64, u64); 4] = [
        ("fat_a", 65.0, 2200),
        ("thin_b", 7.0, 42_000),
        ("fat_c", 60.0, 1800),
        ("thin_d", 9.0, 35_000),
    ];
    for (name, rate, n_tuples) in specs {
        let blen = cal.blen_for_rate(rate);
        let cat = sys.catalog_mut();
        cat.create(name, Schema::paper_rel());
        cat.load(
            name,
            (0..n_tuples).map(|i| {
                Tuple::from_values(vec![Datum::Int(i as i32), Datum::Text("x".repeat(blen))])
            }),
        );
        cat.build_index(name, false);
    }

    println!("# Section 4 — two-phase optimization with parcost");
    println!();
    println!("Catalog: fat_a/fat_c scan at ~60–65 io/s (IO-bound), thin_b/thin_d at ~7–9 io/s (CPU-bound).");
    println!();

    let query = Query::join()
        .rel("fat_a", 1.0)
        .rel("thin_b", 1.0)
        .rel("fat_c", 1.0)
        .rel("thin_d", 1.0)
        .on(0, 1)
        .on(1, 2)
        .on(2, 3)
        .build();

    header(&["strategy", "chosen plan", "seqcost (s)", "parcost = T_n(F(p)) (s)", "fragments", "left-deep?"]);
    let mut results = Vec::new();
    for (label, shape, costing) in [
        ("HONG91: left-deep + seqcost", PlanShape::LeftDeep, Costing::SeqCost),
        ("bushy + seqcost", PlanShape::Bushy, Costing::SeqCost),
        ("bushy + parcost (this paper)", PlanShape::Bushy, Costing::ParCost),
    ] {
        sys.optimizer_mut().shape = shape;
        let o = sys.optimize(&query, costing).expect("plan");
        row(&[
            label.to_string(),
            o.plan.display(),
            format!("{:6.2}", o.seqcost),
            format!("{:6.2}", o.parcost),
            format!("{}", o.fragments.fragments.len()),
            format!("{}", o.plan.is_left_deep()),
        ]);
        results.push((label, o));
    }

    let hong91 = &results[0].1;
    let parcost_choice = &results[2].1;
    println!();
    println!(
        "Estimated single-query response-time speedup of the parcost choice over the \
         HONG91 baseline: {:4.2}× (parcost {:5.2} s vs {:5.2} s).",
        hong91.parcost / parcost_choice.parcost,
        parcost_choice.parcost,
        hong91.parcost
    );
    println!();
    println!("## Fragment profiles of the parcost-chosen plan");
    println!();
    header(&["fragment", "T_i (s)", "D_i (ios)", "C_i (io/s)", "class (B/N = 30)"]);
    for f in &parcost_choice.fragments.fragments {
        let class = if f.profile.io_rate > 30.0 { "IO-bound" } else { "CPU-bound" };
        row(&[
            f.profile.id.to_string(),
            format!("{:6.2}", f.profile.seq_time),
            format!("{:7.0}", f.ios),
            format!("{:5.1}", f.profile.io_rate),
            class.to_string(),
        ]);
    }
    println!();
    println!(
        "In a multi-user setting the paper instead keeps per-query intra-only plans and \
         relies on the Section 2.5 scheduler to pair fragments *across* queries; the \
         single-user case above is where bushy trees and parcost are required."
    );
}
