//! Emit `BENCH_obs.json` + `metrics.json`: the observability layer's two
//! promises, measured.
//!
//! 1. **Overhead** — enabling hot-path metrics (`ExecConfig::with_obs`) must
//!    not cost throughput: interleaved single-worker A/B runs of the
//!    `exec_scan` stream with metrics off and on, gated on the median over
//!    independent blocks of best-of-N scan-wall ratios. The CI `obs` leg
//!    fails the build when that ratio exceeds ~2%.
//! 2. **The audit** — two IO-heavy scans co-run under a scaled-time machine;
//!    the §2.2 pairing window's *measured* disk bandwidth must fall inside
//!    the §2.3 band `[Br, Bs]`, with per-class busy time and CPU/disk
//!    utilization reported for 2/4/8 total workers. The headline (8-worker)
//!    run dumps `metrics.json`.
//!
//! Usage: `bench_obs [BENCH_obs.json] [metrics.json]`.

use std::path::Path;

use xprs_bench::{exec_obs, exec_scan, host_header_json};
use xprs_executor::{DataPath, ExecConfig};

const RELATION_TUPLES: u64 = 8_192;
// The A/B measures instruction cost, so it runs the scan stream on ONE
// worker: on this single-core container an 8-worker A/B measures scheduler
// luck (the ratio wandered ±4% run to run — wider than the 1.02 gate), not
// instrumentation. The gated figure is the MEDIAN over `BLOCKS` independent
// blocks of best-of-`TRIALS` ratios: the floor of each block dodges noise
// spikes within it, and the median across blocks survives the multi-second
// sustained-load patches that can poison any single block whole.
const QUERIES: usize = 768;
const TRIALS: usize = 5; // paired trials per block
const BLOCKS: usize = 5;
const AUDIT_TUPLES_EACH: u64 = 2_600; // ~260 pages per relation
const AUDIT_SCALE: f64 = 0.05; // 20× faster than real time
const AUDIT_WORKERS: [u32; 3] = [1, 2, 4]; // per scan; ×2 scans co-running

struct AuditRow {
    workers_total: u32,
    paired_bw: f64,
    predicted_bw: f64,
    disk_util: f64,
    cpu_util: f64,
    requests: u64,
    in_band: bool,
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_obs.json".to_string());
    let metrics_path = std::env::args().nth(2).unwrap_or_else(|| "metrics.json".to_string());

    // --- 1. Overhead A/B -------------------------------------------------
    let cat = exec_scan::catalog(RELATION_TUPLES);
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut block_ratios = Vec::with_capacity(BLOCKS);
    exec_scan::run_with_obs(&cat, 1, DataPath::Decontended, QUERIES, false); // warmup
    exec_scan::run_with_obs(&cat, 1, DataPath::Decontended, QUERIES, true);
    for _ in 0..BLOCKS {
        // Back-to-back pairs so host drift (frequency scaling, co-running
        // load) hits both sides equally, alternating which side goes first
        // so neither always inherits the other's cache state.
        let mut boff = f64::INFINITY;
        let mut bon = f64::INFINITY;
        for trial in 0..TRIALS {
            let (a, b) = if trial % 2 == 0 {
                let a = exec_scan::run_with_obs(&cat, 1, DataPath::Decontended, QUERIES, false);
                let b = exec_scan::run_with_obs(&cat, 1, DataPath::Decontended, QUERIES, true);
                (a, b)
            } else {
                let b = exec_scan::run_with_obs(&cat, 1, DataPath::Decontended, QUERIES, true);
                let a = exec_scan::run_with_obs(&cat, 1, DataPath::Decontended, QUERIES, false);
                (a, b)
            };
            assert!(a.emitted > 0 && b.emitted > 0, "vacuous scan");
            boff = boff.min(a.scan_wall);
            bon = bon.min(b.scan_wall);
        }
        block_ratios.push(bon / boff);
        off = off.min(boff);
        on = on.min(bon);
    }
    let mut sorted = block_ratios.clone();
    sorted.sort_by(|x, y| x.total_cmp(y));
    // The gated figure: the median block has to breach before the run does.
    let overhead_ratio = sorted[BLOCKS / 2];
    let floor_ratio = on / off;
    eprintln!("metrics off: best scan_wall {off:.4}s");
    eprintln!("metrics on:  best scan_wall {on:.4}s");
    eprintln!(
        "block ratios: {}",
        block_ratios.iter().map(|r| format!("{r:.4}")).collect::<Vec<_>>().join(" ")
    );
    println!(
        "overhead_ratio: {overhead_ratio:.4}  (median of {BLOCKS} blocks, \
         best-of-{TRIALS} each; global floor ratio {floor_ratio:.4})"
    );

    // --- 2. Utilization audit -------------------------------------------
    let audit_cat = exec_obs::catalog(AUDIT_TUPLES_EACH);
    let mut rows: Vec<AuditRow> = Vec::new();
    let mut band = (0.0f64, 0.0f64);
    for (i, &w) in AUDIT_WORKERS.iter().enumerate() {
        let headline = i + 1 == AUDIT_WORKERS.len();
        let metrics_out = headline.then(|| Path::new(&metrics_path));
        let (report, audit) = exec_obs::run(&audit_cat, w, AUDIT_SCALE, metrics_out);
        band = (audit.band_lo, audit.band_hi);
        // Time-weighted §2.3 prediction over the paired windows.
        let (mut pred, mut span) = (0.0, 0.0);
        for win in audit.windows.iter().filter(|w| w.paired) {
            let dt = (win.t1 - win.t0) / AUDIT_SCALE;
            pred += win.predicted_bw * dt;
            span += dt;
        }
        rows.push(AuditRow {
            workers_total: 2 * w,
            paired_bw: audit.paired_bw,
            predicted_bw: if span > 0.0 { pred / span } else { 0.0 },
            disk_util: audit.paired_disk_util,
            cpu_util: audit.paired_cpu_util,
            requests: audit.paired_requests,
            in_band: audit.paired_in_band,
        });
        let r = rows.last().unwrap();
        eprintln!(
            "workers={} paired_bw={:.1} io/s predicted={:.1} band=[{:.0},{:.0}] \
             disk_util={:.2} cpu_util={:.2} requests={} in_band={} reads={}",
            r.workers_total,
            r.paired_bw,
            r.predicted_bw,
            audit.band_lo,
            audit.band_hi,
            r.disk_util,
            r.cpu_util,
            r.requests,
            r.in_band,
            report.stats.reads,
        );
    }
    let headline = rows.last().unwrap();
    println!("paired_bw: {:.2}", headline.paired_bw);
    println!("band: [{:.2}, {:.2}]", band.0, band.1);
    println!("paired_in_band: {}", headline.in_band);
    println!("metrics_json: {metrics_path}");

    // --- 3. BENCH_obs.json ----------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"observability\",\n");
    json.push_str(&host_header_json(
        ExecConfig::unthrottled().machine.n_procs,
        ExecConfig::unthrottled().bufpool_pages,
    ));
    json.push_str(&format!("  \"overhead_trials\": {},\n", BLOCKS * TRIALS));
    json.push_str(&format!("  \"scan_wall_metrics_off\": {off:.6},\n"));
    json.push_str(&format!("  \"scan_wall_metrics_on\": {on:.6},\n"));
    json.push_str(&format!("  \"overhead_ratio\": {overhead_ratio:.4},\n"));
    json.push_str(&format!("  \"overhead_floor_ratio\": {floor_ratio:.4},\n"));
    json.push_str(&format!(
        "  \"overhead_block_ratios\": [{}],\n",
        block_ratios.iter().map(|r| format!("{r:.4}")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str(&format!("  \"audit_scale\": {AUDIT_SCALE},\n"));
    json.push_str(&format!("  \"band\": [{:.2}, {:.2}],\n", band.0, band.1));
    json.push_str("  \"audit\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers_total\": {}, \"paired_bw\": {:.2}, \"predicted_bw\": {:.2}, \
             \"paired_disk_util\": {:.4}, \"paired_cpu_util\": {:.4}, \
             \"paired_requests\": {}, \"in_band\": {}}}{}\n",
            r.workers_total,
            r.paired_bw,
            r.predicted_bw,
            r.disk_util,
            r.cpu_util,
            r.requests,
            r.in_band,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path} and {metrics_path}");
}
