//! Figure 7: turnaround time of the three scheduling algorithms over the
//! four Section 3 workloads (ten selection tasks each, 8 processors, 4
//! disks), averaged over several seeds, on both measurement engines.
//!
//! Usage: `fig7_schedulers [n_seeds]` (default 10).

use xprs::{PolicyKind, XprsSystem};
use xprs_bench::{des_elapsed, fluid_elapsed, header, mean, row, stddev};
use xprs_workload::WorkloadKind;

fn main() {
    let n_seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let seeds: Vec<u64> = (1..=n_seeds).collect();
    let sys = XprsSystem::paper_default();

    println!("# Figure 7 — elapsed time (s) of scheduling algorithms by workload");
    println!();
    println!("Machine: 8 processors, 4 disks at 97/60/35 io/s (B = 240 io/s); {n_seeds} seeds.");

    for (engine_name, runner) in [
        ("discrete-event simulator (measured)", des_elapsed as fn(&XprsSystem, WorkloadKind, PolicyKind, &[u64]) -> Vec<f64>),
        ("fluid model (the paper's cost arithmetic)", fluid_elapsed),
    ] {
        println!();
        println!("## Engine: {engine_name}");
        println!();
        header(&[
            "workload",
            "INTRA-ONLY",
            "INTER-W/O-ADJ",
            "INTER-W/-ADJ",
            "W/-ADJ vs INTRA",
            "W/O-ADJ vs INTRA",
        ]);
        for kind in WorkloadKind::all() {
            let intra = runner(&sys, kind, PolicyKind::IntraOnly, &seeds);
            let noadj = runner(&sys, kind, PolicyKind::InterWithoutAdj, &seeds);
            let adj = runner(&sys, kind, PolicyKind::InterWithAdj, &seeds);
            let (mi, mn, ma) = (mean(&intra), mean(&noadj), mean(&adj));
            row(&[
                kind.label().to_string(),
                format!("{mi:7.2} ±{:4.2}", stddev(&intra)),
                format!("{mn:7.2} ±{:4.2}", stddev(&noadj)),
                format!("{ma:7.2} ±{:4.2}", stddev(&adj)),
                format!("{:+5.1}%", 100.0 * (ma / mi - 1.0)),
                format!("{:+5.1}%", 100.0 * (mn / mi - 1.0)),
            ]);
        }
    }
    println!();
    println!(
        "Paper's findings to compare against: all three roughly equal on AllCPU/AllIO; \
         INTER-W/-ADJ up to ~25% faster than INTRA-ONLY on mixed workloads; \
         INTER-W/O-ADJ loses even to INTRA-ONLY."
    );
}
