//! Ablation: the Section 2.3 seek-interference correction.
//!
//! Plans balance points either with the corrected three-equation system or
//! naively against the constant nominal bandwidth `B = 240` io/s, and
//! measures both planners on the fluid model (fractional allocations) and
//! on the discrete-event machine (whole workers).

use xprs_bench::{header, mean, row, stddev};
use xprs_disk::{DiskParams, RelId};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::fluid::FluidSim;
use xprs_scheduler::MachineConfig;
use xprs_sim::{SimConfig, SimTask, Simulator};
use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

fn policy(naive: bool, integral: bool) -> AdaptiveScheduler {
    let mut cfg = AdaptiveConfig::with_adjustment(MachineConfig::paper_default());
    cfg.naive_bandwidth = naive;
    cfg.integral = integral;
    AdaptiveScheduler::new(cfg)
}

fn run_des(kind: WorkloadKind, naive: bool, seeds: &[u64]) -> Vec<f64> {
    let params = DiskParams::paper_default();
    seeds
        .iter()
        .map(|&seed| {
            let tasks: Vec<(SimTask, f64)> = WorkloadGenerator::new()
                .generate(&WorkloadConfig::paper(kind, seed))
                .profiles()
                .into_iter()
                .enumerate()
                .map(|(i, p)| (SimTask::from_profile(p, RelId(i as u64 + 1), &params), 0.0))
                .collect();
            let mut p = policy(naive, true);
            Simulator::new(SimConfig::paper_default()).run(&mut p, &tasks).expect("sim").elapsed
        })
        .collect()
}

fn run_fluid(kind: WorkloadKind, naive: bool, seeds: &[u64]) -> Vec<f64> {
    let sim = FluidSim::new(MachineConfig::paper_default());
    seeds
        .iter()
        .map(|&seed| {
            let tasks = WorkloadGenerator::new()
                .generate(&WorkloadConfig::paper(kind, seed))
                .profiles();
            let mut p = policy(naive, false);
            sim.run(&mut p, &tasks).expect("sim").elapsed
        })
        .collect()
}

fn main() {
    let seeds: Vec<u64> = (1..=10).collect();
    println!("# Ablation — seek-interference-aware vs naive constant-B planning");
    println!();
    println!("Policy: INTER-W/-ADJ; {} seeds.", seeds.len());
    for (engine, runner) in [
        ("fluid model, fractional allocations", run_fluid as fn(WorkloadKind, bool, &[u64]) -> Vec<f64>),
        ("discrete-event simulator, whole workers", run_des),
    ] {
        println!();
        println!("## Engine: {engine}");
        println!();
        header(&["workload", "corrected planner (s)", "naive planner (s)", "naive penalty"]);
        for kind in [WorkloadKind::Extreme, WorkloadKind::RandomMix, WorkloadKind::AllIo] {
            let corrected = runner(kind, false, &seeds);
            let naive = runner(kind, true, &seeds);
            let (mc, mn) = (mean(&corrected), mean(&naive));
            row(&[
                kind.label().to_string(),
                format!("{mc:6.2} ±{:4.2}", stddev(&corrected)),
                format!("{mn:6.2} ±{:4.2}", stddev(&naive)),
                format!("{:+5.1}%", 100.0 * (mn / mc - 1.0)),
            ]);
        }
    }
    println!();
    println!(
        "Reading: the correction moves the balance point by one to two workers at mid \
         I/O-rate ratios. With only 8 processors the integral rounding usually lands \
         both planners on the same split, so the measured difference stays within a \
         few percent either way; the correction's real role is the step-4 \
         T_inter-vs-T_intra decision, where an uncorrected bandwidth estimate would \
         force pairings whose seek penalty eats the gain (see fig4_balance_point's \
         marginal-pair table). On a machine with more processors per disk the \
         allocation error itself would grow."
    );
}
