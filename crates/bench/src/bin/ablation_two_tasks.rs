//! Ablation: "it is sufficient to only run two tasks at a time".
//!
//! Section 2.3 argues one IO-bound plus one CPU-bound task can always reach
//! the maximum-utilization corner, so co-scheduling more tasks only adds
//! memory pressure and disk seeks. This harness compares the paper's
//! balance-point pair scheduler against a `k`-way greedy co-scheduler that
//! splits the processors evenly over the `k` most extreme runnable tasks
//! (capped at each task's `maxp`), for k = 2..5, on the DES — where each
//! extra concurrent sequential scan really does cost seeks.

use xprs_bench::{header, mean, row};
use xprs_disk::{DiskParams, RelId};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::policy::{Action, RunningTask, SchedulePolicy};
use xprs_scheduler::{Boundedness, MachineConfig, TaskId, TaskProfile};
use xprs_sim::{SimConfig, SimTask, Simulator};
use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

/// Greedy k-way co-scheduler: keep up to `k` tasks running, processors
/// split evenly (capped by `maxp`), re-split on every completion.
struct KGreedy {
    m: MachineConfig,
    k: usize,
    pending: Vec<TaskProfile>,
}

impl KGreedy {
    fn new(m: MachineConfig, k: usize) -> Self {
        KGreedy { m, k, pending: Vec::new() }
    }

    /// Pick the most extreme pending task, alternating sides to keep the
    /// running mix diverse.
    fn pick(&mut self, want_io: bool) -> Option<TaskProfile> {
        if self.pending.is_empty() {
            return None;
        }
        let idx = self
            .pending
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let score = |t: &TaskProfile| if want_io { t.io_rate } else { -t.io_rate };
                score(a).total_cmp(&score(b))
            })
            .map(|(i, _)| i)?;
        Some(self.pending.remove(idx))
    }
}

impl SchedulePolicy for KGreedy {
    fn name(&self) -> &'static str {
        "K-GREEDY"
    }

    fn machine(&self) -> &MachineConfig {
        &self.m
    }

    fn on_arrival(&mut self, _now: f64, task: TaskProfile) {
        self.pending.push(task);
    }

    fn on_finish(&mut self, _now: f64, _id: TaskId) {}

    fn decide(&mut self, _now: f64, running: &[RunningTask]) -> Vec<Action> {
        let mut acts = Vec::new();
        let mut roster: Vec<(TaskId, f64, bool)> = running
            .iter()
            .map(|r| (r.profile.id, r.profile.maxp(&self.m), false))
            .collect();
        // Fill open slots, alternating IO / CPU preference.
        let mut want_io = !running
            .iter()
            .any(|r| r.profile.classify(&self.m) == Boundedness::IoBound);
        while roster.len() < self.k {
            let Some(t) = self.pick(want_io).or_else(|| self.pick(!want_io)) else { break };
            roster.push((t.id, t.maxp(&self.m), true));
            want_io = !want_io;
        }
        if roster.is_empty() {
            return acts;
        }
        // Even split capped by maxp; leftovers redistributed once.
        let n = self.m.n_procs as f64;
        let share = (n / roster.len() as f64).floor().max(1.0);
        for (id, maxp, is_new) in &roster {
            let x = share.min(maxp.floor().max(1.0));
            if *is_new {
                acts.push(Action::Start { id: *id, parallelism: x });
            } else if let Some(r) = running.iter().find(|r| r.profile.id == *id) {
                if (r.parallelism - x).abs() > 0.5 {
                    acts.push(Action::Adjust { id: *id, parallelism: x });
                }
            }
        }
        acts
    }
}

fn tasks_for(kind: WorkloadKind, seed: u64) -> Vec<(SimTask, f64)> {
    let params = DiskParams::paper_default();
    WorkloadGenerator::new()
        .generate(&WorkloadConfig::paper(kind, seed))
        .profiles()
        .into_iter()
        .enumerate()
        .map(|(i, p)| (SimTask::from_profile(p, RelId(i as u64 + 1), &params), 0.0))
        .collect()
}

fn main() {
    let m = MachineConfig::paper_default();
    let seeds: Vec<u64> = (1..=10).collect();
    let sim = Simulator::new(SimConfig::paper_default());

    println!("# Ablation — two-task co-scheduling vs k-way greedy (DES, {} seeds)", seeds.len());
    for kind in [WorkloadKind::Extreme, WorkloadKind::RandomMix] {
        println!();
        println!("## Workload: {}", kind.label());
        println!();
        header(&["scheduler", "elapsed (s)"]);
        let intra: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                let mut p = IntraOnly::new(m.clone(), true);
                sim.run(&mut p, &tasks_for(kind, s)).expect("sim").elapsed
            })
            .collect();
        row(&["INTRA-ONLY (k=1)".into(), format!("{:6.2}", mean(&intra))]);
        let pair: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                let mut p = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m.clone()));
                sim.run(&mut p, &tasks_for(kind, s)).expect("sim").elapsed
            })
            .collect();
        row(&["INTER-W/-ADJ (balance-point pair)".into(), format!("{:6.2}", mean(&pair))]);
        for k in [2usize, 3, 4, 5] {
            let xs: Vec<f64> = seeds
                .iter()
                .map(|&s| {
                    let mut p = KGreedy::new(m.clone(), k);
                    sim.run(&mut p, &tasks_for(kind, s)).expect("sim").elapsed
                })
                .collect();
            row(&[format!("K-GREEDY even split, k={k}"), format!("{:6.2}", mean(&xs))]);
        }
    }
    println!();
    println!(
        "Reading: k = 2 — whether split by the balance point or re-split eagerly on \
         every completion — is the sweet spot; k ≥ 3 adds head seeks and memory \
         pressure without adding deliverable bandwidth and loses ground. This is the \
         paper's \"one IO-bound plus one CPU-bound task suffices\" simplification, \
         measured."
    );
}
