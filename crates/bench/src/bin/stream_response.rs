//! The continuous-sequence extension (end of Section 2.5): `S_io` and
//! `S_cpu` act as queues, so the same algorithm serves an endless multi-user
//! task stream. This harness sweeps the arrival rate of a 30-task random-mix
//! stream and measures mean response time per policy on the DES — showing
//! the adaptive algorithm's advantage growing as the system saturates.

use xprs_bench::{header, mean, row};
use xprs_disk::{DiskParams, RelId};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::{MachineConfig, Pairing, SchedulePolicy, TaskId, TaskProfile};
use xprs_sim::{SimConfig, SimTask, Simulator};
use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

/// Timed task arrivals plus their release times.
type Stream = (Vec<(SimTask, f64)>, Vec<(TaskId, f64)>);

/// A policy constructor for repeated runs.
type PolicyFactory = Box<dyn Fn() -> Box<dyn SchedulePolicy>>;

fn stream(seed: u64, inter_arrival: f64) -> Stream {
    let params = DiskParams::paper_default();
    let mut tasks: Vec<TaskProfile> = Vec::new();
    for chunk in 0..3u64 {
        let w = WorkloadGenerator::new()
            .generate(&WorkloadConfig::paper(WorkloadKind::RandomMix, seed + 100 * chunk));
        tasks.extend(w.profiles().into_iter().map(|mut t| {
            t.id = TaskId(t.id.0 + chunk * 10);
            t
        }));
    }
    let arrivals: Vec<(SimTask, f64)> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            (
                SimTask::from_profile(t.clone(), RelId(i as u64 + 1), &params),
                inter_arrival * i as f64,
            )
        })
        .collect();
    let releases = arrivals
        .iter()
        .map(|(t, at)| (t.profile.id, *at))
        .collect();
    (arrivals, releases)
}

fn main() {
    let m = MachineConfig::paper_default();
    let seeds: Vec<u64> = (1..=5).collect();
    println!("# Multi-user stream — throughput and response vs arrival rate (DES)");
    println!();
    println!("30 random-mix tasks arriving at a fixed interval; {} seeds.", seeds.len());
    println!();

    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("INTRA-ONLY", {
            let m = m.clone();
            Box::new(move || Box::new(IntraOnly::new(m.clone(), true)) as Box<dyn SchedulePolicy>)
        }),
        ("W/-ADJ most-extreme", {
            let m = m.clone();
            Box::new(move || {
                Box::new(AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m.clone())))
                    as Box<dyn SchedulePolicy>
            })
        }),
        ("W/-ADJ SJF", {
            let m = m.clone();
            Box::new(move || {
                let mut cfg = AdaptiveConfig::with_adjustment(m.clone());
                cfg.pairing = Pairing::ShortestJobFirst;
                Box::new(AdaptiveScheduler::new(cfg)) as Box<dyn SchedulePolicy>
            })
        }),
    ];

    for (metric_name, want_elapsed) in
        [("total elapsed (throughput)", true), ("mean response", false)]
    {
        println!("## Metric: {metric_name} (s)");
        println!();
        header(&["inter-arrival (s)", "INTRA-ONLY", "W/-ADJ most-extreme", "W/-ADJ SJF"]);
        for inter_arrival in [6.0, 4.0, 2.5, 1.5, 0.8] {
            let mut cells = vec![format!("{inter_arrival:4.1}")];
            for (_, make) in &policies {
                let xs: Vec<f64> = seeds
                    .iter()
                    .map(|&s| {
                        let (arrivals, releases) = stream(s, inter_arrival);
                        let mut p = make();
                        let report = Simulator::new(SimConfig::paper_default())
                            .run(p.as_mut(), &arrivals)
                            .expect("sim");
                        if want_elapsed {
                            report.elapsed
                        } else {
                            report.mean_response_time(&releases)
                        }
                    })
                    .collect();
                cells.push(format!("{:7.2}", mean(&xs)));
            }
            row(&cells);
        }
        println!();
    }
    println!(
        "Reading: on throughput the pairing scheduler matches or beats the baseline at \
         every load. On *response time* under saturation, most-extreme pairing holds \
         long tasks in the machine and inflates the mean — which is exactly why the \
         paper prescribes shortest-job-first pairing for multi-user response: the SJF \
         column recovers ground against the baseline."
    );
}
