//! Emit `BENCH_executor.json`: scan throughput of the de-contended executor
//! data path against the seed's global-lock path.
//!
//! The workload is a stream of back-to-back parallel selections over one
//! relation — the paper's mixed-query regime, where the executor starts and
//! finishes fragments continuously. For each worker count in {1, 2, 4, 8}
//! and each [`DataPath`], the stream runs several times and the median scan
//! wall time, tuples/second, buffer-pool hit rate, and thread counters are
//! recorded. The headline number is the 8-worker throughput ratio of the
//! de-contended path over the global-lock (seed) path.
//!
//! Usage: `bench_executor [output.json]` (default `BENCH_executor.json`).

use xprs_bench::exec_scan;
use xprs_executor::DataPath;

const RELATION_TUPLES: u64 = 8_192;
const QUERIES: usize = 48;
const TRIALS: usize = 9;
const WORKERS: [u32; 4] = [1, 2, 4, 8];

struct Row {
    path: DataPath,
    workers: u32,
    wall: f64,
    scan_wall: f64,
    tuples_per_sec: f64,
    hit_rate: f64,
    pool_threads: u64,
    pool_jobs: u64,
}

fn path_name(p: DataPath) -> &'static str {
    match p {
        DataPath::Decontended => "decontended",
        DataPath::GlobalLock => "global_lock",
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_executor.json".to_string());
    let cat = exec_scan::catalog(RELATION_TUPLES);
    let examined = RELATION_TUPLES * QUERIES as u64;

    let mut rows: Vec<Row> = Vec::new();
    for path in [DataPath::GlobalLock, DataPath::Decontended] {
        for &w in &WORKERS {
            let mut walls = Vec::with_capacity(TRIALS);
            let mut scan_walls = Vec::with_capacity(TRIALS);
            let mut last = None;
            exec_scan::run(&cat, w, path, QUERIES); // warmup (page cache, allocator)
            for _ in 0..TRIALS {
                let r = exec_scan::run(&cat, w, path, QUERIES);
                assert_eq!(r.tuples, examined, "scan dropped tuples");
                assert!(r.emitted > 0, "vacuous selection");
                walls.push(r.wall);
                scan_walls.push(r.scan_wall);
                last = Some(r);
            }
            let last = last.unwrap();
            let wall = median(&mut walls);
            // Throughput is examined tuples over the *scan phase* wall time
            // (first fragment start to last fragment finish); setup before
            // the first start is excluded, and the full run wall is also
            // reported.
            let scan_wall = median(&mut scan_walls);
            rows.push(Row {
                path,
                workers: w,
                wall,
                scan_wall,
                tuples_per_sec: examined as f64 / scan_wall,
                hit_rate: last.hit_rate,
                pool_threads: last.pool_threads,
                pool_jobs: last.pool_jobs,
            });
            eprintln!(
                "{:<12} w={} scan={:.4}s total={:.4}s  {:>12.0} tuples/s  hit_rate={:.3}  threads={} jobs={}",
                path_name(path),
                w,
                scan_wall,
                wall,
                examined as f64 / scan_wall,
                last.hit_rate,
                last.pool_threads,
                last.pool_jobs
            );
        }
    }

    let tput = |p: DataPath, w: u32| {
        rows.iter().find(|r| r.path == p && r.workers == w).unwrap().tuples_per_sec
    };
    let speedup_at_8 = tput(DataPath::Decontended, 8) / tput(DataPath::GlobalLock, 8);
    eprintln!("speedup at 8 workers (decontended / global_lock): {speedup_at_8:.2}x");

    // Hand-rolled JSON: the workspace builds offline with no serde.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"executor_scan\",\n");
    json.push_str(&format!("  \"relation_tuples\": {RELATION_TUPLES},\n"));
    json.push_str(&format!("  \"queries_per_run\": {QUERIES},\n"));
    json.push_str(&format!("  \"tuples_examined_per_run\": {examined},\n"));
    json.push_str(&format!("  \"trials_per_config\": {TRIALS},\n"));
    json.push_str("  \"wall_stat\": \"median\",\n");
    json.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"data_path\": \"{}\", \"workers\": {}, \"scan_wall_seconds\": {:.6}, \
             \"total_wall_seconds\": {:.6}, \
             \"tuples_per_sec\": {:.1}, \"bufpool_hit_rate\": {:.4}, \
             \"pool_threads\": {}, \"pool_jobs\": {}}}{}\n",
            path_name(r.path),
            r.workers,
            r.scan_wall,
            r.wall,
            r.tuples_per_sec,
            r.hit_rate,
            r.pool_threads,
            r.pool_jobs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_decontended_vs_global_lock_at_8_workers\": {speedup_at_8:.3}\n"
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
