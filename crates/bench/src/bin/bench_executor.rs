//! Emit `BENCH_executor.json`: scan throughput of the de-contended executor
//! data path against the seed's global-lock path.
//!
//! The workload is a stream of back-to-back parallel selections over one
//! relation — the paper's mixed-query regime, where the executor starts and
//! finishes fragments continuously. For each worker count in {1, 2, 4, 8}
//! and each [`DataPath`], the stream runs several times and the median scan
//! wall time, tuples/second, buffer-pool hit rate, and thread counters are
//! recorded. The headline number is the 8-worker throughput ratio of the
//! de-contended path over the global-lock (seed) path.
//!
//! A second, **disk-resident** section runs the larger-than-memory workload
//! (relations [`xprs_bench::exec_disk::SPILL_FACTOR`]× the pool, skewed
//! block costs, scaled-time machine): two co-run scans per config, the
//! worker count and [`MorselMode`] as the independent variables. Its
//! headline gate is the paper's central claim — 8-worker throughput must
//! strictly exceed 1-worker throughput — with the §2.3 utilization audit
//! confirming the disk band is saturated rather than under-staffed.
//!
//! A third, **memory-admission** section runs concurrent hash joins whose
//! aggregate build demand is 4× the buffer pool under memory grants
//! (admission queue + spill) against an uncontended big-pool reference. Its
//! gates: the result digests match (admission never changes an answer), the
//! grant ledger balances, no page stays pinned, and the builds actually
//! queued and spilled.
//!
//! A fourth, **predictive** section is the declared-vs-predicted A/B:
//! identical concurrent joins whose declared profiles are seeded wrong by
//! 2–8×, run cold (trusting declarations) and with a shared online
//! predictor warmed across repetitions. Its gates: the warm predicted mode
//! beats declared mode on wall time, footprint overruns decrease as the
//! model warms, the grant ledger balances with zero pins, and the two
//! modes' final-rep schedules provably differ.
//!
//! Usage: `bench_executor [output.json]` (default `BENCH_executor.json`).

use std::sync::Arc;

use xprs_bench::{exec_disk, exec_memory, exec_predict, exec_scan, host_header_json};
use xprs_executor::{DataPath, ExecConfig, MorselMode};
use xprs_scheduler::predict::Predictor;

const RELATION_TUPLES: u64 = 8_192;
const QUERIES: usize = 48;
const TRIALS: usize = 9;
const WORKERS: [u32; 4] = [1, 2, 4, 8];
const DR_TRIALS: usize = 3;
const DR_SEED: u64 = 0xD15C;
const MEM_TRIALS: usize = 3;
const MEM_SEED: u64 = 0x4EA7;
const MEM_WORKERS: u32 = 4;
const PRED_SEED: u64 = 0x9D1C;
/// Repetitions per mode; the first [`PRED_WARMUP`] predicted reps run on
/// the cold model and are excluded from the headline wall comparison.
const PRED_REPS: usize = 6;
const PRED_WARMUP: usize = 2;

struct Row {
    path: DataPath,
    workers: u32,
    wall: f64,
    scan_wall: f64,
    tuples_per_sec: f64,
    hit_rate: f64,
    pool_threads: u64,
    pool_jobs: u64,
}

fn path_name(p: DataPath) -> &'static str {
    match p {
        DataPath::Decontended => "decontended",
        DataPath::GlobalLock => "global_lock",
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_executor.json".to_string());
    let cat = exec_scan::catalog(RELATION_TUPLES);
    let examined = RELATION_TUPLES * QUERIES as u64;

    let mut rows: Vec<Row> = Vec::new();
    for path in [DataPath::GlobalLock, DataPath::Decontended] {
        for &w in &WORKERS {
            let mut walls = Vec::with_capacity(TRIALS);
            let mut scan_walls = Vec::with_capacity(TRIALS);
            let mut last = None;
            exec_scan::run(&cat, w, path, QUERIES); // warmup (page cache, allocator)
            for _ in 0..TRIALS {
                let r = exec_scan::run(&cat, w, path, QUERIES);
                assert_eq!(r.tuples, examined, "scan dropped tuples");
                assert!(r.emitted > 0, "vacuous selection");
                walls.push(r.wall);
                scan_walls.push(r.scan_wall);
                last = Some(r);
            }
            let last = last.unwrap();
            let wall = median(&mut walls);
            // Throughput is examined tuples over the *scan phase* wall time
            // (first fragment start to last fragment finish); setup before
            // the first start is excluded, and the full run wall is also
            // reported.
            let scan_wall = median(&mut scan_walls);
            rows.push(Row {
                path,
                workers: w,
                wall,
                scan_wall,
                tuples_per_sec: examined as f64 / scan_wall,
                hit_rate: last.hit_rate,
                pool_threads: last.pool_threads,
                pool_jobs: last.pool_jobs,
            });
            eprintln!(
                "{:<12} w={} scan={:.4}s total={:.4}s  {:>12.0} tuples/s  hit_rate={:.3}  threads={} jobs={}",
                path_name(path),
                w,
                scan_wall,
                wall,
                examined as f64 / scan_wall,
                last.hit_rate,
                last.pool_threads,
                last.pool_jobs
            );
        }
    }

    let tput = |p: DataPath, w: u32| {
        rows.iter().find(|r| r.path == p && r.workers == w).unwrap().tuples_per_sec
    };
    let speedup_at_8 = tput(DataPath::Decontended, 8) / tput(DataPath::GlobalLock, 8);
    eprintln!("speedup at 8 workers (decontended / global_lock): {speedup_at_8:.2}x");

    // ---- Disk-resident scaling: the workload where 8 must beat 1 ----
    let (dr_cat, dr_wl) = exec_disk::catalog(DR_SEED);
    let dr_configs: Vec<(MorselMode, u32)> = WORKERS
        .iter()
        .map(|&w| (MorselMode::stealing(), w))
        .chain([(MorselMode::StaticShares, 8u32)])
        .collect();
    let mut dr_rows = Vec::new();
    for &(mode, w) in &dr_configs {
        let mut scan_walls = Vec::with_capacity(DR_TRIALS);
        let mut last = None;
        for _ in 0..DR_TRIALS {
            let r = exec_disk::scan_run(&dr_cat, &dr_wl, w, mode);
            assert!(r.emitted > 0, "vacuous disk-resident scan");
            scan_walls.push(r.scan_wall);
            last = Some(r);
        }
        let last = last.unwrap();
        let scan_wall = median(&mut scan_walls);
        let pages_per_sec = last.pages as f64 / scan_wall;
        eprintln!(
            "disk_resident {:<13} w={} scan={:.3}s  {:>8.1} pages/s  hit_rate={:.3}  \
             steals={}  paired_bw={:.1} band=[{:.0},{:.0}] in_band={}",
            exec_disk::mode_name(mode),
            w,
            scan_wall,
            pages_per_sec,
            last.hit_rate,
            last.steals,
            last.audit.paired_bw,
            last.audit.band_lo,
            last.audit.band_hi,
            last.audit.paired_in_band,
        );
        dr_rows.push((mode, w, scan_wall, pages_per_sec, last));
    }
    let dr_tput = |mode: MorselMode, w: u32| {
        dr_rows.iter().find(|r| r.0 == mode && r.1 == w).map(|r| r.3).unwrap()
    };
    let dr_speedup = dr_tput(MorselMode::stealing(), 8) / dr_tput(MorselMode::stealing(), 1);
    let dr8 = &dr_rows.iter().find(|r| r.0 == MorselMode::stealing() && r.1 == 8).unwrap().4;
    let saturated = dr8.audit.paired_in_band;
    eprintln!(
        "disk-resident speedup (8w / 1w, stealing): {dr_speedup:.2}x  saturated_at_8={saturated}"
    );

    // ---- Memory admission: oversized builds must queue, spill, and agree ----
    let (mem_cat, mem_wl) = exec_memory::catalog(MEM_SEED);
    let mut mem_rows: Vec<(bool, f64, exec_memory::MemoryRun)> = Vec::new();
    for grants in [false, true] {
        let mut walls = Vec::with_capacity(MEM_TRIALS);
        let mut last = None;
        for _ in 0..MEM_TRIALS {
            let r = exec_memory::run(&mem_cat, &mem_wl, MEM_WORKERS, grants);
            assert!(r.emitted > 0, "vacuous memory-admission join");
            walls.push(r.wall);
            last = Some(r);
        }
        let last = last.unwrap();
        assert_eq!(last.granted_pages, last.released_pages, "grant ledger out of balance");
        assert_eq!(last.pinned_at_exit, 0, "pages pinned at exit");
        eprintln!(
            "memory {:<10} wall={:.4}s emitted={} granted={} waits={} spill_chunks={} spill_rows={}",
            if grants { "grants" } else { "reference" },
            median(&mut walls),
            last.emitted,
            last.granted_pages,
            last.grant_waits,
            last.spill_chunks,
            last.spill_rows,
        );
        mem_rows.push((grants, median(&mut walls), last));
    }
    let mem_ref = mem_rows.iter().find(|r| !r.0).unwrap();
    let mem_grant = mem_rows.iter().find(|r| r.0).unwrap();
    let mem_parity = mem_ref.2.rows_digest == mem_grant.2.rows_digest;
    let mem_overhead = mem_grant.1 / mem_ref.1;
    assert!(mem_parity, "admission changed a join answer");
    assert!(mem_grant.2.spill_chunks > 0, "4x-pool builds never spilled");
    eprintln!(
        "memory admission: parity={mem_parity} overhead={mem_overhead:.2}x \
         waits={} spill_rows={}",
        mem_grant.2.grant_waits, mem_grant.2.spill_rows
    );

    // ---- Predictive scheduling: corrected profiles must beat wrong ones ----
    let pred_cat = exec_predict::catalog(PRED_SEED);
    let pred_runs = exec_predict::wrong_runs(&pred_cat, PRED_SEED);
    let mut declared_reps = Vec::with_capacity(PRED_REPS);
    for _ in 0..PRED_REPS {
        let r = exec_predict::run(&pred_cat, &pred_runs, None);
        assert!(r.emitted > 0, "vacuous predictive-A/B join");
        assert_eq!(r.granted_pages, r.released_pages, "declared-mode grant leak");
        assert_eq!(r.pinned_at_exit, 0, "declared-mode pin leak");
        declared_reps.push(r);
    }
    let predictor = Arc::new(Predictor::new(exec_predict::PAGE_BYTES));
    let mut predicted_reps = Vec::with_capacity(PRED_REPS);
    for _ in 0..PRED_REPS {
        let r = exec_predict::run(&pred_cat, &pred_runs, Some(&predictor));
        assert!(r.emitted > 0, "vacuous predictive-A/B join");
        assert_eq!(r.granted_pages, r.released_pages, "predicted-mode grant leak");
        assert_eq!(r.pinned_at_exit, 0, "predicted-mode pin leak");
        predicted_reps.push(r);
    }
    assert_eq!(
        declared_reps[0].emitted, predicted_reps[0].emitted,
        "prediction changed a join answer"
    );
    let mut declared_walls: Vec<f64> = declared_reps.iter().map(|r| r.wall).collect();
    let mut warm_walls: Vec<f64> =
        predicted_reps[PRED_WARMUP..].iter().map(|r| r.wall).collect();
    let declared_wall = median(&mut declared_walls);
    let predicted_wall = median(&mut warm_walls);
    let pred_speedup = declared_wall / predicted_wall;
    let predicted_beats_declared = predicted_wall < declared_wall;
    let overruns_first = predicted_reps[0].footprint_overruns;
    let overruns_last = predicted_reps[PRED_REPS - 1].footprint_overruns;
    let decisions_differ = declared_reps[PRED_REPS - 1].signature
        != predicted_reps[PRED_REPS - 1].signature;
    for (mode, reps) in [("declared", &declared_reps), ("predicted", &predicted_reps)] {
        for (i, r) in reps.iter().enumerate() {
            eprintln!(
                "predictive {mode:<9} rep={i} wall={:.4}s overruns={} waits={} \
                 predictions={}",
                r.wall, r.footprint_overruns, r.grant_waits, r.predictions
            );
        }
    }
    eprintln!(
        "predictive A/B: declared={declared_wall:.4}s predicted={predicted_wall:.4}s \
         speedup={pred_speedup:.2}x decisions_differ={decisions_differ} \
         overruns {overruns_first}->{overruns_last}"
    );

    // Hand-rolled JSON: the workspace builds offline with no serde.
    let dr_json = {
        let mut j = String::new();
        j.push_str("  \"disk_resident\": {\n");
        j.push_str(&format!("    \"bufpool_pages\": {},\n", exec_disk::BUFPOOL_PAGES));
        j.push_str(&format!("    \"spill_factor\": {},\n", exec_disk::SPILL_FACTOR));
        j.push_str(&format!(
            "    \"pages_per_relation\": {},\n",
            dr_wl.relations[0].n_pages()
        ));
        j.push_str(&format!("    \"time_speedup\": {},\n", exec_disk::TIME_SPEEDUP));
        j.push_str(&format!("    \"trials_per_config\": {DR_TRIALS},\n"));
        j.push_str("    \"configs\": [\n");
        for (i, (mode, w, scan_wall, pages_per_sec, r)) in dr_rows.iter().enumerate() {
            j.push_str(&format!(
                "      {{\"mode\": \"{}\", \"workers\": {}, \"scan_wall_seconds\": {:.6}, \
                 \"pages_per_sec\": {:.2}, \"tuples_per_sec\": {:.1}, \
                 \"bufpool_hit_rate\": {:.4}, \"steals\": {}, \"steal_fails\": {}, \
                 \"pool_threads\": {}, \"paired_bw\": {:.2}, \"band_lo\": {:.2}, \
                 \"band_hi\": {:.2}, \"paired_in_band\": {}, \"paired_disk_util\": {:.4}}}{}\n",
                exec_disk::mode_name(*mode),
                w,
                scan_wall,
                pages_per_sec,
                r.tuples as f64 / scan_wall,
                r.hit_rate,
                r.steals,
                r.steal_fails,
                r.pool_threads,
                r.audit.paired_bw,
                r.audit.band_lo,
                r.audit.band_hi,
                r.audit.paired_in_band,
                r.audit.paired_disk_util,
                if i + 1 == dr_rows.len() { "" } else { "," }
            ));
        }
        j.push_str("    ],\n");
        j.push_str(&format!("    \"speedup_8w_over_1w\": {dr_speedup:.3},\n"));
        j.push_str(&format!("    \"saturated_at_8_workers\": {saturated}\n"));
        j.push_str("  },\n");
        j
    };

    let mem_json = {
        let mut j = String::new();
        j.push_str("  \"memory_admission\": {\n");
        j.push_str(&format!("    \"bufpool_pages\": {},\n", exec_memory::BUFPOOL_PAGES));
        j.push_str(&format!(
            "    \"reference_pool_pages\": {},\n",
            exec_memory::REFERENCE_POOL_PAGES
        ));
        j.push_str(&format!("    \"demand_factor\": {},\n", exec_memory::DEMAND_FACTOR));
        j.push_str(&format!("    \"n_queries\": {},\n", exec_memory::N_QUERIES));
        j.push_str(&format!("    \"total_build_pages\": {},\n", mem_wl.total_build_pages()));
        j.push_str(&format!("    \"workers\": {MEM_WORKERS},\n"));
        j.push_str(&format!("    \"trials_per_config\": {MEM_TRIALS},\n"));
        j.push_str("    \"configs\": [\n");
        for (i, (grants, wall, r)) in mem_rows.iter().enumerate() {
            j.push_str(&format!(
                "      {{\"mode\": \"{}\", \"wall_seconds\": {:.6}, \"emitted\": {}, \
                 \"granted_pages\": {}, \"released_pages\": {}, \"grant_waits\": {}, \
                 \"spill_chunks\": {}, \"spill_rows\": {}, \"pinned_at_exit\": {}, \
                 \"rows_digest\": {}}}{}\n",
                if *grants { "grants" } else { "reference" },
                wall,
                r.emitted,
                r.granted_pages,
                r.released_pages,
                r.grant_waits,
                r.spill_chunks,
                r.spill_rows,
                r.pinned_at_exit,
                r.rows_digest,
                if i + 1 == mem_rows.len() { "" } else { "," }
            ));
        }
        j.push_str("    ],\n");
        j.push_str(&format!("    \"parity\": {mem_parity},\n"));
        j.push_str(&format!("    \"ledger_balanced\": {},\n", {
            mem_grant.2.granted_pages == mem_grant.2.released_pages
        }));
        j.push_str(&format!("    \"overhead_vs_reference\": {mem_overhead:.3}\n"));
        j.push_str("  },\n");
        j
    };

    let pred_json = {
        let mut j = String::new();
        j.push_str("  \"predictive\": {\n");
        j.push_str(&format!("    \"bufpool_pages\": {},\n", exec_predict::BUFPOOL_PAGES));
        j.push_str(&format!("    \"n_queries\": {},\n", exec_predict::N_QUERIES));
        j.push_str(&format!("    \"time_speedup\": {},\n", exec_predict::TIME_SPEEDUP));
        j.push_str(&format!("    \"reps_per_mode\": {PRED_REPS},\n"));
        j.push_str(&format!("    \"warmup_reps\": {PRED_WARMUP},\n"));
        j.push_str("    \"reps\": [\n");
        let all: Vec<(&str, &exec_predict::PredictRun)> = declared_reps
            .iter()
            .map(|r| ("declared", r))
            .chain(predicted_reps.iter().map(|r| ("predicted", r)))
            .collect();
        for (i, (mode, r)) in all.iter().enumerate() {
            j.push_str(&format!(
                "      {{\"mode\": \"{}\", \"wall_seconds\": {:.6}, \"emitted\": {}, \
                 \"footprint_overruns\": {}, \"granted_pages\": {}, \
                 \"released_pages\": {}, \"grant_waits\": {}, \"pinned_at_exit\": {}, \
                 \"predictions\": {}}}{}\n",
                mode,
                r.wall,
                r.emitted,
                r.footprint_overruns,
                r.granted_pages,
                r.released_pages,
                r.grant_waits,
                r.pinned_at_exit,
                r.predictions,
                if i + 1 == all.len() { "" } else { "," }
            ));
        }
        j.push_str("    ],\n");
        j.push_str(&format!("    \"declared_wall_seconds\": {declared_wall:.6},\n"));
        j.push_str(&format!("    \"predicted_wall_seconds\": {predicted_wall:.6},\n"));
        j.push_str(&format!("    \"speedup_predicted_over_declared\": {pred_speedup:.3},\n"));
        j.push_str(&format!("    \"predicted_beats_declared\": {predicted_beats_declared},\n"));
        j.push_str(&format!("    \"overruns_first_rep\": {overruns_first},\n"));
        j.push_str(&format!("    \"overruns_last_rep\": {overruns_last},\n"));
        j.push_str(&format!("    \"decisions_differ\": {decisions_differ}\n"));
        j.push_str("  },\n");
        j
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"executor_scan\",\n");
    json.push_str(&host_header_json(
        ExecConfig::unthrottled().machine.n_procs,
        ExecConfig::unthrottled().bufpool_pages,
    ));
    json.push_str(&format!("  \"relation_tuples\": {RELATION_TUPLES},\n"));
    json.push_str(&format!("  \"queries_per_run\": {QUERIES},\n"));
    json.push_str(&format!("  \"tuples_examined_per_run\": {examined},\n"));
    json.push_str(&format!("  \"trials_per_config\": {TRIALS},\n"));
    json.push_str("  \"wall_stat\": \"median\",\n");
    json.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"data_path\": \"{}\", \"workers\": {}, \"scan_wall_seconds\": {:.6}, \
             \"total_wall_seconds\": {:.6}, \
             \"tuples_per_sec\": {:.1}, \"bufpool_hit_rate\": {:.4}, \
             \"pool_threads\": {}, \"pool_jobs\": {}}}{}\n",
            path_name(r.path),
            r.workers,
            r.scan_wall,
            r.wall,
            r.tuples_per_sec,
            r.hit_rate,
            r.pool_threads,
            r.pool_jobs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&dr_json);
    json.push_str(&mem_json);
    json.push_str(&pred_json);
    json.push_str(&format!(
        "  \"speedup_decontended_vs_global_lock_at_8_workers\": {speedup_at_8:.3}\n"
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
