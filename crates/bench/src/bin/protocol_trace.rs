//! Figures 5 and 6: traces of the dynamic parallelism-adjustment protocols.
//!
//! Replays a page-partitioned scan and a range-partitioned scan through
//! grow and shrink adjustments, printing the master/slave exchanges the
//! figures diagram (`curpage_i` collection, `maxpage` broadcast, interval
//! collection and re-partitioning), and verifies coverage at the end.

use std::collections::HashSet;

use xprs_storage::partition::{KeyRange, PagePartition, RangePartition};

fn main() {
    page_protocol();
    range_protocol();
}

/// Figure 5: the max-page protocol.
fn page_protocol() {
    println!("# Figure 5 — page-partitioning adjustment (max-page protocol)");
    println!();
    let n_pages = 64;
    let mut p = PagePartition::new(n_pages, 2);
    let mut scanned: Vec<(usize, u64)> = Vec::new();

    // Let the two workers make uneven progress.
    for _ in 0..5 {
        if let Some(page) = p.next_page(0) {
            scanned.push((0, page));
        }
    }
    for _ in 0..3 {
        if let Some(page) = p.next_page(1) {
            scanned.push((1, page));
        }
    }
    println!("initial assignment: 2 workers, worker i scans pages ≡ i (mod 2)");
    for (w, pg) in &scanned {
        println!("  worker {w} scanned page {pg}");
    }
    println!();
    println!("master: signal all slaves — adjust parallelism 2 → 4");
    println!("  slave 0 reports curpage = 8, slave 1 reports curpage = 5");
    println!("  master computes maxpage = max(curpage_i) = 8, broadcasts (maxpage=8, n'=4)");
    let info = p.adjust(4);
    println!(
        "  new slaves staffed for slots {:?}; retiring slots {:?}",
        info.new_slots, info.retiring_slots
    );
    println!("  pages ≤ maxpage stay with the old assignment; pages > maxpage follow p ≡ i (mod 4)");
    println!();

    // Drain and verify exactly-once coverage.
    let mut progressed = true;
    while progressed {
        progressed = false;
        for slot in 0..p.n_slots() {
            if let Some(page) = p.next_page(slot) {
                scanned.push((slot, page));
                progressed = true;
            }
        }
    }
    let pages: HashSet<u64> = scanned.iter().map(|(_, p)| *p).collect();
    assert_eq!(pages.len(), scanned.len(), "a page was scanned twice");
    assert_eq!(pages.len() as u64, n_pages, "a page was skipped");
    println!(
        "drained: {} pages scanned exactly once by {} worker slots ✓",
        n_pages,
        p.n_slots()
    );
    println!();
}

/// Figure 6: the interval re-partitioning protocol.
fn range_protocol() {
    println!("# Figure 6 — range-partitioning adjustment (interval re-partitioning)");
    println!();
    let mut p = RangePartition::new(0, 99, 2);
    println!("initial assignment: worker 0 ← [0,49], worker 1 ← [50,99]");
    let mut seen = HashSet::new();
    for _ in 0..30 {
        seen.insert(p.next_key(0).unwrap());
    }
    for _ in 0..10 {
        seen.insert(p.next_key(1).unwrap());
    }
    println!("progress: worker 0 at key 30 (remaining [30,49]), worker 1 at 60 (remaining [60,99])");
    println!();
    println!("master: signal all slaves — adjust parallelism 2 → 3");
    println!("  slaves report remaining intervals: [30,49], [60,99]");
    let info = p.adjust(3);
    println!("  master re-partitions 60 remaining keys into 3 balanced chunks:");
    for slot in p.active_slots() {
        let ivs: Vec<String> = p
            .remaining(slot)
            .iter()
            .map(|KeyRange { lo, hi }| format!("[{lo},{hi}]"))
            .collect();
        println!("    worker {slot} ← {}", ivs.join(" ∪ "));
    }
    println!("  new slaves staffed for slots {:?}", info.new_slots);
    println!();

    for slot in 0..p.n_slots() {
        while let Some(k) = p.next_key(slot) {
            assert!(seen.insert(k), "key {k} scanned twice");
        }
    }
    assert_eq!(seen.len(), 100, "keys lost in re-partitioning");
    println!("drained: 100 keys scanned exactly once across the adjustment ✓");
}
