//! # xprs-bench
//!
//! Harness utilities shared by the experiment binaries that regenerate the
//! paper's tables and figures (see `src/bin/`), plus Criterion microbenches
//! under `benches/`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3_classification` | Figure 3 — IO-bound vs CPU-bound task lines |
//! | `fig4_balance_point` | Figure 4 — the IO-CPU balance point |
//! | `protocol_trace` | Figures 5/6 — the dynamic adjustment protocols |
//! | `table_io_rates` | Section 3's task-rate table and disk-bandwidth measurements |
//! | `fig7_schedulers` | Figure 7 — the three algorithms × four workloads |
//! | `sec4_optimizer` | Section 4 — seqcost vs parcost plan choice |
//! | `ablation_pairing` | pairing heuristic ablation (most-extreme / FIFO / SJF) |
//! | `ablation_seek_model` | planning with vs without the seek-interference correction |
//! | `ablation_adjust_latency` | sensitivity to the adjustment-protocol latency |
//! | `ablation_two_tasks` | the "two tasks suffice" claim vs k-way co-scheduling |

use xprs::{PolicyKind, XprsSystem};
use xprs_scheduler::policy::{Action, RunningTask, SchedulePolicy};
use xprs_scheduler::{MachineConfig, TaskProfile};
use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

/// A policy that runs fragments **one at a time**, each with a fixed worker
/// count, and never adjusts.
///
/// The executor benches need the worker count to be the *independent
/// variable*; the paper's policies compute their own allocations (and
/// `IntraOnly` always uses the whole machine), so none of them can hold
/// parallelism at 1, 2, 4, 8 for a throughput curve. Fragments run
/// serially so a multi-query bench exercises fragment turnaround — the
/// regime where per-slot thread staffing cost shows.
pub struct FixedParallelism {
    machine: MachineConfig,
    workers: u32,
    pending: Vec<TaskProfile>,
}

impl FixedParallelism {
    /// A policy for `machine` starting every fragment with `workers` workers.
    pub fn new(machine: MachineConfig, workers: u32) -> Self {
        assert!(workers >= 1);
        FixedParallelism { machine, workers, pending: Vec::new() }
    }
}

impl SchedulePolicy for FixedParallelism {
    fn name(&self) -> &'static str {
        "fixed-parallelism"
    }

    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn on_arrival(&mut self, _now: f64, task: TaskProfile) {
        self.pending.push(task);
    }

    fn on_finish(&mut self, _now: f64, _id: xprs_scheduler::TaskId) {}

    fn decide(&mut self, _now: f64, running: &[RunningTask]) -> Vec<Action> {
        if !running.is_empty() || self.pending.is_empty() {
            return Vec::new();
        }
        let t = self.pending.remove(0);
        vec![Action::Start { id: t.id, parallelism: self.workers as f64 }]
    }
}

/// Shared scenario for the executor data-path benches: a parallel full scan
/// of one relation, with the worker count and the [`xprs_executor::DataPath`]
/// as the independent variables.
pub mod exec_scan {
    use std::sync::Arc;
    use std::time::Instant;

    use xprs_disk::StripedLayout;
    use xprs_executor::{DataPath, ExecConfig, Executor, QueryRun, RelBinding};
    use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
    use xprs_scheduler::MachineConfig;
    use xprs_storage::{Catalog, Datum, Schema, Tuple};

    use super::FixedParallelism;

    /// One timed scan workload: wall times plus the counters the bench
    /// reports.
    #[derive(Debug, Clone, Copy)]
    pub struct ScanRun {
        /// Tuples the workload examined (relation cardinality × queries).
        pub tuples: u64,
        /// Tuples the selections emitted (sanity check, > 0).
        pub emitted: u64,
        /// Wall-clock seconds for the whole run.
        pub wall: f64,
        /// Wall-clock seconds of the scan phase — first fragment start to
        /// last fragment finish, the span the data path determines.
        pub scan_wall: f64,
        /// Buffer-pool hit fraction over the run.
        pub hit_rate: f64,
        /// OS threads the run created (pool growth, or one per slot on the
        /// seed path).
        pub pool_threads: u64,
        /// Worker-slot staffing jobs submitted.
        pub pool_jobs: u64,
    }

    /// A catalog holding one `scan_src(a, b)` relation of `n_tuples`
    /// minimum-size tuples (the paper's `r_min` shape: hundreds of tuples
    /// per page, so the scan is emit-rate-bound — the regime where data-path
    /// contention shows, per §2.3's CPU-bound end of the balance spectrum).
    pub fn catalog(n_tuples: u64) -> Arc<Catalog> {
        let mut cat = Catalog::new(StripedLayout::new(4));
        cat.create("scan_src", Schema::paper_rel());
        let mut seed = 0xBEEF_u64;
        let rows: Vec<Tuple> = (0..n_tuples)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((seed >> 33) % 1000) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text(String::new())])
            })
            .collect();
        cat.load("scan_src", rows);
        cat.build_index("scan_src", false);
        Arc::new(cat)
    }

    /// Executor configuration for the scan benches: full speed (no
    /// throttling sleeps), `path` selecting the hot-path implementation.
    pub fn config(path: DataPath) -> ExecConfig {
        ExecConfig::unthrottled().with_data_path(path)
    }

    /// Run `n_queries` back-to-back parallel selections over `scan_src`
    /// with `workers` workers each, on data path `path`.
    ///
    /// Every query page-scans the whole relation; the selection predicate
    /// keeps ~5% of the tuples so the (single-threaded, path-independent)
    /// result harvest stays negligible next to the scan itself. Sequential
    /// queries make fragment turnaround part of the measurement — exactly
    /// where the seed's per-slot thread staffing pays and the persistent
    /// pool does not.
    pub fn run(cat: &Arc<Catalog>, workers: u32, path: DataPath, n_queries: usize) -> ScanRun {
        run_with_obs(cat, workers, path, n_queries, false)
    }

    /// [`run`], with hot-path metrics collection on or off — the A/B the
    /// observability overhead gate (`bench_obs`, CI `obs` leg) measures.
    pub fn run_with_obs(
        cat: &Arc<Catalog>,
        workers: u32,
        path: DataPath,
        n_queries: usize,
        obs: bool,
    ) -> ScanRun {
        let relation_tuples = cat.get("scan_src").expect("bench relation").stats().n_tuples;
        let q = Query::selection("scan_src", 1.0);
        let optimized = TwoPhaseOptimizer::paper_default()
            .optimize_catalog(cat, &q, Costing::SeqCost)
            .expect("plan");
        let bindings = vec![RelBinding { name: "scan_src".into(), pred: (0, 49) }];
        let runs: Vec<QueryRun> = (0..n_queries)
            .map(|_| QueryRun { optimized: optimized.clone(), bindings: bindings.clone() })
            .collect();
        let mut cfg = config(path);
        if obs {
            cfg = cfg.with_obs();
        }
        let exec = Executor::new(cfg, cat.clone());
        let mut policy = FixedParallelism::new(MachineConfig::paper_default(), workers);
        let t0 = Instant::now();
        let report = exec.run(&runs, &mut policy).expect("bench scan failed");
        let wall = t0.elapsed().as_secs_f64();
        let first_start =
            report.fragment_times.iter().map(|&(_, s, _)| s).fold(f64::INFINITY, f64::min);
        let last_finish =
            report.fragment_times.iter().map(|&(_, _, f)| f).fold(0.0f64, f64::max);
        ScanRun {
            tuples: relation_tuples * n_queries as u64,
            emitted: report.results.iter().map(|r| r.rows.rows.len() as u64).sum(),
            wall,
            scan_wall: last_finish - first_start,
            // Bypass-aware: a fetch refused under pin pressure is a real
            // page read the pool failed to serve, not a non-event.
            hit_rate: report.stats.pool.hit_rate(),
            pool_threads: report.pool_threads,
            pool_jobs: report.pool_jobs,
        }
    }
}

/// Shared scenario for the utilization audit: two IO-heavy scans co-run
/// under a throttled (scaled-time) machine, so the §2.2–2.3 predictions
/// about paired disk bandwidth are *measurable* — the audit compares the
/// request rate the disks actually served inside the pairing window
/// against the `[Br, Bs]` band and the seek-corrected
/// `B = Br + (1 − ratio)(Bs − Br)`.
pub mod exec_obs {
    use std::path::Path;
    use std::sync::Arc;

    use xprs_disk::StripedLayout;
    use xprs_executor::{ExecConfig, ExecReport, Executor, QueryRun, RelBinding, UtilizationAudit};
    use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
    use xprs_scheduler::policy::{Action, RunningTask, SchedulePolicy};
    use xprs_scheduler::{MachineConfig, TaskProfile};
    use xprs_storage::{Catalog, Datum, Schema, Tuple};

    /// A policy that starts **every** arrived task immediately with a fixed
    /// worker count and never adjusts: with two single-fragment queries it
    /// manufactures exactly one long §2.2 pairing window, which is what the
    /// audit needs. ([`super::FixedParallelism`] runs fragments one at a
    /// time and can never produce a paired window.)
    pub struct CoRun {
        machine: MachineConfig,
        workers: u32,
        pending: Vec<TaskProfile>,
    }

    impl CoRun {
        /// A policy for `machine` starting every fragment with `workers`
        /// workers the moment it becomes runnable.
        pub fn new(machine: MachineConfig, workers: u32) -> Self {
            assert!(workers >= 1);
            CoRun { machine, workers, pending: Vec::new() }
        }
    }

    impl SchedulePolicy for CoRun {
        fn name(&self) -> &'static str {
            "co-run"
        }

        fn machine(&self) -> &MachineConfig {
            &self.machine
        }

        fn on_arrival(&mut self, _now: f64, task: TaskProfile) {
            self.pending.push(task);
        }

        fn on_finish(&mut self, _now: f64, _id: xprs_scheduler::TaskId) {}

        fn decide(&mut self, _now: f64, _running: &[RunningTask]) -> Vec<Action> {
            self.pending
                .drain(..)
                .map(|t| Action::Start { id: t.id, parallelism: self.workers as f64 })
                .collect()
        }
    }

    /// Two relations of `tuples_each` fat (800-byte) rows — ~10 tuples per
    /// page, both striped over all four disks, so two concurrent scans
    /// interleave on every spindle and the §2.3 seek interference is real.
    pub fn catalog(tuples_each: u64) -> Arc<Catalog> {
        let mut cat = Catalog::new(StripedLayout::new(4));
        let mut seed = 0x0BDA_u64;
        for name in ["pair_a", "pair_b"] {
            cat.create(name, Schema::paper_rel());
            let rows: Vec<Tuple> = (0..tuples_each)
                .map(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let a = ((seed >> 33) % 1000) as i32;
                    Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(800))])
                })
                .collect();
            cat.load(name, rows);
        }
        Arc::new(cat)
    }

    /// Co-run one full scan of each relation with `workers` workers per
    /// scan at time scale `scale`, metrics enabled; optionally dump
    /// `metrics.json`. Returns the report and its utilization audit.
    pub fn run(
        cat: &Arc<Catalog>,
        workers: u32,
        scale: f64,
        metrics_out: Option<&Path>,
    ) -> (ExecReport, UtilizationAudit) {
        let optimizer = TwoPhaseOptimizer::paper_default();
        let runs: Vec<QueryRun> = ["pair_a", "pair_b"]
            .iter()
            .map(|name| {
                let q = Query::selection(name, 1.0);
                QueryRun {
                    optimized: optimizer.optimize_catalog(cat, &q, Costing::SeqCost).expect("plan"),
                    bindings: vec![RelBinding {
                        name: (*name).into(),
                        pred: (i32::MIN, i32::MAX),
                    }],
                }
            })
            .collect();
        let mut cfg = ExecConfig::scaled(1.0 / scale).with_obs();
        // A pool that cannot cache either scan: every page read is a disk
        // request, as in the paper's larger-than-memory workloads.
        cfg.bufpool_pages = 64;
        if let Some(path) = metrics_out {
            cfg = cfg.with_metrics_out(path);
        }
        let exec = Executor::new(cfg, cat.clone());
        let mut policy = CoRun::new(MachineConfig::paper_default(), workers);
        let report = exec.run(&runs, &mut policy).expect("audit run failed");
        let audit = report.utilization_audit();
        (report, audit)
    }
}

/// Shared scenario for the join-materialization benches: a hash join whose
/// build side is large, so fragment materialization (worker output → sort →
/// key index) dominates the run. The worker count and the
/// [`xprs_executor::DataPath`] are the independent variables: `GlobalLock`
/// is the legacy path (per-tuple lock, flat harvest, full serial re-sort,
/// `HashMap` index), `Decontended` the rebuilt one (batched sink with
/// worker-local sorted runs, pool-parallel k-way merge, CSR index).
pub mod exec_join {
    use std::sync::Arc;
    use std::time::Instant;

    use xprs_disk::StripedLayout;
    use xprs_executor::{DataPath, ExecConfig, Executor, QueryRun, RelBinding};
    use xprs_optimizer::cost::{CostModel, RelInfo};
    use xprs_optimizer::{decompose, OptimizedQuery, Plan};
    use xprs_scheduler::MachineConfig;
    use xprs_storage::{Catalog, Datum, Schema, Tuple};

    use super::FixedParallelism;

    /// One timed join workload.
    #[derive(Debug, Clone, Copy)]
    pub struct JoinRun {
        /// Tuples materialized per query (build side + joined output) ×
        /// queries — the work the data path is responsible for.
        pub materialized: u64,
        /// Joined tuples the run emitted (sanity check, > 0).
        pub emitted: u64,
        /// Wall-clock seconds for the whole run.
        pub wall: f64,
        /// Wall-clock seconds first fragment start → last fragment finish.
        pub join_wall: f64,
        /// OS threads the run created.
        pub pool_threads: u64,
        /// Worker-slot staffing and merge jobs submitted to the pool.
        pub pool_jobs: u64,
    }

    /// A catalog with a large `big(a, b)` build side and a small `small(a,
    /// b)` probe side, keys uniform in `0..key_mod`, minimum-size tuples so
    /// the run is materialization-bound rather than IO-bound.
    pub fn catalog(build_tuples: u64, probe_tuples: u64, key_mod: u64) -> Arc<Catalog> {
        let mut cat = Catalog::new(StripedLayout::new(4));
        let mut seed = 0x10_1A_u64;
        for (name, n) in [("big", build_tuples), ("small", probe_tuples)] {
            cat.create(name, Schema::paper_rel());
            let rows: Vec<Tuple> = (0..n)
                .map(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let a = ((seed >> 33) % key_mod) as i32;
                    Tuple::from_values(vec![Datum::Int(a), Datum::Text(String::new())])
                })
                .collect();
            cat.load(name, rows);
        }
        Arc::new(cat)
    }

    /// `big ⋈ small` with the big side as the hash-build input — pinned by
    /// hand so the optimizer cannot flip the sides and move the
    /// materialization load off the path under test.
    fn optimized(cat: &Catalog) -> OptimizedQuery {
        let plan = Plan::HashJoin {
            build: Box::new(Plan::SeqScan { rel: 0 }),
            probe: Box::new(Plan::SeqScan { rel: 1 }),
        };
        let rels: Vec<RelInfo> = ["big", "small"]
            .iter()
            .map(|n| {
                let s = cat.get(n).expect("bench relation").stats();
                RelInfo {
                    n_tuples: s.n_tuples as f64,
                    n_blocks: s.n_blocks as f64,
                    n_distinct: s.n_distinct_a as f64,
                    selectivity: 1.0,
                    has_index: false,
                    clustered: false,
                }
            })
            .collect();
        let costed = CostModel::paper_default().cost_plan(&plan, &rels);
        let fragments = decompose(&plan, &costed, 0);
        OptimizedQuery { seqcost: costed.cost.total_cost, parcost: 0.0, plan, fragments }
    }

    /// Run `n_queries` back-to-back `big ⋈ small` hash joins with `workers`
    /// workers each, on data path `path`.
    pub fn run(cat: &Arc<Catalog>, workers: u32, path: DataPath, n_queries: usize) -> JoinRun {
        let build_tuples = cat.get("big").expect("bench relation").stats().n_tuples;
        let optimized = optimized(cat);
        let bindings = vec![
            RelBinding { name: "big".into(), pred: (i32::MIN, i32::MAX) },
            RelBinding { name: "small".into(), pred: (i32::MIN, i32::MAX) },
        ];
        let runs: Vec<QueryRun> = (0..n_queries)
            .map(|_| QueryRun { optimized: optimized.clone(), bindings: bindings.clone() })
            .collect();
        let exec =
            Executor::new(ExecConfig::unthrottled().with_data_path(path), cat.clone());
        let mut policy = FixedParallelism::new(MachineConfig::paper_default(), workers);
        let t0 = Instant::now();
        let report = exec.run(&runs, &mut policy).expect("bench join failed");
        let wall = t0.elapsed().as_secs_f64();
        let first_start =
            report.fragment_times.iter().map(|&(_, s, _)| s).fold(f64::INFINITY, f64::min);
        let last_finish =
            report.fragment_times.iter().map(|&(_, _, f)| f).fold(0.0f64, f64::max);
        let emitted: u64 = report.results.iter().map(|r| r.rows.rows.len() as u64).sum();
        JoinRun {
            materialized: build_tuples * n_queries as u64 + emitted,
            emitted,
            wall,
            join_wall: last_finish - first_start,
            pool_threads: report.pool_threads,
            pool_jobs: report.pool_jobs,
        }
    }
}

/// Shared scenario for the **disk-resident** scaling benches: relations
/// several times the buffer pool (so every scan is real disk traffic with
/// eviction pressure) with skewed per-page costs, run under the scaled-time
/// machine so I/O waits are wall-clock real. This is the regime of the
/// paper's §3 evaluation — and the one where 8 workers must finally beat 1:
/// the in-memory benches measure coordination overhead, this one measures
/// whether stealing converts disk-wait idleness into overlap.
pub mod exec_disk {
    use std::sync::Arc;
    use std::time::Instant;

    use xprs_disk::StripedLayout;
    use xprs_executor::{
        ExecConfig, Executor, MorselMode, QueryRun, RelBinding, UtilizationAudit,
    };
    use xprs_optimizer::cost::{CostModel, RelInfo};
    use xprs_optimizer::{decompose, Costing, OptimizedQuery, Plan, Query, TwoPhaseOptimizer};
    use xprs_scheduler::MachineConfig;
    use xprs_storage::{Catalog, Datum, Schema, Tuple};
    use xprs_workload::{generate_disk_resident, DiskResidentSpec, DiskResidentWorkload};

    use super::exec_obs::CoRun;
    use super::FixedParallelism;

    /// Buffer-pool frames for the disk-resident runs (each relation is
    /// [`SPILL_FACTOR`]× this, so the pool cannot cache a scan).
    pub const BUFPOOL_PAGES: usize = 64;
    /// Relation pages as a multiple of the pool.
    pub const SPILL_FACTOR: u64 = 8;
    /// Scaled-time speedup: the machine runs 20× faster than the simulated
    /// clock, keeping the full worker sweep under a few wall seconds while
    /// disk service times stay real sleeps.
    pub const TIME_SPEEDUP: f64 = 20.0;
    /// Probe-side tuples for the disk-resident join.
    pub const PROBE_TUPLES: u64 = 1_000;

    /// One timed disk-resident scan run (two relations co-scanned).
    #[derive(Debug, Clone)]
    pub struct DiskScanRun {
        /// Heap pages the two scans read.
        pub pages: u64,
        /// Tuples examined.
        pub tuples: u64,
        /// Tuples emitted (sanity check, > 0).
        pub emitted: u64,
        /// Wall seconds for the whole run.
        pub wall: f64,
        /// First fragment start → last fragment finish.
        pub scan_wall: f64,
        /// Buffer-pool hit fraction (bypass-aware).
        pub hit_rate: f64,
        /// Morsels taken from another slot's deque.
        pub steals: u64,
        /// Idle probes that found no pending morsel anywhere.
        pub steal_fails: u64,
        /// OS threads created over the run.
        pub pool_threads: u64,
        /// The §2.2–2.3 pairing-window audit for the run.
        pub audit: UtilizationAudit,
    }

    /// One timed disk-resident join run.
    #[derive(Debug, Clone, Copy)]
    pub struct DiskJoinRun {
        /// Build-side tuples materialized plus joined output.
        pub materialized: u64,
        /// Joined tuples emitted (sanity check, > 0).
        pub emitted: u64,
        /// Wall seconds for the whole run.
        pub wall: f64,
        /// First fragment start → last fragment finish.
        pub join_wall: f64,
        /// Buffer-pool hit fraction.
        pub hit_rate: f64,
        /// Morsels taken from another slot's deque.
        pub steals: u64,
        /// OS threads created over the run.
        pub pool_threads: u64,
    }

    /// The benchmark catalog: two disk-resident relations (for the co-run
    /// scan and its pairing windows) plus a small cacheable probe side for
    /// the join, all striped over the four paper disks.
    pub fn catalog(seed: u64) -> (Arc<Catalog>, DiskResidentWorkload) {
        let spec = DiskResidentSpec::paper(BUFPOOL_PAGES as u64, SPILL_FACTOR, seed);
        let workload = generate_disk_resident(&spec);
        let mut cat = Catalog::new(StripedLayout::new(4));
        workload.load_into(&mut cat);
        cat.create("dr_probe", Schema::paper_rel());
        let mut s = seed ^ 0xBEEF;
        let rows: Vec<Tuple> = (0..PROBE_TUPLES)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((s >> 33) % spec.key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text(String::new())])
            })
            .collect();
        cat.load("dr_probe", rows);
        (Arc::new(cat), workload)
    }

    /// The scaled-time, spill-sized configuration every disk-resident run
    /// uses; only the morsel mode varies.
    fn config(mode: MorselMode) -> ExecConfig {
        let mut cfg = ExecConfig::scaled(TIME_SPEEDUP).with_morsel_mode(mode).with_obs();
        cfg.bufpool_pages = BUFPOOL_PAGES;
        cfg
    }

    /// Co-run one full scan of each disk-resident relation with `workers`
    /// workers per scan under `mode`. Two concurrent IO-heavy scans give
    /// the audit its paired windows, so the run reports whether the disk
    /// band was actually saturated.
    pub fn scan_run(
        cat: &Arc<Catalog>,
        workload: &DiskResidentWorkload,
        workers: u32,
        mode: MorselMode,
    ) -> DiskScanRun {
        let optimizer = TwoPhaseOptimizer::paper_default();
        let runs: Vec<QueryRun> = workload
            .relations
            .iter()
            .map(|rel| {
                let q = Query::selection(&rel.name, 1.0);
                QueryRun {
                    optimized: optimizer.optimize_catalog(cat, &q, Costing::SeqCost).expect("plan"),
                    bindings: vec![RelBinding {
                        name: rel.name.clone(),
                        pred: (i32::MIN, i32::MAX),
                    }],
                }
            })
            .collect();
        let exec = Executor::new(config(mode), cat.clone());
        let mut policy = CoRun::new(MachineConfig::paper_default(), workers);
        let t0 = Instant::now();
        let report = exec.run(&runs, &mut policy).expect("disk-resident scan failed");
        let wall = t0.elapsed().as_secs_f64();
        let first_start =
            report.fragment_times.iter().map(|&(_, s, _)| s).fold(f64::INFINITY, f64::min);
        let last_finish =
            report.fragment_times.iter().map(|&(_, _, f)| f).fold(0.0f64, f64::max);
        let audit = report.utilization_audit();
        let (steals, steal_fails) = report
            .metrics
            .as_ref()
            .map_or((0, 0), |m| (m.steals.get(), m.steal_fails.get()));
        DiskScanRun {
            pages: workload.relations.iter().map(|r| r.n_pages()).sum(),
            tuples: workload.relations.iter().map(|r| r.n_tuples).sum(),
            emitted: report.results.iter().map(|r| r.rows.rows.len() as u64).sum(),
            wall,
            scan_wall: last_finish - first_start,
            hit_rate: report.stats.pool.hit_rate(),
            steals,
            steal_fails,
            pool_threads: report.pool_threads,
            audit,
        }
    }

    /// `dr_0 ⋈ dr_probe` with the disk-resident relation pinned as the
    /// hash-build side, so the materialization scan is the spilling one.
    fn optimized_join(cat: &Catalog, build: &str) -> OptimizedQuery {
        let plan = Plan::HashJoin {
            build: Box::new(Plan::SeqScan { rel: 0 }),
            probe: Box::new(Plan::SeqScan { rel: 1 }),
        };
        let rels: Vec<RelInfo> = [build, "dr_probe"]
            .iter()
            .map(|n| {
                let s = cat.get(n).expect("bench relation").stats();
                RelInfo {
                    n_tuples: s.n_tuples as f64,
                    n_blocks: s.n_blocks as f64,
                    n_distinct: s.n_distinct_a as f64,
                    selectivity: 1.0,
                    has_index: false,
                    clustered: false,
                }
            })
            .collect();
        let costed = CostModel::paper_default().cost_plan(&plan, &rels);
        let fragments = decompose(&plan, &costed, 0);
        OptimizedQuery { seqcost: costed.cost.total_cost, parcost: 0.0, plan, fragments }
    }

    /// Run the disk-resident hash join with `workers` workers under `mode`.
    pub fn join_run(
        cat: &Arc<Catalog>,
        workload: &DiskResidentWorkload,
        workers: u32,
        mode: MorselMode,
    ) -> DiskJoinRun {
        let build = &workload.relations[0];
        let optimized = optimized_join(cat, &build.name);
        let bindings = vec![
            RelBinding { name: build.name.clone(), pred: (i32::MIN, i32::MAX) },
            RelBinding { name: "dr_probe".into(), pred: (i32::MIN, i32::MAX) },
        ];
        let runs = vec![QueryRun { optimized, bindings }];
        let exec = Executor::new(config(mode), cat.clone());
        let mut policy = FixedParallelism::new(MachineConfig::paper_default(), workers);
        let t0 = Instant::now();
        let report = exec.run(&runs, &mut policy).expect("disk-resident join failed");
        let wall = t0.elapsed().as_secs_f64();
        let first_start =
            report.fragment_times.iter().map(|&(_, s, _)| s).fold(f64::INFINITY, f64::min);
        let last_finish =
            report.fragment_times.iter().map(|&(_, _, f)| f).fold(0.0f64, f64::max);
        let emitted: u64 = report.results.iter().map(|r| r.rows.rows.len() as u64).sum();
        DiskJoinRun {
            materialized: build.n_tuples + emitted,
            emitted,
            wall,
            join_wall: last_finish - first_start,
            hit_rate: report.stats.pool.hit_rate(),
            steals: report.metrics.as_ref().map_or(0, |m| m.steals.get()),
            pool_threads: report.pool_threads,
        }
    }

    /// JSON name of a morsel mode.
    pub fn mode_name(mode: MorselMode) -> &'static str {
        match mode {
            MorselMode::StaticShares => "static_shares",
            MorselMode::Stealing { .. } => "stealing",
        }
    }
}

/// Memory-grant admission scenario: concurrent hash joins whose aggregate
/// build demand is [`exec_memory::DEMAND_FACTOR`]× the buffer pool, every
/// query arriving at once ([`exec_obs::CoRun`]) so the builds race for
/// admission. The A/B is grants-on (tiny pool, queue + spill) against the
/// uncontended reference (grants off, pool big enough to hold any build);
/// the parity digest must match between the two — admission may reorder and
/// spill, never change an answer.
pub mod exec_memory {
    use std::hash::{Hash, Hasher};
    use std::sync::Arc;
    use std::time::Instant;

    use xprs_disk::StripedLayout;
    use xprs_executor::{ExecConfig, ExecReport, Executor, QueryRun, RelBinding};
    use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
    use xprs_scheduler::MachineConfig;
    use xprs_storage::{Catalog, Datum};
    use xprs_workload::{generate_oversized_build, OversizedBuildSpec, OversizedBuildWorkload};

    use super::exec_obs::CoRun;

    /// Pool frames the grants-on side runs with.
    pub const BUFPOOL_PAGES: u64 = 64;
    /// Aggregate build demand as a multiple of the pool (the acceptance
    /// regime is ≥ 4×).
    pub const DEMAND_FACTOR: u64 = 4;
    /// Concurrent join queries.
    pub const N_QUERIES: usize = 4;
    /// Pool frames for the uncontended reference run: comfortably above the
    /// whole aggregate demand, so no admission pressure exists.
    pub const REFERENCE_POOL_PAGES: u64 = BUFPOOL_PAGES * (DEMAND_FACTOR + 1);

    /// One timed memory-admission run.
    #[derive(Debug, Clone, Copy)]
    pub struct MemoryRun {
        /// Wall seconds for the whole run.
        pub wall: f64,
        /// Join tuples emitted across all queries.
        pub emitted: u64,
        /// Pages granted / released by the admission ledger (must balance).
        pub granted_pages: u64,
        /// Pages released back (see `granted_pages`).
        pub released_pages: u64,
        /// Fragments that waited in the admission FIFO.
        pub grant_waits: u64,
        /// Spill runs cut past grants.
        pub spill_chunks: u64,
        /// Rows that travelled through spill files.
        pub spill_rows: u64,
        /// Pages still pinned when the run exited (must be 0).
        pub pinned_at_exit: u64,
        /// Order-sensitive FNV digest over every result row, for the
        /// byte-parity check between the grants-on and reference runs.
        pub rows_digest: u64,
    }

    /// The oversized-build catalog plus its workload description.
    pub fn catalog(seed: u64) -> (Arc<Catalog>, OversizedBuildWorkload) {
        let mut spec = OversizedBuildSpec::paper(BUFPOOL_PAGES, DEMAND_FACTOR, N_QUERIES, seed);
        // Fatter rows keep the join outputs (quadratic in tuples-per-page)
        // bench-sized while the page demand stays ≥ DEMAND_FACTOR× the pool.
        spec.blen = 200;
        let workload = generate_oversized_build(&spec);
        let mut cat = Catalog::new(StripedLayout::new(4));
        workload.load_into(&mut cat);
        (Arc::new(cat), workload)
    }

    fn digest(report: &ExecReport) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for res in &report.results {
            res.rows.rows.len().hash(&mut h);
            for (key, tuple) in &res.rows.rows {
                key.hash(&mut h);
                for d in tuple.values() {
                    match d {
                        Datum::Int(v) => v.hash(&mut h),
                        Datum::Text(s) => s.hash(&mut h),
                        Datum::Null => 0xFFu8.hash(&mut h),
                    }
                }
            }
        }
        h.finish()
    }

    /// Run every generated join at once with `workers` workers per
    /// fragment; `grants` picks the side of the A/B (tiny pool + admission
    /// vs big uncontended pool).
    pub fn run(
        cat: &Arc<Catalog>,
        workload: &OversizedBuildWorkload,
        workers: u32,
        grants: bool,
    ) -> MemoryRun {
        let optimizer = TwoPhaseOptimizer::paper_default();
        let runs: Vec<QueryRun> = workload
            .pairs
            .iter()
            .map(|pair| {
                let q =
                    Query::join().rel(&pair.build, 1.0).rel(&pair.probe, 1.0).on(0, 1).build();
                QueryRun {
                    optimized: optimizer.optimize_catalog(cat, &q, Costing::SeqCost).expect("plan"),
                    bindings: vec![
                        RelBinding { name: pair.build.clone(), pred: (i32::MIN, i32::MAX) },
                        RelBinding { name: pair.probe.clone(), pred: (i32::MIN, i32::MAX) },
                    ],
                }
            })
            .collect();
        let mut cfg = ExecConfig::unthrottled();
        cfg.bufpool_pages = if grants { BUFPOOL_PAGES } else { REFERENCE_POOL_PAGES } as usize;
        if grants {
            cfg = cfg.with_memory_grants();
        }
        let exec = Executor::new(cfg, cat.clone());
        let mut policy = CoRun::new(MachineConfig::paper_default(), workers);
        let t0 = Instant::now();
        let report = exec.run(&runs, &mut policy).expect("memory-admission run failed");
        let wall = t0.elapsed().as_secs_f64();
        MemoryRun {
            wall,
            emitted: report.results.iter().map(|r| r.rows.rows.len() as u64).sum(),
            granted_pages: report.mem_granted_pages,
            released_pages: report.mem_released_pages,
            grant_waits: report.mem_grant_waits,
            spill_chunks: report.spill_chunks,
            spill_rows: report.spill_rows,
            pinned_at_exit: report.pool_pinned_at_exit,
            rows_digest: digest(&report),
        }
    }
}

/// Skewed-join scenario: a Zipf(θ) key-domain merge join on the
/// disk-resident 8-worker configuration, θ the independent variable. At
/// θ = 0 the keys are uniform and the pool-parallel merge splits the
/// output evenly; at θ = 1 one key owns ~10% of each side (so ~x% · y% of
/// the *output*) and only the heavy-hitter machinery — detection in the
/// master, replicated-build fan-out over `scatter_gather`, hot-key carving
/// in `split_runs_stats` — keeps the merge from serializing behind it.
/// The bench reports throughput plus the skew counters (hot keys, per-way
/// row balance) so CI can prove the fan-out engaged rather than pass
/// vacuously.
pub mod exec_skew {
    use std::sync::Arc;
    use std::time::Instant;

    use xprs_disk::StripedLayout;
    use xprs_executor::{ExecConfig, Executor, QueryRun, RelBinding};
    use xprs_optimizer::cost::{CostModel, RelInfo};
    use xprs_optimizer::{decompose, OptimizedQuery, Plan};
    use xprs_scheduler::MachineConfig;
    use xprs_storage::Catalog;
    use xprs_workload::{generate_zipf_join, ZipfJoinSpec, ZipfJoinWorkload};

    use super::FixedParallelism;

    /// Buffer-pool frames (the probe side is [`SPILL_FACTOR`]× this).
    pub const BUFPOOL_PAGES: u64 = 64;
    /// Probe heap pages as a multiple of the pool.
    pub const SPILL_FACTOR: u64 = 4;
    /// Scaled-time speedup, as in the other disk-resident benches.
    pub const TIME_SPEEDUP: f64 = 20.0;
    /// Merge fan-out, pinned explicitly: the auto fan-out collapses to 1
    /// on a single-core CI host and the skew machinery would never engage.
    pub const MERGE_WAYS: usize = 8;
    /// Workload seed.
    pub const SEED: u64 = 0x5E3D;

    /// One timed skewed-join run.
    #[derive(Debug, Clone, Copy)]
    pub struct SkewRun {
        /// Joined tuples emitted (the quantity that concentrates under
        /// skew — throughput is emitted rows over the join wall).
        pub emitted: u64,
        /// Wall seconds for the whole run.
        pub wall: f64,
        /// First fragment start → last fragment finish.
        pub join_wall: f64,
        /// Heavy-hitter keys the run detected (registry counter: master
        /// fan-out plus `split_runs_stats` carving, summed over merges).
        pub hot_keys: u64,
        /// Rows in the heaviest way of the root fragment's merge.
        pub way_rows_max: u64,
        /// Mean rows per way of the root fragment's merge.
        pub way_rows_mean: u64,
        /// Buffer-pool hit fraction.
        pub hit_rate: f64,
        /// Pages still pinned at exit (must be 0).
        pub pinned_at_exit: u64,
        /// Admission-ledger pages granted over the run.
        pub granted_pages: u64,
        /// Admission-ledger pages released (must equal granted).
        pub released_pages: u64,
    }

    /// The Zipf(θ) catalog: thin build side, disk-resident probe side.
    pub fn catalog(theta: f64) -> (Arc<Catalog>, ZipfJoinWorkload) {
        let spec = ZipfJoinSpec::paper(theta, BUFPOOL_PAGES, SPILL_FACTOR, SEED);
        let workload = generate_zipf_join(&spec);
        let mut cat = Catalog::new(StripedLayout::new(4));
        workload.load_into(&mut cat);
        (Arc::new(cat), workload)
    }

    /// `build ⋈ probe` as a key-domain merge join — the plan shape whose
    /// root materializes both sides and walks the key domain, i.e. the
    /// shape the master's heavy-hitter detection and replicated fan-out
    /// serve. Hand-pinned so the optimizer cannot reshape it.
    fn optimized(cat: &Catalog, workload: &ZipfJoinWorkload) -> OptimizedQuery {
        let plan = Plan::MergeJoin {
            left: Box::new(Plan::SeqScan { rel: 0 }),
            right: Box::new(Plan::SeqScan { rel: 1 }),
        };
        let rels: Vec<RelInfo> = [&workload.build, &workload.probe]
            .iter()
            .map(|n| {
                let s = cat.get(n).expect("bench relation").stats();
                RelInfo {
                    n_tuples: s.n_tuples as f64,
                    n_blocks: s.n_blocks as f64,
                    n_distinct: s.n_distinct_a as f64,
                    selectivity: 1.0,
                    has_index: false,
                    clustered: false,
                }
            })
            .collect();
        let costed = CostModel::paper_default().cost_plan(&plan, &rels);
        let fragments = decompose(&plan, &costed, 0);
        OptimizedQuery { seqcost: costed.cost.total_cost, parcost: 0.0, plan, fragments }
    }

    /// Run the skewed merge join once with `workers` workers.
    pub fn run(cat: &Arc<Catalog>, workload: &ZipfJoinWorkload, workers: u32) -> SkewRun {
        let optimized = optimized(cat, workload);
        let bindings = vec![
            RelBinding { name: workload.build.clone(), pred: (i32::MIN, i32::MAX) },
            RelBinding { name: workload.probe.clone(), pred: (i32::MIN, i32::MAX) },
        ];
        let runs = vec![QueryRun { optimized, bindings }];
        let mut cfg = ExecConfig::scaled(TIME_SPEEDUP).with_obs().with_memory_grants();
        cfg.bufpool_pages = BUFPOOL_PAGES as usize;
        cfg.parallel_merge_ways = MERGE_WAYS;
        let exec = Executor::new(cfg, cat.clone());
        let mut policy = FixedParallelism::new(MachineConfig::paper_default(), workers);
        let t0 = Instant::now();
        let report = exec.run(&runs, &mut policy).expect("skewed join failed");
        let wall = t0.elapsed().as_secs_f64();
        let first_start =
            report.fragment_times.iter().map(|&(_, s, _)| s).fold(f64::INFINITY, f64::min);
        let last_finish =
            report.fragment_times.iter().map(|&(_, _, f)| f).fold(0.0f64, f64::max);
        let root = report.profiles[0]
            .fragments
            .iter()
            .find(|f| f.is_root)
            .expect("root fragment profiled");
        SkewRun {
            emitted: report.results[0].rows.rows.len() as u64,
            wall,
            join_wall: last_finish - first_start,
            hot_keys: report.metrics.as_ref().map_or(0, |m| m.hot_keys.get()),
            way_rows_max: root.merge.way_rows_max,
            way_rows_mean: root.merge.way_rows_mean,
            hit_rate: report.stats.pool.hit_rate(),
            pinned_at_exit: report.pool_pinned_at_exit,
            granted_pages: report.mem_granted_pages,
            released_pages: report.mem_released_pages,
        }
    }
}

/// Predictive-scheduling A/B: the same concurrent-join workload run with
/// declared profiles seeded wrong by 2–8× in both directions, scheduled
/// once trusting the declarations (cold, no predictor) and once with a
/// shared online [`Predictor`](xprs_scheduler::predict::Predictor) warmed
/// across repetitions. Over-declared build footprints serialize the
/// grant-admission queue in declared mode; the predictor learns the real
/// footprints from observed pages and restores admission concurrency.
/// Under-declared footprints show up as `footprint_overruns` that must
/// *decrease* across repetitions as the model warms. The final-rep traces
/// of both modes are captured so CI can prove at least one scheduling
/// decision actually differed (no vacuous pass).
pub mod exec_predict {
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    use xprs_disk::StripedLayout;
    use xprs_executor::{ExecConfig, Executor, QueryRun, RelBinding};
    use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
    use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
    use xprs_scheduler::predict::Predictor;
    use xprs_scheduler::trace::{
        action_signature, action_stream, parse_jsonl, JsonlSink, SharedSink, TraceRecord,
    };
    use xprs_scheduler::{Action, MachineConfig, TaskId};
    use xprs_storage::{Catalog, Datum, Schema, Tuple, PAGE_SIZE};

    /// Pool frames both modes run with.
    pub const BUFPOOL_PAGES: usize = 64;
    /// Concurrent join queries per repetition.
    pub const N_QUERIES: usize = 4;
    /// Simulated-vs-wall speedup of the throttled machine (the predictor
    /// only trains on scaled runs, where elapsed time carries signal).
    pub const TIME_SPEEDUP: f64 = 20.0;
    /// Rows per build relation: ~10 tuples/page ⇒ ~16 heap pages, a
    /// quarter of the pool, so four right-sized builds admit concurrently.
    pub const BUILD_ROWS: u64 = 160;
    /// Rows per probe relation.
    pub const PROBE_ROWS: u64 = 320;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *seed >> 33
    }

    /// `N_QUERIES` independent build/probe pairs, IO-heavy rows.
    pub fn catalog(seed: u64) -> Arc<Catalog> {
        let mut cat = Catalog::new(StripedLayout::new(4));
        let mut s = seed;
        for qi in 0..N_QUERIES {
            for (prefix, n) in [("build", BUILD_ROWS), ("probe", PROBE_ROWS)] {
                let name = format!("{prefix}_{qi}");
                cat.create(&name, Schema::paper_rel());
                let rows: Vec<Tuple> = (0..n)
                    .map(|_| {
                        let a = (lcg(&mut s) % 50) as i32;
                        Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(800))])
                    })
                    .collect();
                cat.load(&name, rows);
                cat.build_index(&name, false);
            }
        }
        Arc::new(cat)
    }

    /// The joins with every declared fragment profile seeded wrong by a
    /// per-fragment factor in 2..=8: time and rate skewed in opposite
    /// directions (misclassifying IO-bound work as CPU-bound and vice
    /// versa), footprints over-declared on most queries (stalling declared-
    /// mode admission) and under-declared on the last (planting footprint
    /// overruns the predictor must learn away).
    pub fn wrong_runs(cat: &Arc<Catalog>, seed: u64) -> Vec<QueryRun> {
        let optimizer = TwoPhaseOptimizer::paper_default();
        let mut s = seed ^ 0x5EED;
        (0..N_QUERIES)
            .map(|qi| {
                let build = format!("build_{qi}");
                let probe = format!("probe_{qi}");
                let q = Query::join().rel(&build, 1.0).rel(&probe, 1.0).on(0, 1).build();
                let mut optimized =
                    optimizer.optimize_catalog(cat, &q, Costing::SeqCost).expect("plan");
                for f in &mut optimized.fragments.fragments {
                    let factor = 2.0 + (lcg(&mut s) % 7) as f64; // 2..=8
                    let p = &mut f.profile;
                    if lcg(&mut s).is_multiple_of(2) {
                        p.seq_time *= factor;
                        p.io_rate /= factor;
                    } else {
                        p.seq_time /= factor;
                        p.io_rate *= factor;
                    }
                    if p.memory > 0.0 {
                        if qi + 1 == N_QUERIES {
                            p.memory /= factor; // planted overrun
                        } else {
                            p.memory *= factor; // stalls declared admission
                        }
                    }
                }
                QueryRun {
                    optimized,
                    bindings: vec![
                        RelBinding { name: build, pred: (i32::MIN, i32::MAX) },
                        RelBinding { name: probe, pred: (i32::MIN, i32::MAX) },
                    ],
                }
            })
            .collect()
    }

    /// One repetition's observable outcome.
    #[derive(Debug, Clone)]
    pub struct PredictRun {
        /// Wall seconds for the whole repetition.
        pub wall: f64,
        /// Join tuples emitted across all queries.
        pub emitted: u64,
        /// Fragments whose observed pages exceeded the admitted footprint.
        pub footprint_overruns: u64,
        /// Pages granted by the admission ledger.
        pub granted_pages: u64,
        /// Pages released back (must equal granted).
        pub released_pages: u64,
        /// Fragments that waited in the admission FIFO.
        pub grant_waits: u64,
        /// Pages still pinned at exit (must be 0).
        pub pinned_at_exit: u64,
        /// Profile substitutions recorded in the trace (0 in declared mode
        /// and while the model is cold).
        pub predictions: u64,
        /// Clock-robust whole-worker schedule signature, for proving the
        /// two modes actually decided differently.
        pub signature: Vec<(TaskId, bool, u32)>,
    }

    /// Run one repetition. `predictor` = None is the declared-mode
    /// baseline; passing the same `Arc` across repetitions warms the model.
    pub fn run(cat: &Arc<Catalog>, runs: &[QueryRun], predictor: Option<&Arc<Predictor>>) -> PredictRun {
        let machine = MachineConfig::paper_default();
        let mut cfg = ExecConfig::scaled(TIME_SPEEDUP).with_memory_grants().with_obs();
        cfg.bufpool_pages = BUFPOOL_PAGES;
        if let Some(p) = predictor {
            cfg = cfg.with_predictor(p.clone());
        }
        let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
        let shared: SharedSink = sink.clone();
        let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(machine.clone()));
        let t0 = Instant::now();
        let report = Executor::new(cfg, cat.clone())
            .with_trace(shared)
            .run(runs, &mut policy)
            .expect("predictive A/B run failed");
        let wall = t0.elapsed().as_secs_f64();
        let Ok(cell) = Arc::try_unwrap(sink) else { unreachable!("sink still shared") };
        let text = String::from_utf8(cell.into_inner().unwrap().into_inner()).unwrap();
        let records = parse_jsonl(&text).expect("well-formed trace");
        let actions: Vec<(f64, Action)> = action_stream(&records);
        PredictRun {
            wall,
            emitted: report.results.iter().map(|r| r.rows.rows.len() as u64).sum(),
            footprint_overruns: report.footprint_overruns,
            granted_pages: report.mem_granted_pages,
            released_pages: report.mem_released_pages,
            grant_waits: report.mem_grant_waits,
            pinned_at_exit: report.pool_pinned_at_exit,
            predictions: records
                .iter()
                .filter(|r| matches!(r, TraceRecord::Predict { .. }))
                .count() as u64,
            signature: action_signature(&actions, machine.n_procs),
        }
    }

    /// Bytes-per-page constant re-exported so the binary can build the
    /// shared predictor with the pool's real page size.
    pub const PAGE_BYTES: u64 = PAGE_SIZE as u64;
}

/// The host facts every `BENCH_*.json` header records so scaling numbers
/// are interpretable across machines: the host's available parallelism,
/// the simulated machine's processor count (= persistent-pool staffing
/// width), and the buffer-pool size the run used.
pub fn host_header_json(n_procs: u32, bufpool_pages: usize) -> String {
    let avail = std::thread::available_parallelism().map_or(0, |n| n.get());
    format!(
        "  \"host\": {{\"available_parallelism\": {avail}, \"machine_procs\": {n_procs}, \
         \"bufpool_pages\": {bufpool_pages}}},\n"
    )
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Generate the paper workload `kind` for `seed`.
pub fn paper_workload(kind: WorkloadKind, seed: u64) -> Vec<TaskProfile> {
    WorkloadGenerator::new()
        .generate(&WorkloadConfig::paper(kind, seed))
        .profiles()
}

/// Run `kind` × `policy` on the DES over `seeds`, returning elapsed times.
pub fn des_elapsed(
    sys: &XprsSystem,
    kind: WorkloadKind,
    policy: PolicyKind,
    seeds: &[u64],
) -> Vec<f64> {
    seeds
        .iter()
        .map(|&s| sys.simulate(&paper_workload(kind, s), policy).expect("DES run").elapsed)
        .collect()
}

/// Run `kind` × `policy` on the fluid model over `seeds`.
pub fn fluid_elapsed(
    sys: &XprsSystem,
    kind: WorkloadKind,
    policy: PolicyKind,
    seeds: &[u64],
) -> Vec<f64> {
    seeds
        .iter()
        .map(|&s| sys.estimate(&paper_workload(kind, s), policy).expect("fluid run").elapsed)
        .collect()
}

/// Print a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a markdown header + separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn workload_helper_is_deterministic() {
        let a = paper_workload(WorkloadKind::Extreme, 3);
        let b = paper_workload(WorkloadKind::Extreme, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }
}
