//! # xprs-bench
//!
//! Harness utilities shared by the experiment binaries that regenerate the
//! paper's tables and figures (see `src/bin/`), plus Criterion microbenches
//! under `benches/`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3_classification` | Figure 3 — IO-bound vs CPU-bound task lines |
//! | `fig4_balance_point` | Figure 4 — the IO-CPU balance point |
//! | `protocol_trace` | Figures 5/6 — the dynamic adjustment protocols |
//! | `table_io_rates` | Section 3's task-rate table and disk-bandwidth measurements |
//! | `fig7_schedulers` | Figure 7 — the three algorithms × four workloads |
//! | `sec4_optimizer` | Section 4 — seqcost vs parcost plan choice |
//! | `ablation_pairing` | pairing heuristic ablation (most-extreme / FIFO / SJF) |
//! | `ablation_seek_model` | planning with vs without the seek-interference correction |
//! | `ablation_adjust_latency` | sensitivity to the adjustment-protocol latency |
//! | `ablation_two_tasks` | the "two tasks suffice" claim vs k-way co-scheduling |

use xprs::{PolicyKind, XprsSystem};
use xprs_scheduler::TaskProfile;
use xprs_workload::{WorkloadConfig, WorkloadGenerator, WorkloadKind};

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Generate the paper workload `kind` for `seed`.
pub fn paper_workload(kind: WorkloadKind, seed: u64) -> Vec<TaskProfile> {
    WorkloadGenerator::new()
        .generate(&WorkloadConfig::paper(kind, seed))
        .profiles()
}

/// Run `kind` × `policy` on the DES over `seeds`, returning elapsed times.
pub fn des_elapsed(
    sys: &XprsSystem,
    kind: WorkloadKind,
    policy: PolicyKind,
    seeds: &[u64],
) -> Vec<f64> {
    seeds
        .iter()
        .map(|&s| sys.simulate(&paper_workload(kind, s), policy).elapsed)
        .collect()
}

/// Run `kind` × `policy` on the fluid model over `seeds`.
pub fn fluid_elapsed(
    sys: &XprsSystem,
    kind: WorkloadKind,
    policy: PolicyKind,
    seeds: &[u64],
) -> Vec<f64> {
    seeds
        .iter()
        .map(|&s| sys.estimate(&paper_workload(kind, s), policy).elapsed)
        .collect()
}

/// Print a markdown table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a markdown header + separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn workload_helper_is_deterministic() {
        let a = paper_workload(WorkloadKind::Extreme, 3);
        let b = paper_workload(WorkloadKind::Extreme, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }
}
