//! # xprs-scheduler
//!
//! The scheduling core of *"Exploiting Inter-Operation Parallelism in XPRS"*
//! (Wei Hong, UCB/ERL M92/3, January 1992).
//!
//! XPRS executes query plans as **plan fragments** (maximal pipelineable
//! subtrees, called *tasks*). Each task `f_i` has a sequential execution time
//! `T_i` and a sequential I/O request rate `C_i` (I/Os per second). Run with
//! intra-operation parallelism `x`, its I/O rate becomes `C_i · x`.
//!
//! Given a machine with `N` processors and aggregate disk bandwidth `B`,
//! the paper's scheduler:
//!
//! 1. classifies a task as **IO-bound** when `C_i > B / N` and **CPU-bound**
//!    otherwise ([`task`]);
//! 2. pairs one IO-bound and one CPU-bound task and runs them at the
//!    **IO-CPU balance point** — the parallelism split `(x_i, x_j)` with
//!    `x_i + x_j = N` and `C_i·x_i + C_j·x_j = B`, which saturates both the
//!    processors and the disks ([`balance`]);
//! 3. corrects the bandwidth `B` for **seek interference** between two
//!    sequential-I/O tasks ([`balance::effective_bandwidth`]);
//! 4. **dynamically adjusts** the degree of parallelism of running tasks so
//!    that the system stays at the balance point as tasks finish and arrive
//!    ([`adaptive`]);
//! 5. estimates parallel execution time `T_n(S)` of a task set — or of a
//!    fragment DAG with order dependencies — by replaying the scheduling
//!    algorithm analytically ([`fluid`]), which is what the two-phase query
//!    optimizer uses as `parcost` (see the `xprs-optimizer` crate).
//!
//! The three policies evaluated in the paper's Section 3 are available as
//! [`policy::SchedulePolicy`] implementations:
//!
//! * [`intra::IntraOnly`] — `INTRA-ONLY`, one task at a time;
//! * [`adaptive::AdaptiveScheduler`] with
//!   [`adaptive::AdaptiveConfig::adjust`]` = false` — `INTER-WITHOUT-ADJ`;
//! * [`adaptive::AdaptiveScheduler`] with `adjust = true` — `INTER-WITH-ADJ`,
//!   the paper's proposal.
//!
//! ## Quick example
//!
//! ```
//! use xprs_scheduler::machine::MachineConfig;
//! use xprs_scheduler::task::{IoKind, TaskId, TaskProfile};
//! use xprs_scheduler::balance::balance_point;
//!
//! let m = MachineConfig::paper_default(); // 8 CPUs, 4 disks, B = 240 io/s
//! let io = TaskProfile::new(TaskId(0), 20.0, 60.0, IoKind::Sequential);
//! let cpu = TaskProfile::new(TaskId(1), 20.0, 10.0, IoKind::Sequential);
//! let bp = balance_point(&io, &cpu, &m).expect("one IO-bound + one CPU-bound");
//! // Both resources saturated: x_io + x_cpu = N and rates sum to B_eff.
//! assert!((bp.x_io + bp.x_cpu - m.n_procs as f64).abs() < 1e-9);
//! ```

pub mod adaptive;
pub mod balance;
pub mod deps;
pub mod error;
pub mod estimate;
pub mod fluid;
pub mod intra;
pub mod machine;
pub mod pairing;
pub mod policy;
pub mod predict;
pub mod task;
pub mod trace;

pub use adaptive::{AdaptiveConfig, AdaptiveScheduler};
pub use balance::{balance_point, BalancePoint};
pub use deps::FragmentDag;
pub use error::SchedError;
pub use fluid::{FluidSim, ScheduleTrace};
pub use intra::IntraOnly;
pub use machine::MachineConfig;
pub use pairing::Pairing;
pub use policy::{Action, RunningTask, SchedulePolicy};
pub use predict::{Observation, PredictKey, Prediction, Predictor};
pub use task::{Boundedness, IoKind, TaskId, TaskProfile};
pub use trace::{
    JsonlSink, NullSink, RingSink, RunningSnap, SharedSink, TraceRecord, TraceSink,
};
