//! Typed errors for the scheduling/execution control path.
//!
//! The paper's whole contribution is the adaptive master loop — classify,
//! pair, balance, adjust — so a control-path anomaly (a policy that never
//! reaches a fixpoint, a completion for a task that is not running, an
//! action naming an unknown task) is a *scheduler bug report*, not a reason
//! to abort the process. Every driver — the fluid estimator
//! ([`crate::fluid`]), the discrete-event simulator (`xprs-sim`) and the
//! threaded executor (`xprs-executor`) — surfaces these conditions as
//! [`SchedError`] values: backends are drained, partial statistics are
//! returned, and the decision trace captured by [`crate::trace`] turns the
//! failure into a replayable artifact.

use crate::task::TaskId;

/// A control-path failure in a scheduling policy or its driver.
///
/// These are *protocol* violations between a [`crate::policy::SchedulePolicy`]
/// and the driver executing its actions. Data-structure invariants (a page
/// partition handing out a block twice, a disk completing an I/O it never
/// started) remain `debug_assert`s: they indicate memory-safety-adjacent
/// corruption, not a bad scheduling decision.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// `decide()` kept returning actions for `rounds` consecutive rounds at
    /// one instant; the policy's start/adjust stream never reached a
    /// fixpoint, so the driver refused to spin forever.
    FixpointDiverged {
        /// Name of the diverging policy.
        policy: &'static str,
        /// Rounds the driver allowed before giving up.
        rounds: u32,
    },
    /// An action referenced a task the driver has never been told about.
    UnknownTask {
        /// The unknown task id.
        task: TaskId,
    },
    /// A `Start` named a task that is already running (or otherwise not in
    /// a startable state).
    AlreadyRunning {
        /// The doubly-started task.
        task: TaskId,
    },
    /// An `Adjust` named a task that is not currently running.
    NotRunning {
        /// The adjusted-but-idle task.
        task: TaskId,
    },
    /// A completion was delivered for a task/fragment that is not running —
    /// a duplicate `FragmentDone`, or a completion raced past a retirement.
    DuplicateCompletion {
        /// The already-finished task.
        task: TaskId,
    },
    /// An action carried a non-positive or non-finite degree of parallelism.
    InvalidParallelism {
        /// The task the action named.
        task: TaskId,
        /// The offending parallelism.
        parallelism: f64,
    },
    /// A task profile failed validation at the policy boundary (zero or
    /// non-finite `seq_time`/`io_rate`, negative memory). Profiles built by
    /// [`crate::task::TaskProfile::new`] cannot trip this; struct-literal
    /// snapshots (as [`crate::policy::RunningTask`] allows) can.
    InvalidProfile {
        /// The invalid task.
        task: TaskId,
        /// Which field failed validation.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A balance point cannot be split into whole workers on this machine
    /// (fewer than two processors).
    InvalidSplit {
        /// Processors available.
        n_procs: u32,
    },
    /// The policy wedged: tasks remain but nothing is running and no future
    /// event can unblock it.
    Wedged {
        /// Name of the wedged policy.
        policy: &'static str,
        /// Tasks that will never run.
        unfinished: usize,
    },
    /// A replay/simulation ended with tasks incomplete (step budget
    /// exhausted or the driver stopped early).
    Incomplete {
        /// Name of the policy being driven.
        policy: &'static str,
        /// Tasks completed before the driver stopped.
        completed: usize,
        /// Tasks the run was supposed to complete.
        total: usize,
    },
    /// A recorded decision stream did not reproduce under replay.
    ReplayMismatch {
        /// Index of the first diverging decision record.
        index: usize,
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// A trace named a policy the replayer cannot reconstruct.
    UnknownPolicy {
        /// The unrecognised policy name.
        name: String,
    },
    /// A trace could not be parsed (malformed JSONL or missing fields).
    MalformedTrace {
        /// Line number (1-based) of the offending record, 0 if structural.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::FixpointDiverged { policy, rounds } => {
                write!(f, "policy {policy} did not reach a fixpoint in {rounds} rounds")
            }
            SchedError::UnknownTask { task } => {
                write!(f, "policy referenced unknown task {task}")
            }
            SchedError::AlreadyRunning { task } => {
                write!(f, "policy started task {task} which is already running")
            }
            SchedError::NotRunning { task } => {
                write!(f, "policy adjusted task {task} which is not running")
            }
            SchedError::DuplicateCompletion { task } => {
                write!(f, "completion delivered for non-running task {task}")
            }
            SchedError::InvalidParallelism { task, parallelism } => {
                write!(f, "action on task {task} carries invalid parallelism {parallelism}")
            }
            SchedError::InvalidProfile { task, field, value } => {
                write!(f, "task {task} has invalid profile: {field} = {value}")
            }
            SchedError::InvalidSplit { n_procs } => {
                write!(f, "cannot split a balance point across {n_procs} processor(s)")
            }
            SchedError::Wedged { policy, unfinished } => {
                write!(f, "policy {policy} wedged with {unfinished} task(s) unfinished")
            }
            SchedError::Incomplete { policy, completed, total } => {
                write!(f, "replay of {policy} stopped after completing {completed}/{total} tasks")
            }
            SchedError::ReplayMismatch { index, detail } => {
                write!(f, "trace replay diverged at record {index}: {detail}")
            }
            SchedError::UnknownPolicy { name } => {
                write!(f, "trace names unknown policy {name:?}")
            }
            SchedError::MalformedTrace { line, detail } => {
                write!(f, "malformed trace at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchedError::FixpointDiverged { policy: "INTER-WITH-ADJ", rounds: 32 };
        let s = e.to_string();
        assert!(s.contains("INTER-WITH-ADJ") && s.contains("32"), "{s}");
        let e = SchedError::DuplicateCompletion { task: TaskId(7) };
        assert!(e.to_string().contains("f7"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SchedError::UnknownTask { task: TaskId(1) });
    }
}
