//! The paper's adaptive scheduling algorithm (Section 2.5), in two flavours:
//! `INTER-WITH-ADJ` (the proposal) and `INTER-WITHOUT-ADJ` (the ablation
//! that pairs tasks but never resizes a running one).
//!
//! The algorithm, restated:
//!
//! 1. split the runnable set into `S_io` (IO-bound) and `S_cpu` (CPU-bound);
//! 2. pick `f_i ∈ S_io` and `f_j ∈ S_cpu` (most-extreme pairing by default);
//! 3. compute their IO-CPU balance point `(x_i, x_j)`;
//! 4. if `T_inter < T_intra(f_i) + T_intra(f_j)` run the pair at the balance
//!    point (adjusting a task that is already running), otherwise run them
//!    one at a time with intra-operation parallelism only;
//! 5. when one of the pair finishes, draw a replacement from the matching
//!    set and go back to step 3, re-balancing against the survivor's
//!    *remaining* work;
//! 6. when either set drains, fall back to intra-only execution.
//!
//! Because `S_io`/`S_cpu` behave as queues, the same policy serves a fixed
//! task set and a continuous multi-user arrival stream.
//!
//! When the machine declares a finite shared-memory size, the scheduler also
//! enforces the paper's Section 5 future-work constraint: a pair only runs
//! concurrently if the two tasks' footprints (hash tables, sort buffers,
//! materialized outputs) fit in memory together; otherwise the partner is
//! drawn from the fitting candidates, or the task runs alone.
//!
//! The `INTER-WITHOUT-ADJ` variant starts pairs the same way, but on a
//! completion it merely starts whichever pending task gets the operating
//! point closest to the maximum-utilization corner using only the processors
//! that just became available — the running task keeps its now-stale degree
//! of parallelism, which is exactly the deficiency Figure 7 exposes.

use crate::balance::{balance_point, balance_point_constant_b, BalancePoint};
use crate::error::SchedError;
use crate::estimate::{t_inter, t_intra};
use crate::machine::MachineConfig;
use crate::pairing::Pairing;
use crate::policy::{round_parallelism, Action, RunningTask, SchedulePolicy};
use crate::task::{Boundedness, TaskId, TaskProfile};
use crate::trace::{emit, SharedSink, TraceRecord};

/// Configuration of the adaptive scheduler.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// The machine being scheduled.
    pub machine: MachineConfig,
    /// Enable dynamic parallelism adjustment (Section 2.4). `true` gives
    /// `INTER-WITH-ADJ`, `false` gives `INTER-WITHOUT-ADJ`.
    pub adjust: bool,
    /// Task-selection heuristic for the two sets.
    pub pairing: Pairing,
    /// Round allocations to whole workers (required by execution engines).
    pub integral: bool,
    /// Ablation: plan balance points against the constant nominal bandwidth
    /// `B`, ignoring the Section 2.3 seek-interference correction.
    pub naive_bandwidth: bool,
}

impl AdaptiveConfig {
    /// `INTER-WITH-ADJ` on machine `m` with the paper's defaults.
    pub fn with_adjustment(m: MachineConfig) -> Self {
        AdaptiveConfig {
            machine: m,
            adjust: true,
            pairing: Pairing::MostExtreme,
            integral: true,
            naive_bandwidth: false,
        }
    }

    /// `INTER-WITHOUT-ADJ` on machine `m`.
    pub fn without_adjustment(m: MachineConfig) -> Self {
        AdaptiveConfig {
            machine: m,
            adjust: false,
            pairing: Pairing::MostExtreme,
            integral: true,
            naive_bandwidth: false,
        }
    }
}

/// The Section 2.5 adaptive scheduler.
#[derive(Clone)]
pub struct AdaptiveScheduler {
    cfg: AdaptiveConfig,
    s_io: Vec<TaskProfile>,
    s_cpu: Vec<TaskProfile>,
    rejected: Vec<(f64, TaskId, SchedError)>,
    sink: Option<SharedSink>,
}

impl std::fmt::Debug for AdaptiveScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveScheduler")
            .field("cfg", &self.cfg)
            .field("s_io", &self.s_io)
            .field("s_cpu", &self.s_cpu)
            .field("rejected", &self.rejected)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl AdaptiveScheduler {
    /// Build the scheduler; see [`AdaptiveConfig`].
    pub fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveScheduler {
            cfg,
            s_io: Vec::new(),
            s_cpu: Vec::new(),
            rejected: Vec::new(),
            sink: None,
        }
    }

    /// Record queue snapshots and candidate evaluations into `sink`. Share
    /// the same sink with the driver so policy and driver records interleave
    /// in event order.
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// Arrivals rejected at the policy boundary as `(time, task, why)` —
    /// profiles that failed [`TaskProfile::validate`] and were never queued.
    pub fn rejected(&self) -> &[(f64, TaskId, SchedError)] {
        &self.rejected
    }

    /// Number of tasks waiting in the IO-bound queue.
    pub fn pending_io(&self) -> usize {
        self.s_io.len()
    }

    /// Number of tasks waiting in the CPU-bound queue.
    pub fn pending_cpu(&self) -> usize {
        self.s_cpu.len()
    }

    fn m(&self) -> &MachineConfig {
        &self.cfg.machine
    }

    /// Balance a pair under the configured bandwidth model. A balance point
    /// that allocates less than one whole backend to either side is not a
    /// real pairing opportunity (a slave backend is a process, not a
    /// fraction) and is reported as no balance point.
    fn balance(&self, f_io: &TaskProfile, f_cpu: &TaskProfile) -> Option<BalancePoint> {
        let bp = if self.cfg.naive_bandwidth {
            balance_point_constant_b(
                f_io.io_rate,
                f_cpu.io_rate,
                self.m().n_procs as f64,
                self.m().total_bandwidth(),
            )
        } else {
            balance_point(f_io, f_cpu, self.m())
        };
        bp.filter(|bp| bp.x_io >= 1.0 && bp.x_cpu >= 1.0)
    }

    /// Balance a candidate pair and run the step-4 `T_inter` vs `T_intra`
    /// comparison, emitting a [`TraceRecord::Candidate`] with the full
    /// verdict when a trace sink is attached. Returns the balance point only
    /// when pairing wins.
    fn evaluate_pair(
        &self,
        now: f64,
        f_io: &TaskProfile,
        f_cpu: &TaskProfile,
    ) -> Option<BalancePoint> {
        let bp = self.balance(f_io, f_cpu)?;
        let inter = t_inter(f_io, f_cpu, &bp, self.m()).elapsed;
        let intra = t_intra(f_io, self.m()) + t_intra(f_cpu, self.m());
        let worthwhile = inter < intra;
        emit(&self.sink, || TraceRecord::Candidate {
            now,
            io: f_io.id,
            cpu: f_cpu.id,
            x_io: bp.x_io,
            x_cpu: bp.x_cpu,
            effective_bw: bp.effective_bw,
            t_inter: inter,
            t_intra: intra,
            worthwhile,
        });
        worthwhile.then_some(bp)
    }

    /// Can `a` and `b` hold their working memory simultaneously?
    fn fits(&self, a: &TaskProfile, b: &TaskProfile) -> bool {
        a.memory + b.memory <= self.m().memory
    }

    /// Indices into `set` of candidates whose memory fits alongside `with`.
    fn fitting(&self, set: &[TaskProfile], with: &TaskProfile) -> Vec<usize> {
        set.iter()
            .enumerate()
            .filter(|(_, c)| self.fits(c, with))
            .map(|(i, _)| i)
            .collect()
    }

    fn int_maxp(&self, t: &TaskProfile) -> f64 {
        let maxp = t.maxp(self.m());
        if self.cfg.integral {
            maxp.floor().max(1.0)
        } else {
            maxp
        }
    }

    /// Split a fractional balance point into the per-task allocations the
    /// driver will be told, respecting the integral setting. Even in
    /// fractional (analysis) mode a task gets at least one worker — a slave
    /// backend is a whole process, and a degenerate balance point like
    /// `x_io = 0.1` would otherwise strand a task at a crawl.
    fn split(&self, x_io: f64, x_cpu: f64) -> (f64, f64) {
        if !self.cfg.integral {
            return (x_io.max(1.0), x_cpu.max(1.0));
        }
        let n = self.m().n_procs;
        let xi = round_parallelism(x_io, n.saturating_sub(1).max(1));
        (xi, (n as f64 - xi).max(1.0))
    }

    /// Start a fresh pair from the two queues if one is worthwhile.
    /// Returns the actions, or an intra-only start if pairing loses.
    fn start_fresh_pair(&mut self, now: f64) -> Vec<Action> {
        let i = self.cfg.pairing.pick(&self.s_io, true);
        let f_io = self.s_io[i].clone();
        // Memory constraint (Section 5): only partners that fit alongside
        // f_io's footprint are eligible.
        let eligible = self.fitting(&self.s_cpu, &f_io);
        if !eligible.is_empty() {
            let view: Vec<TaskProfile> =
                eligible.iter().map(|&k| self.s_cpu[k].clone()).collect();
            let j = eligible[self.cfg.pairing.pick(&view, false)];
            let f_cpu = self.s_cpu[j].clone();
            if let Some(bp) = self.evaluate_pair(now, &f_io, &f_cpu) {
                self.s_io.remove(i);
                self.s_cpu.remove(j);
                let (xi, xj) = self.split(bp.x_io, bp.x_cpu);
                return vec![
                    Action::Start { id: f_io.id, parallelism: xi },
                    Action::Start { id: f_cpu.id, parallelism: xj },
                ];
            }
        }
        // Step 4's "otherwise": run the tasks one at a time. We start the
        // IO-bound one alone; the next decide() re-evaluates the sets, which
        // subsumes "then execute f_j alone" and stays adaptive if a better
        // partner has arrived in the meantime.
        self.s_io.remove(i);
        vec![Action::Start { id: f_io.id, parallelism: self.int_maxp(&f_io) }]
    }

    /// Start one task with intra-operation parallelism only (steps 2/8).
    fn start_solo(&mut self) -> Vec<Action> {
        if !self.s_io.is_empty() {
            let i = self.cfg.pairing.pick(&self.s_io, true);
            let t = self.s_io.remove(i);
            vec![Action::Start { id: t.id, parallelism: self.int_maxp(&t) }]
        } else if !self.s_cpu.is_empty() {
            let j = self.cfg.pairing.pick(&self.s_cpu, false);
            let t = self.s_cpu.remove(j);
            vec![Action::Start { id: t.id, parallelism: self.int_maxp(&t) }]
        } else {
            Vec::new()
        }
    }

    /// INTER-WITH-ADJ: one task `r` is running; draw a partner from the
    /// opposite queue, re-balance against `r`'s remaining work and adjust.
    fn repair_with_adjustment(&mut self, now: f64, r: &RunningTask) -> Vec<Action> {
        let rem = r.remaining_profile();
        let r_is_io = rem.classify(self.m()) == Boundedness::IoBound;
        let opposite = if r_is_io { &self.s_cpu } else { &self.s_io };
        let eligible = self.fitting(opposite, &rem);
        if !eligible.is_empty() {
            let view: Vec<TaskProfile> = eligible.iter().map(|&k| opposite[k].clone()).collect();
            let k = eligible[self.cfg.pairing.pick(&view, !r_is_io)];
            let cand = opposite[k].clone();
            let (f_io, f_cpu) = if r_is_io { (rem.clone(), cand.clone()) } else { (cand.clone(), rem.clone()) };
            if let Some(bp) = self.evaluate_pair(now, &f_io, &f_cpu) {
                if r_is_io {
                    self.s_cpu.remove(k);
                } else {
                    self.s_io.remove(k);
                }
                let (xi, xj) = self.split(bp.x_io, bp.x_cpu);
                let (x_r, x_cand) = if r_is_io { (xi, xj) } else { (xj, xi) };
                let mut acts = Vec::new();
                if (x_r - r.parallelism).abs() > f64::EPSILON {
                    acts.push(Action::Adjust { id: rem.id, parallelism: x_r });
                }
                acts.push(Action::Start { id: cand.id, parallelism: x_cand });
                return acts;
            }
        }
        // No worthwhile partner: spread the survivor over the freed
        // processors — the essence of dynamic adjustment.
        let target = self.int_maxp(&rem);
        if (target - r.parallelism).abs() > f64::EPSILON {
            vec![Action::Adjust { id: rem.id, parallelism: target }]
        } else {
            Vec::new()
        }
    }

    /// INTER-WITHOUT-ADJ replacement rule: keep `r` as-is and start whichever
    /// pending task gets the *nominal* operating point — in the
    /// parallelism/bandwidth rectangle of the paper's Figure 4 — closest to
    /// the maximum-utilization corner `(N, B)`, using only the processors
    /// currently free.
    ///
    /// This is deliberately the naive master the paper describes: the
    /// distance is measured on nominal demand, with no awareness of the seek
    /// interference the added stream will cause, and no awareness that the
    /// running task's degree of parallelism has gone stale. The physics
    /// (fluid model or DES) then punishes the over-commitment, which is how
    /// Figure 7 shows `INTER-WITHOUT-ADJ` losing even to `INTRA-ONLY`.
    /// Demand beyond `B` counts as distance (excess I/O cannot be delivered),
    /// so the variant still declines to stack a second scan onto an array
    /// that is nominally saturated.
    fn repair_without_adjustment(&mut self, r: &RunningTask) -> Vec<Action> {
        let m = self.m().clone();
        let n = m.n_procs as f64;
        let avail = (n - r.parallelism).floor();
        if avail < 1.0 {
            return Vec::new();
        }
        let rem = r.remaining_profile();
        let d_r = rem.io_rate * r.parallelism;
        let b = m.total_bandwidth();

        // Squared normalized distance from the corner (N, B); `None` is the
        // current point (starting nothing remains an option).
        let score = |c: Option<(&TaskProfile, f64)>| -> f64 {
            let (procs, demand) = match c {
                None => (r.parallelism, d_r),
                Some((cand, x)) => (r.parallelism + x, d_r + cand.io_rate * x),
            };
            let dp = (n - procs) / n;
            let db = (b - demand) / b; // negative = nominal over-commitment
            dp * dp + db * db
        };

        let mut best: Option<(bool, usize, f64)> = None; // (from_io_set, idx, x)
        let mut best_score = score(None);
        for (from_io, set) in [(true, &self.s_io), (false, &self.s_cpu)] {
            for (idx, cand) in set.iter().enumerate() {
                if cand.memory + rem.memory > self.m().memory {
                    continue; // would not fit in shared memory together
                }
                // A task's parallelism is limited by the rectangle
                // boundaries (Figure 3): the candidate may not demand more
                // bandwidth than the running task leaves free. A zero-rate
                // candidate (struct-literal profiles bypass TaskProfile::new)
                // demands nothing, so only the processor boundary applies —
                // dividing by it would poison x_max with inf or NaN.
                let bw_room = if cand.io_rate > 0.0 {
                    ((b - d_r) / cand.io_rate).floor()
                } else {
                    avail
                };
                let x_max = avail.min(bw_room);
                let mut x = 1.0;
                while x <= x_max + 0.5 {
                    let s = score(Some((cand, x)));
                    if s < best_score - 1e-9 {
                        best_score = s;
                        best = Some((from_io, idx, x));
                    }
                    x += 1.0;
                }
            }
        }
        match best {
            None => Vec::new(),
            Some((from_io, idx, x)) => {
                let cand = if from_io { self.s_io.remove(idx) } else { self.s_cpu.remove(idx) };
                vec![Action::Start { id: cand.id, parallelism: x }]
            }
        }
    }
}

impl SchedulePolicy for AdaptiveScheduler {
    fn name(&self) -> &'static str {
        if self.cfg.adjust {
            "INTER-WITH-ADJ"
        } else {
            "INTER-WITHOUT-ADJ"
        }
    }

    fn machine(&self) -> &MachineConfig {
        &self.cfg.machine
    }

    fn on_arrival(&mut self, now: f64, task: TaskProfile) {
        // Policy-boundary validation: a poisoned profile (zero io_rate,
        // non-finite seq_time) would turn every balance computation it
        // touches into inf/NaN. Reject it here, once, with a record of why.
        if let Err(e) = task.validate() {
            emit(&self.sink, || TraceRecord::Rejected {
                now,
                task: task.id,
                reason: e.to_string(),
            });
            self.rejected.push((now, task.id, e));
            return;
        }
        match task.classify(self.m()) {
            Boundedness::IoBound => self.s_io.push(task),
            Boundedness::CpuBound => self.s_cpu.push(task),
        }
    }

    fn on_finish(&mut self, _now: f64, _id: TaskId) {}

    fn recalibrate(&mut self, _now: f64, machine: MachineConfig) {
        // Adopt the measured machine wholesale: every subsequent balance
        // point, maxp and T_inter/T_intra comparison plans against the
        // bandwidth the array actually delivers. Queued tasks keep their
        // classification from arrival time — boundedness is re-derived
        // against the new machine on the next repair anyway.
        self.cfg.machine = machine;
    }

    fn decide(&mut self, now: f64, running: &[RunningTask]) -> Vec<Action> {
        if self.sink.is_some() && !(self.s_io.is_empty() && self.s_cpu.is_empty()) {
            let io: Vec<TaskId> = self.s_io.iter().map(|t| t.id).collect();
            let cpu: Vec<TaskId> = self.s_cpu.iter().map(|t| t.id).collect();
            emit(&self.sink, || TraceRecord::Queues { now, io, cpu });
        }
        match running.len() {
            0 => {
                if !self.s_io.is_empty() && !self.s_cpu.is_empty() {
                    self.start_fresh_pair(now)
                } else {
                    self.start_solo()
                }
            }
            1 => {
                if self.cfg.adjust {
                    self.repair_with_adjustment(now, &running[0])
                } else {
                    self.repair_without_adjustment(&running[0])
                }
            }
            // One IO-bound plus one CPU-bound task always suffices for full
            // utilization; never run more than two tasks (Section 2.3).
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::IoKind;

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    fn seq(id: u64, t: f64, rate: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), t, rate, IoKind::Sequential)
    }

    fn run_snapshot(t: &TaskProfile, x: f64, rem: f64) -> RunningTask {
        RunningTask { profile: t.clone(), parallelism: x, remaining_seq_time: rem }
    }

    #[test]
    fn arrivals_are_classified_into_the_two_queues() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        s.on_arrival(0.0, seq(0, 10.0, 65.0));
        s.on_arrival(0.0, seq(1, 10.0, 8.0));
        s.on_arrival(0.0, seq(2, 10.0, 29.0));
        assert_eq!(s.pending_io(), 1);
        assert_eq!(s.pending_cpu(), 2);
    }

    #[test]
    fn fresh_mixed_pair_starts_at_the_balance_point() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        s.on_arrival(0.0, seq(0, 20.0, 65.0));
        s.on_arrival(0.0, seq(1, 20.0, 8.0));
        let acts = s.decide(0.0, &[]);
        assert_eq!(acts.len(), 2);
        let total: f64 = acts.iter().map(|a| a.parallelism()).sum();
        assert_eq!(total, 8.0);
        assert!(acts.iter().all(|a| a.parallelism() >= 1.0));
        assert_eq!(s.pending_io() + s.pending_cpu(), 0);
    }

    #[test]
    fn uniform_workload_falls_back_to_intra_only() {
        // All CPU-bound: one task at a time at full parallelism.
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        s.on_arrival(0.0, seq(0, 10.0, 10.0));
        s.on_arrival(0.0, seq(1, 10.0, 12.0));
        let acts = s.decide(0.0, &[]);
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].parallelism(), 8.0);
        // Second decide with the first task running: nothing new.
        let r = run_snapshot(&seq(0, 10.0, 10.0), 8.0, 5.0);
        assert!(s.decide(1.0, &[r]).is_empty() || !s.cfg.adjust);
    }

    #[test]
    fn with_adjustment_survivor_expands_to_maxp() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        // A CPU-bound survivor running at 5 of 8 processors, nothing pending.
        let t = seq(0, 20.0, 10.0);
        let r = run_snapshot(&t, 5.0, 10.0);
        let acts = s.decide(3.0, &[r]);
        assert_eq!(acts, vec![Action::Adjust { id: TaskId(0), parallelism: 8.0 }]);
    }

    #[test]
    fn with_adjustment_repairs_with_a_new_partner() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        s.on_arrival(0.0, seq(1, 30.0, 8.0)); // pending CPU-bound partner
        let io = seq(0, 30.0, 65.0);
        let r = run_snapshot(&io, 2.0, 25.0);
        let acts = s.decide(5.0, &[r]);
        // Expect a Start for task 1 and (possibly) an Adjust for task 0,
        // summing to the full machine.
        assert!(acts.iter().any(|a| matches!(a, Action::Start { id: TaskId(1), .. })));
        let total: f64 = acts
            .iter()
            .map(|a| a.parallelism())
            .sum::<f64>()
            + if acts.len() == 1 { 2.0 } else { 0.0 };
        assert_eq!(total, 8.0);
    }

    #[test]
    fn without_adjustment_never_adjusts() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::without_adjustment(m()));
        s.on_arrival(0.0, seq(1, 30.0, 8.0));
        let io = seq(0, 30.0, 65.0);
        let r = run_snapshot(&io, 2.0, 25.0);
        let acts = s.decide(5.0, &[r]);
        assert!(acts.iter().all(|a| matches!(a, Action::Start { .. })));
        // The new task only gets the 6 free processors at most.
        for a in &acts {
            assert!(a.parallelism() <= 6.0);
        }
    }

    #[test]
    fn without_adjustment_respects_the_bandwidth_boundary() {
        // An IO-bound task nominally saturating the disks is running and
        // only IO-bound work is pending. The rectangle boundary (Figure 3)
        // leaves no bandwidth room for even one worker of the candidate, so
        // nothing starts.
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::without_adjustment(m()));
        s.on_arrival(0.0, seq(1, 30.0, 50.0));
        let io = seq(0, 30.0, 60.0);
        let r = run_snapshot(&io, 4.0, 20.0); // 4 × 60 = 240 = B
        assert!(s.decide(5.0, &[r]).is_empty());
        // With headroom for exactly one worker, the naive master stacks a
        // sliver of the second scan — the seek interference this causes is
        // what Figure 7 punishes.
        let io2 = seq(0, 30.0, 45.0);
        let r2 = run_snapshot(&io2, 4.0, 20.0); // demand 180, room 60/50 → 1
        let acts = s.decide(5.0, &[r2]);
        assert_eq!(acts.len(), 1);
        assert!(matches!(acts[0], Action::Start { id: TaskId(1), .. }));
        assert_eq!(acts[0].parallelism(), 1.0);
    }

    #[test]
    fn without_adjustment_starts_nothing_when_saturated_and_balanced() {
        // Nominal demand already at the corner (N procs, B io/s): any
        // addition moves the point away, so the policy stays put.
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::without_adjustment(m()));
        s.on_arrival(0.0, seq(1, 30.0, 50.0));
        let io = seq(0, 30.0, 30.0 + 1e-6);
        let r = run_snapshot(&io, 8.0, 20.0); // 8 procs, demand ≈ 240
        assert!(s.decide(5.0, &[r]).is_empty());
    }

    #[test]
    fn two_running_tasks_need_no_decision() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        s.on_arrival(0.0, seq(2, 10.0, 40.0));
        let a = seq(0, 10.0, 65.0);
        let b = seq(1, 10.0, 8.0);
        let rs = vec![run_snapshot(&a, 3.0, 5.0), run_snapshot(&b, 5.0, 5.0)];
        assert!(s.decide(1.0, &rs).is_empty());
    }

    #[test]
    fn memory_constraint_declines_oversized_pairs() {
        let mut machine = m();
        machine.memory = 100.0;
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(machine));
        s.on_arrival(0.0, seq(0, 20.0, 65.0).with_memory(80.0));
        s.on_arrival(0.0, seq(1, 20.0, 8.0).with_memory(60.0));
        // 80 + 60 > 100: no pairing; the IO task starts alone.
        let acts = s.decide(0.0, &[]);
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].task(), TaskId(0));
        assert_eq!(s.pending_cpu(), 1);
    }

    #[test]
    fn memory_constraint_prefers_a_fitting_partner() {
        let mut machine = m();
        machine.memory = 100.0;
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(machine));
        s.on_arrival(0.0, seq(0, 20.0, 65.0).with_memory(80.0));
        // The *most* CPU-bound partner does not fit; the next one does.
        s.on_arrival(0.0, seq(1, 20.0, 5.0).with_memory(60.0));
        s.on_arrival(0.0, seq(2, 20.0, 9.0).with_memory(10.0));
        let acts = s.decide(0.0, &[]);
        assert_eq!(acts.len(), 2);
        assert!(acts.iter().any(|a| a.task() == TaskId(0)));
        assert!(acts.iter().any(|a| a.task() == TaskId(2)), "should pick the fitting partner");
    }

    #[test]
    fn infinite_memory_never_constrains() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        s.on_arrival(0.0, seq(0, 20.0, 65.0).with_memory(1e18));
        s.on_arrival(0.0, seq(1, 20.0, 8.0).with_memory(1e18));
        assert_eq!(s.decide(0.0, &[]).len(), 2);
    }

    #[test]
    fn invalid_profile_is_rejected_at_the_boundary() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        // Struct literal sidesteps TaskProfile::new's asserts — exactly how a
        // poisoned profile reaches a policy in production.
        let poison = TaskProfile {
            id: TaskId(9),
            seq_time: 10.0,
            io_rate: 0.0,
            io_kind: IoKind::Sequential,
            memory: 0.0,
        };
        s.on_arrival(1.5, poison);
        assert_eq!(s.pending_io() + s.pending_cpu(), 0);
        let rej = s.rejected();
        assert_eq!(rej.len(), 1);
        assert_eq!(rej[0].1, TaskId(9));
        assert!(matches!(
            rej[0].2,
            crate::error::SchedError::InvalidProfile { field: "io_rate", .. }
        ));
        // A rejected arrival never reaches decide().
        assert!(s.decide(2.0, &[]).is_empty());
    }

    #[test]
    fn without_adjustment_tolerates_zero_rate_candidates() {
        // Inject a zero-io_rate profile directly into the CPU queue (bypassing
        // the boundary validation) to prove the bw_room division is guarded:
        // before the guard this yielded inf/NaN room and release-mode UB in
        // the float-to-int comparisons downstream.
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::without_adjustment(m()));
        s.s_cpu.push(TaskProfile {
            id: TaskId(1),
            seq_time: 10.0,
            io_rate: 0.0,
            io_kind: IoKind::Sequential,
            memory: 0.0,
        });
        let io = seq(0, 30.0, 60.0);
        let r = run_snapshot(&io, 4.0, 20.0); // 4 × 60 = 240 = B: no bw room
        let acts = s.decide(5.0, &[r]);
        // The zero-rate candidate costs no bandwidth, so it may start on the
        // free processors — but the allocation must be finite and sane.
        for a in &acts {
            assert!(a.parallelism().is_finite());
            assert!(a.parallelism() >= 1.0 && a.parallelism() <= 4.0);
        }
    }

    #[test]
    fn trace_sink_records_queues_and_candidates() {
        use crate::trace::{RingSink, TraceRecord};
        use std::sync::{Arc, Mutex};
        let ring = Arc::new(Mutex::new(RingSink::unbounded()));
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        s.set_trace_sink(ring.clone());
        s.on_arrival(0.0, seq(0, 20.0, 65.0));
        s.on_arrival(0.0, seq(1, 20.0, 8.0));
        let acts = s.decide(0.0, &[]);
        assert_eq!(acts.len(), 2);
        let records = ring.lock().unwrap().records();
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::Queues { io, cpu, .. } if io == &[TaskId(0)] && cpu == &[TaskId(1)]
        )));
        assert!(records.iter().any(|r| matches!(
            r,
            TraceRecord::Candidate { io: TaskId(0), cpu: TaskId(1), worthwhile: true, .. }
        )));
    }

    #[test]
    fn continuous_arrivals_work_like_queues() {
        let mut s = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        // Start a pair, then have another IO task arrive mid-flight; on the
        // IO task's completion the newcomer should be drawn in.
        s.on_arrival(0.0, seq(0, 10.0, 65.0));
        s.on_arrival(0.0, seq(1, 40.0, 8.0));
        let acts = s.decide(0.0, &[]);
        assert_eq!(acts.len(), 2);
        s.on_arrival(1.0, seq(2, 10.0, 55.0));
        s.on_finish(2.0, TaskId(0));
        let survivor = seq(1, 40.0, 8.0);
        let r = run_snapshot(&survivor, 5.0, 30.0);
        let acts = s.decide(2.0, &[r]);
        assert!(acts.iter().any(|a| a.task() == TaskId(2)));
    }
}
