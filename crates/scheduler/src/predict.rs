//! Online per-task profile prediction from observed executions.
//!
//! The optimizer *declares* a [`TaskProfile`] for every fragment; the obs
//! layer *measures* what actually happened (wall time, parallelism applied,
//! pages read). This module closes the loop: a [`Predictor`] keeps a running
//! least-squares model per `(plan-shape, relation-size-bucket)` key and, once
//! a key has enough history, substitutes corrected `seq_time` / `io_rate` /
//! memory estimates for the declared ones. The regressor is the co-runner
//! count at observation time, so the model learns a first-order
//! concurrency-interference term instead of folding contention into the
//! base estimate (Wu et al., "Improving DBMS Scheduling Decisions with
//! Fine-grained Performance Prediction on Concurrent Queries").
//!
//! Design rules, in order of importance:
//!
//! 1. **Never poison the scheduler.** Every prediction must pass
//!    [`TaskProfile::validate`]. Cold keys (< [`MIN_OBSERVATIONS`] samples),
//!    zero-variance regressors, and truncated observations fall back to the
//!    declared profile; warm predictions are ratio-clamped to
//!    [`RATIO_CLAMP`]⁻¹..[`RATIO_CLAMP`] of declared so one wild sample
//!    cannot emit a NaN or a zero `C_i`.
//! 2. **Deterministic.** Prediction is a pure function of the observation
//!    stream: no clocks, no randomness, no map-iteration-order dependence —
//!    the trace-replay harness relies on this.
//! 3. **No ML deps.** Plain running sums; O(1) state per key and target.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::task::TaskProfile;

/// Observations required before a key's model overrides the declared
/// profile. Below this the declared profile is the (cold-start) prior.
pub const MIN_OBSERVATIONS: u64 = 2;

/// Predicted/declared ratio clamp: a warm model may scale `seq_time` and
/// `io_rate` by at most this factor in either direction. Keeps a corrupted
/// observation stream from driving estimates to zero or infinity.
pub const RATIO_CLAMP: f64 = 16.0;

/// Model key: fragments with the same plan shape over similarly sized
/// relations share an error model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredictKey {
    /// Hash of the fragment's operator shape (driver + pipeline ops + root
    /// flag). Computed by the executor from its `FragmentProgram`.
    pub shape: u64,
    /// `log2` bucket of the total heap pages the fragment reads, so a model
    /// trained on a 100-page scan is not applied to a 100k-page one.
    pub size_bucket: u32,
}

impl PredictKey {
    /// Bucket a relation size (total heap pages touched) into a key.
    pub fn new(shape: u64, total_pages: u64) -> Self {
        PredictKey { shape, size_bucket: 64 - total_pages.leading_zeros() }
    }
}

/// One finished execution of a fragment, reported by the executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Declared `T_i` at the time the fragment was scheduled (seconds).
    pub declared_seq_time: f64,
    /// Declared `C_i` (I/Os per second).
    pub declared_io_rate: f64,
    /// Realized sequential time: wall-clock elapsed × parallelism applied.
    pub realized_seq_time: f64,
    /// Pages the fragment actually read (its realized I/O demand *and* a
    /// proxy for its buffer footprint).
    pub observed_pages: f64,
    /// Fragments co-running while this one executed (interference
    /// regressor).
    pub co_runners: u32,
    /// True when the run was cut short (worker death, cancellation): the
    /// measurements are not a full execution and must not train the model.
    pub truncated: bool,
}

/// A substituted profile plus the provenance the trace layer records.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The profile the scheduler should consume. Always passes
    /// [`TaskProfile::validate`] when the declared profile does.
    pub profile: TaskProfile,
    /// Samples behind the prediction (0 ⇒ declared fallback).
    pub observations: u64,
    /// False when this is the declared profile passed through (cold start
    /// or degenerate model).
    pub from_model: bool,
}

/// Running simple-linear-regression state for one target `y` against the
/// co-runner count `x`. O(1) updates; slope/intercept recovered on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct OnlineLsq {
    n: u64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
}

impl OnlineLsq {
    fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }

    /// Predict `y` at `x`. Zero-variance regressor (all samples at one
    /// co-runner count) degenerates to the running mean — never NaN.
    fn predict(&self, x: f64) -> Option<f64> {
        if self.n < MIN_OBSERVATIONS {
            return None;
        }
        let n = self.n as f64;
        let denom = n * self.sum_xx - self.sum_x * self.sum_x;
        let mean = self.sum_y / n;
        if denom.abs() < 1e-9 {
            return Some(mean);
        }
        let slope = (n * self.sum_xy - self.sum_x * self.sum_y) / denom;
        let intercept = mean - slope * self.sum_x / n;
        Some(intercept + slope * x)
    }
}

/// Per-key error model: multiplicative corrections for `T_i` and `C_i`,
/// and an absolute pages model for the memory footprint.
#[derive(Debug, Clone, Copy, Default)]
struct KeyModel {
    /// `realized_seq_time / declared_seq_time` vs co-runners.
    time_ratio: OnlineLsq,
    /// `realized_io_rate / declared_io_rate` vs co-runners.
    rate_ratio: OnlineLsq,
    /// Observed pages read vs co-runners (memory demand in pages).
    pages: OnlineLsq,
}

/// Shared online predictor. Cheap to share (`Arc<Predictor>`); all methods
/// take `&self`.
#[derive(Debug)]
pub struct Predictor {
    /// Bytes per buffer page, used to convert a pages prediction into the
    /// byte footprint `TaskProfile::memory` carries.
    page_size: f64,
    models: Mutex<HashMap<PredictKey, KeyModel>>,
}

impl Predictor {
    /// Build a predictor. `page_size` is the buffer-page size in bytes of
    /// the pool whose footprints it will predict.
    pub fn new(page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Predictor { page_size: page_size as f64, models: Mutex::new(HashMap::new()) }
    }

    /// Train on one finished execution. Truncated or degenerate
    /// measurements (non-finite / non-positive realized time, negative
    /// pages, unusable declared scalars) are discarded — a dead-worker run
    /// must not teach the model that fragments are fast.
    pub fn observe(&self, key: PredictKey, obs: &Observation) {
        if obs.truncated {
            return;
        }
        if !(obs.realized_seq_time.is_finite() && obs.realized_seq_time > 0.0) {
            return;
        }
        if !(obs.observed_pages.is_finite() && obs.observed_pages >= 0.0) {
            return;
        }
        if !(obs.declared_seq_time.is_finite() && obs.declared_seq_time > 0.0) {
            return;
        }
        if !(obs.declared_io_rate.is_finite() && obs.declared_io_rate > 0.0) {
            return;
        }
        let x = obs.co_runners as f64;
        let realized_io_rate = obs.observed_pages / obs.realized_seq_time;
        let mut models = self.models.lock().unwrap();
        let model = models.entry(key).or_default();
        model.time_ratio.push(x, obs.realized_seq_time / obs.declared_seq_time);
        model.rate_ratio.push(x, realized_io_rate / obs.declared_io_rate);
        model.pages.push(x, obs.observed_pages);
    }

    /// Samples accepted for `key` so far.
    pub fn observations(&self, key: PredictKey) -> u64 {
        self.models.lock().unwrap().get(&key).map_or(0, |m| m.time_ratio.n)
    }

    /// Predict the profile of a task about to start with `co_runners`
    /// fragments already running. Falls back to `declared` (pass-through,
    /// `from_model == false`) when the key is cold or the declared profile
    /// is itself unusable as a base.
    pub fn predict(
        &self,
        key: PredictKey,
        declared: &TaskProfile,
        co_runners: u32,
    ) -> Prediction {
        let fallback = |observations| Prediction {
            profile: declared.clone(),
            observations,
            from_model: false,
        };
        if declared.validate().is_err() {
            return fallback(0);
        }
        let models = self.models.lock().unwrap();
        let Some(model) = models.get(&key) else { return fallback(0) };
        let n = model.time_ratio.n;
        let x = co_runners as f64;
        let (Some(r_t), Some(r_c), Some(pages)) = (
            model.time_ratio.predict(x),
            model.rate_ratio.predict(x),
            model.pages.predict(x),
        ) else {
            return fallback(n);
        };
        drop(models);
        let clamp_ratio = |r: f64| {
            if r.is_finite() {
                r.clamp(1.0 / RATIO_CLAMP, RATIO_CLAMP)
            } else {
                1.0
            }
        };
        let seq_time = declared.seq_time * clamp_ratio(r_t);
        let io_rate = declared.io_rate * clamp_ratio(r_c);
        // Footprint: predicted pages, clamped non-negative and bounded by
        // the same ratio band around the declared footprint when one was
        // declared (an undeclared footprint takes the observed value as-is).
        let pages = if pages.is_finite() { pages.max(0.0) } else { 0.0 };
        let mut memory = pages * self.page_size;
        if declared.memory > 0.0 {
            memory = memory
                .clamp(declared.memory / RATIO_CLAMP, declared.memory * RATIO_CLAMP);
        }
        let profile = TaskProfile {
            id: declared.id,
            seq_time,
            io_rate,
            io_kind: declared.io_kind,
            memory,
        };
        debug_assert!(profile.validate().is_ok(), "predictor produced {profile:?}");
        match profile.validate() {
            Ok(()) => Prediction { profile, observations: n, from_model: true },
            // Unreachable by construction; belt-and-braces for release
            // builds — the scheduler must never see a poisoned profile.
            Err(_) => fallback(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{IoKind, TaskId};

    fn declared() -> TaskProfile {
        TaskProfile::new(TaskId(7), 10.0, 20.0, IoKind::Sequential)
            .with_memory(64.0 * 8192.0)
    }

    fn key() -> PredictKey {
        PredictKey::new(0xABCD, 100)
    }

    fn obs(ratio: f64, pages: f64, co: u32) -> Observation {
        let d = declared();
        Observation {
            declared_seq_time: d.seq_time,
            declared_io_rate: d.io_rate,
            realized_seq_time: d.seq_time * ratio,
            observed_pages: pages,
            co_runners: co,
            truncated: false,
        }
    }

    #[test]
    fn cold_key_falls_back_to_declared() {
        let p = Predictor::new(8192);
        let pred = p.predict(key(), &declared(), 3);
        assert!(!pred.from_model);
        assert_eq!(pred.profile, declared());
        // One observation is still below the floor.
        p.observe(key(), &obs(4.0, 100.0, 0));
        let pred = p.predict(key(), &declared(), 0);
        assert!(!pred.from_model);
        assert_eq!(pred.observations, 1);
    }

    #[test]
    fn warm_key_corrects_a_4x_wrong_declaration() {
        let p = Predictor::new(8192);
        for _ in 0..4 {
            p.observe(key(), &obs(4.0, 400.0, 2));
        }
        let pred = p.predict(key(), &declared(), 2);
        assert!(pred.from_model);
        assert!((pred.profile.seq_time - 40.0).abs() < 1e-9);
        // Realized C_i = 400 pages / 40 s = 10 io/s (declared 20).
        assert!((pred.profile.io_rate - 10.0).abs() < 1e-9);
        assert!((pred.profile.memory - 400.0 * 8192.0).abs() < 1e-6);
        assert_eq!(pred.observations, 4);
        pred.profile.validate().unwrap();
    }

    #[test]
    fn zero_variance_regressor_degenerates_to_mean() {
        let p = Predictor::new(8192);
        p.observe(key(), &obs(2.0, 50.0, 5));
        p.observe(key(), &obs(4.0, 150.0, 5));
        // All samples at co_runners = 5; querying another count must not NaN.
        let pred = p.predict(key(), &declared(), 0);
        assert!(pred.from_model);
        assert!((pred.profile.seq_time - 30.0).abs() < 1e-9);
        pred.profile.validate().unwrap();
    }

    #[test]
    fn interference_slope_is_learned() {
        let p = Predictor::new(8192);
        // Alone: true ratio 1. With 4 co-runners: ratio 3.
        for _ in 0..3 {
            p.observe(key(), &obs(1.0, 200.0, 0));
            p.observe(key(), &obs(3.0, 200.0, 4));
        }
        let alone = p.predict(key(), &declared(), 0);
        let crowded = p.predict(key(), &declared(), 4);
        let mid = p.predict(key(), &declared(), 2);
        assert!((alone.profile.seq_time - 10.0).abs() < 1e-6);
        assert!((crowded.profile.seq_time - 30.0).abs() < 1e-6);
        assert!((mid.profile.seq_time - 20.0).abs() < 1e-6);
    }

    #[test]
    fn ratios_are_clamped() {
        let p = Predictor::new(8192);
        // Absurd measurements: 1000x slow, zero pages read.
        for _ in 0..3 {
            p.observe(key(), &obs(1000.0, 0.0, 1));
        }
        let pred = p.predict(key(), &declared(), 1);
        assert!(pred.from_model);
        assert!((pred.profile.seq_time - 10.0 * RATIO_CLAMP).abs() < 1e-9);
        // Zero observed pages would drive C_i to 0; the clamp keeps it
        // positive so validate() holds.
        assert!((pred.profile.io_rate - 20.0 / RATIO_CLAMP).abs() < 1e-9);
        // Declared footprint present: memory clamped to declared/16.
        let d = declared();
        assert!((pred.profile.memory - d.memory / RATIO_CLAMP).abs() < 1e-6);
        pred.profile.validate().unwrap();
    }

    #[test]
    fn truncated_and_degenerate_observations_are_discarded() {
        let p = Predictor::new(8192);
        let mut truncated = obs(4.0, 100.0, 0);
        truncated.truncated = true;
        p.observe(key(), &truncated);
        let mut nan_time = obs(4.0, 100.0, 0);
        nan_time.realized_seq_time = f64::NAN;
        p.observe(key(), &nan_time);
        let mut zero_time = obs(4.0, 100.0, 0);
        zero_time.realized_seq_time = 0.0;
        p.observe(key(), &zero_time);
        let mut neg_pages = obs(4.0, 100.0, 0);
        neg_pages.observed_pages = -5.0;
        p.observe(key(), &neg_pages);
        assert_eq!(p.observations(key()), 0);
        assert!(!p.predict(key(), &declared(), 0).from_model);
    }

    #[test]
    fn invalid_declared_profile_passes_through_untouched() {
        let p = Predictor::new(8192);
        for _ in 0..3 {
            p.observe(key(), &obs(2.0, 100.0, 0));
        }
        let poisoned = TaskProfile { io_rate: 0.0, ..declared() };
        let pred = p.predict(key(), &poisoned, 0);
        assert!(!pred.from_model);
        assert_eq!(pred.profile, poisoned);
    }

    #[test]
    fn size_buckets_partition_by_log2() {
        assert_eq!(PredictKey::new(1, 0).size_bucket, 0);
        assert_eq!(PredictKey::new(1, 1).size_bucket, PredictKey::new(1, 1).size_bucket);
        assert_ne!(PredictKey::new(1, 100).size_bucket, PredictKey::new(1, 100_000).size_bucket);
        // Same order of magnitude lands in the same bucket.
        assert_eq!(PredictKey::new(1, 900).size_bucket, PredictKey::new(1, 1000).size_bucket);
    }

    #[test]
    fn prediction_is_a_pure_function_of_the_stream() {
        let stream: Vec<(PredictKey, Observation)> = (0..40u64)
            .map(|i| {
                let co = (i % 5) as u32;
                let k = PredictKey::new(1 + (i % 3), 50 << (i % 4));
                (k, obs(1.0 + 0.5 * (i % 7) as f64, 10.0 * (1 + i % 9) as f64, co))
            })
            .collect();
        let a = Predictor::new(8192);
        let b = Predictor::new(8192);
        for (k, o) in &stream {
            a.observe(*k, o);
            b.observe(*k, o);
        }
        for (k, _) in &stream {
            for co in 0..6 {
                let pa = a.predict(*k, &declared(), co);
                let pb = b.predict(*k, &declared(), co);
                // Bit-exact, not approximately equal.
                assert_eq!(pa.profile.seq_time.to_bits(), pb.profile.seq_time.to_bits());
                assert_eq!(pa.profile.io_rate.to_bits(), pb.profile.io_rate.to_bits());
                assert_eq!(pa.profile.memory.to_bits(), pb.profile.memory.to_bits());
                assert_eq!(pa.observations, pb.observations);
                pa.profile.validate().unwrap();
            }
        }
    }
}
