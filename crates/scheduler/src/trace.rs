//! Structured decision traces for the scheduling control path.
//!
//! Every driver (the fluid estimator, the discrete-event simulator, the
//! threaded executor) and the adaptive policy itself can emit
//! [`TraceRecord`]s into a [`TraceSink`]: arrivals with full task profiles,
//! queue snapshots, the candidate pair with its balance point and effective
//! bandwidth, the `T_inter` vs `T_intra` verdict, and every `Start`/`Adjust`
//! the driver applied, all timestamped with the driver's clock. The default
//! sink is [`NullSink`] (zero overhead when tracing is off); [`RingSink`]
//! keeps the last `N` records in memory for post-mortems and [`JsonlSink`]
//! streams hand-rolled JSON lines (this workspace builds offline, with no
//! serde) to any `Write`.
//!
//! Because [`crate::adaptive::AdaptiveScheduler`] is deterministic given its
//! input events, a captured trace is a *replayable artifact*:
//!
//! * [`replay_decisions`] feeds the recorded arrivals, completions and
//!   running-set snapshots to a fresh policy and verifies it re-derives the
//!   identical action stream — the first diverging record pinpoints the bug;
//! * [`replay_through_fluid`] rebuilds the task DAG from the recorded
//!   arrival/finish causality and re-executes the whole schedule on the
//!   fluid model, returning the re-derived action stream for comparison
//!   against the capture (e.g. one taken from the threaded executor).
//!
//! See `DESIGN.md` §9 for the record schema and a capture/replay walkthrough.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::error::SchedError;
use crate::machine::MachineConfig;
use crate::policy::{Action, RunningTask, SchedulePolicy};
use crate::task::{IoKind, TaskId, TaskProfile};

/// Snapshot of one running task inside a [`TraceRecord::Decide`] record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningSnap {
    /// The running task.
    pub task: TaskId,
    /// Parallelism the driver last applied.
    pub parallelism: f64,
    /// Sequential-time-equivalent work remaining.
    pub remaining: f64,
}

impl RunningSnap {
    /// Snapshot of a driver-side [`RunningTask`].
    pub fn of(r: &RunningTask) -> Self {
        RunningSnap {
            task: r.profile.id,
            parallelism: r.parallelism,
            remaining: r.remaining_seq_time,
        }
    }
}

/// One structured record of the scheduling control path.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A driver began a run.
    RunStart {
        /// Driver name: `"fluid"`, `"des"` or `"executor"`.
        driver: String,
        /// The policy's [`SchedulePolicy::name`].
        policy: String,
        /// The machine being scheduled.
        machine: MachineConfig,
    },
    /// A task became runnable (with its full profile, so a trace is
    /// self-contained for replay).
    Arrival {
        /// Driver clock at delivery.
        now: f64,
        /// The runnable task's profile.
        profile: TaskProfile,
    },
    /// A task finished.
    Finish {
        /// Driver clock at completion.
        now: f64,
        /// The finished task.
        task: TaskId,
    },
    /// The adaptive policy's queue snapshot on entry to `decide()`.
    Queues {
        /// Policy clock.
        now: f64,
        /// Tasks waiting in the IO-bound queue.
        io: Vec<TaskId>,
        /// Tasks waiting in the CPU-bound queue.
        cpu: Vec<TaskId>,
    },
    /// A candidate IO/CPU pair the policy evaluated: its balance point,
    /// the effective (seek-corrected) bandwidth there, and the step-4
    /// `T_inter` vs `T_intra` verdict.
    Candidate {
        /// Policy clock.
        now: f64,
        /// IO-bound side of the pair.
        io: TaskId,
        /// CPU-bound side of the pair.
        cpu: TaskId,
        /// Balance-point parallelism of the IO-bound task.
        x_io: f64,
        /// Balance-point parallelism of the CPU-bound task.
        x_cpu: f64,
        /// Effective aggregate bandwidth at the balance point.
        effective_bw: f64,
        /// Estimated paired elapsed time `T_inter`.
        t_inter: f64,
        /// `T_intra(f_io) + T_intra(f_cpu)`, the serial alternative.
        t_intra: f64,
        /// The verdict: `true` iff the pair was scheduled together.
        worthwhile: bool,
    },
    /// One non-empty `decide()` round, as seen by the driver: the running
    /// snapshot passed in and the actions returned.
    Decide {
        /// Driver clock.
        now: f64,
        /// Running set handed to the policy.
        running: Vec<RunningSnap>,
        /// Actions the policy returned.
        actions: Vec<Action>,
    },
    /// The driver applied one action (after integral rounding etc.).
    Applied {
        /// Driver clock at application.
        now: f64,
        /// The applied action.
        action: Action,
    },
    /// A task was rejected at the policy boundary (invalid profile).
    Rejected {
        /// Policy clock.
        now: f64,
        /// The rejected task.
        task: TaskId,
        /// Why it was rejected.
        reason: String,
    },
    /// The run ended in a typed error; the trace up to here is the bug
    /// report.
    Error {
        /// Driver clock when the error surfaced.
        now: f64,
        /// Rendered [`SchedError`] (or driver error).
        message: String,
    },
    /// The driver measured the machine, found the observed bandwidth outside
    /// the tolerance band of the model, and re-based the policy on the
    /// corrected machine (degradation-aware rebalancing).
    Recalibrate {
        /// Driver clock at recalibration.
        now: f64,
        /// Observed aggregate bandwidth that triggered the recalibration.
        observed_b: f64,
        /// The modeled bandwidth it was compared against.
        modeled_b: f64,
        /// The corrected machine handed to [`SchedulePolicy::recalibrate`].
        machine: MachineConfig,
    },
    /// The driver substituted a predicted profile for the declared one
    /// before announcing the task to the policy ([`crate::predict`]). The
    /// accompanying [`TraceRecord::Arrival`] carries the *substituted*
    /// profile (so replay sees what the policy saw); this record preserves
    /// the declared prior and the model provenance for scoring predicted
    /// vs realized schedules.
    Predict {
        /// Driver clock at substitution.
        now: f64,
        /// The task whose profile was substituted.
        task: TaskId,
        /// Declared (optimizer) `T_i`, seconds.
        declared_seq_time: f64,
        /// Declared `C_i`, I/Os per second.
        declared_io_rate: f64,
        /// Declared memory footprint, bytes.
        declared_memory: f64,
        /// Predicted `T_i` the scheduler consumed.
        predicted_seq_time: f64,
        /// Predicted `C_i` the scheduler consumed.
        predicted_io_rate: f64,
        /// Predicted memory footprint the admission path consumed.
        predicted_memory: f64,
        /// Co-runner count fed to the interference term.
        co_runners: u32,
        /// Observations behind the model (0 ⇒ declared fallback).
        observations: u64,
    },
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receiver of trace records. Implementations must tolerate being called
/// from whichever thread drives the policy (always exactly one at a time).
pub trait TraceSink: Send {
    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);
}

/// The default sink: discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// In-memory ring buffer keeping the most recent records — cheap enough to
/// leave on in production and harvest after an anomaly.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `cap` records (`cap == 0` keeps none).
    pub fn new(cap: usize) -> Self {
        RingSink { cap, buf: VecDeque::new(), dropped: 0 }
    }

    /// A ring that never evicts (for tests and replay capture).
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buf.iter().cloned().collect()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec.clone());
    }
}

/// Streams each record as one JSON object per line (JSONL) into any writer.
/// The JSON is hand-rolled — the workspace builds offline without serde —
/// and floats round-trip exactly (Rust's shortest-representation `Display`).
///
/// A continuous service must cap this sink ([`JsonlSink::bounded`]): an
/// open-loop arrival stream emits trace records forever, and an unbounded
/// JSONL file is unbounded growth on the service host. Past the cap the
/// sink stops writing and counts what it dropped instead.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write + Send> {
    out: W,
    /// First I/O error encountered, if any (the sink goes quiet after).
    error: Option<std::io::ErrorKind>,
    /// Records this sink will still write; `None` = unbounded.
    remaining: Option<u64>,
    /// Records not written because the cap was reached or the sink had
    /// already gone quiet on an I/O error.
    dropped: u64,
}

impl<W: std::io::Write + Send> JsonlSink<W> {
    /// An unbounded sink writing to `out` (batch runs, tests).
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None, remaining: None, dropped: 0 }
    }

    /// A sink that writes at most `max_records` records to `out`, then
    /// drops (and counts) the rest.
    pub fn bounded(out: W, max_records: u64) -> Self {
        JsonlSink { out, error: None, remaining: Some(max_records), dropped: 0 }
    }

    /// Unwrap the writer (e.g. to recover a `Vec<u8>` buffer).
    pub fn into_inner(self) -> W {
        self.out
    }

    /// The first write error, if the sink went quiet.
    pub fn io_error(&self) -> Option<std::io::ErrorKind> {
        self.error
    }

    /// Records dropped at the cap or after an I/O error.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<W: std::io::Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            self.dropped += 1;
            return; // tracing must never take the run down
        }
        if let Some(remaining) = &mut self.remaining {
            if *remaining == 0 {
                self.dropped += 1;
                return;
            }
            *remaining -= 1;
        }
        let mut line = rec.to_json();
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e.kind());
        }
    }
}

/// A sharable, dynamically-typed sink handle. Drivers and the policy can
/// hold clones of the same handle so their records interleave in event
/// order. Created by [`shared`], or by coercing an
/// `Arc<Mutex<S>>` (keep the typed clone to read the sink back afterwards).
pub type SharedSink = Arc<Mutex<dyn TraceSink>>;

/// Wrap a sink for sharing between a driver and a policy.
pub fn shared<S: TraceSink + 'static>(sink: S) -> SharedSink {
    Arc::new(Mutex::new(sink))
}

/// Emit a lazily-built record into an optional sink. The closure only runs
/// when a sink is attached, so a disabled trace costs one branch. A
/// poisoned sink lock is skipped — tracing never panics the control path.
pub fn emit<F: FnOnce() -> TraceRecord>(sink: &Option<SharedSink>, f: F) {
    if let Some(s) = sink {
        if let Ok(mut guard) = s.lock() {
            let rec = f();
            guard.record(&rec);
        }
    }
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

// The encoder and parser used to live here; they are now the shared
// `xprs_obs::json` module so the executor's `metrics.json` and the bench/CI
// validators speak the exact same dialect (float round-trips, `±1e400`
// infinities, NaN-as-null).
use xprs_obs::json::{fnum, jstr, JsonValue};

fn ids_json(ids: &[TaskId]) -> String {
    let items: Vec<String> = ids.iter().map(|t| t.0.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn action_json(a: &Action) -> String {
    match a {
        Action::Start { id, parallelism } => {
            format!("{{\"kind\":\"start\",\"task\":{},\"x\":{}}}", id.0, fnum(*parallelism))
        }
        Action::Adjust { id, parallelism } => {
            format!("{{\"kind\":\"adjust\",\"task\":{},\"x\":{}}}", id.0, fnum(*parallelism))
        }
    }
}

fn kind_str(k: IoKind) -> &'static str {
    match k {
        IoKind::Sequential => "seq",
        IoKind::Random => "random",
    }
}

fn machine_json(m: &MachineConfig) -> String {
    format!(
        "{{\"n_procs\":{},\"n_disks\":{},\"seq_bw\":{},\"almost_seq_bw\":{},\
         \"random_bw\":{},\"memory\":{}}}",
        m.n_procs,
        m.n_disks,
        fnum(m.seq_bw),
        fnum(m.almost_seq_bw),
        fnum(m.random_bw),
        fnum(m.memory),
    )
}

impl TraceRecord {
    /// One-line JSON rendering of the record (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            TraceRecord::RunStart { driver, policy, machine } => format!(
                "{{\"type\":\"run_start\",\"driver\":{},\"policy\":{},\"machine\":{}}}",
                jstr(driver),
                jstr(policy),
                machine_json(machine),
            ),
            TraceRecord::Arrival { now, profile } => format!(
                "{{\"type\":\"arrival\",\"now\":{},\"task\":{},\"seq_time\":{},\
                 \"io_rate\":{},\"io_kind\":{},\"memory\":{}}}",
                fnum(*now),
                profile.id.0,
                fnum(profile.seq_time),
                fnum(profile.io_rate),
                jstr(kind_str(profile.io_kind)),
                fnum(profile.memory),
            ),
            TraceRecord::Finish { now, task } => {
                format!("{{\"type\":\"finish\",\"now\":{},\"task\":{}}}", fnum(*now), task.0)
            }
            TraceRecord::Queues { now, io, cpu } => format!(
                "{{\"type\":\"queues\",\"now\":{},\"io\":{},\"cpu\":{}}}",
                fnum(*now),
                ids_json(io),
                ids_json(cpu),
            ),
            TraceRecord::Candidate {
                now,
                io,
                cpu,
                x_io,
                x_cpu,
                effective_bw,
                t_inter,
                t_intra,
                worthwhile,
            } => format!(
                "{{\"type\":\"candidate\",\"now\":{},\"io\":{},\"cpu\":{},\"x_io\":{},\
                 \"x_cpu\":{},\"effective_bw\":{},\"t_inter\":{},\"t_intra\":{},\
                 \"worthwhile\":{}}}",
                fnum(*now),
                io.0,
                cpu.0,
                fnum(*x_io),
                fnum(*x_cpu),
                fnum(*effective_bw),
                fnum(*t_inter),
                fnum(*t_intra),
                worthwhile,
            ),
            TraceRecord::Decide { now, running, actions } => {
                let runs: Vec<String> = running
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"task\":{},\"x\":{},\"remaining\":{}}}",
                            r.task.0,
                            fnum(r.parallelism),
                            fnum(r.remaining)
                        )
                    })
                    .collect();
                let acts: Vec<String> = actions.iter().map(action_json).collect();
                format!(
                    "{{\"type\":\"decide\",\"now\":{},\"running\":[{}],\"actions\":[{}]}}",
                    fnum(*now),
                    runs.join(","),
                    acts.join(",")
                )
            }
            TraceRecord::Applied { now, action } => format!(
                "{{\"type\":\"applied\",\"now\":{},\"action\":{}}}",
                fnum(*now),
                action_json(action)
            ),
            TraceRecord::Rejected { now, task, reason } => format!(
                "{{\"type\":\"rejected\",\"now\":{},\"task\":{},\"reason\":{}}}",
                fnum(*now),
                task.0,
                jstr(reason)
            ),
            TraceRecord::Error { now, message } => format!(
                "{{\"type\":\"error\",\"now\":{},\"message\":{}}}",
                fnum(*now),
                jstr(message)
            ),
            TraceRecord::Recalibrate { now, observed_b, modeled_b, machine } => format!(
                "{{\"type\":\"recalibrate\",\"now\":{},\"observed_b\":{},\
                 \"modeled_b\":{},\"machine\":{}}}",
                fnum(*now),
                fnum(*observed_b),
                fnum(*modeled_b),
                machine_json(machine),
            ),
            TraceRecord::Predict {
                now,
                task,
                declared_seq_time,
                declared_io_rate,
                declared_memory,
                predicted_seq_time,
                predicted_io_rate,
                predicted_memory,
                co_runners,
                observations,
            } => format!(
                "{{\"type\":\"predict\",\"now\":{},\"task\":{},\
                 \"declared_seq_time\":{},\"declared_io_rate\":{},\
                 \"declared_memory\":{},\"predicted_seq_time\":{},\
                 \"predicted_io_rate\":{},\"predicted_memory\":{},\
                 \"co_runners\":{},\"observations\":{}}}",
                fnum(*now),
                task.0,
                fnum(*declared_seq_time),
                fnum(*declared_io_rate),
                fnum(*declared_memory),
                fnum(*predicted_seq_time),
                fnum(*predicted_io_rate),
                fnum(*predicted_memory),
                co_runners,
                observations,
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// JSON parsing (via the shared `xprs_obs::json` parser)
// ---------------------------------------------------------------------------

fn malformed(line: usize, detail: impl Into<String>) -> SchedError {
    SchedError::MalformedTrace { line, detail: detail.into() }
}

fn field<'a>(v: &'a JsonValue, key: &str, line: usize) -> Result<&'a JsonValue, SchedError> {
    v.get(key).ok_or_else(|| malformed(line, format!("missing field {key:?}")))
}

fn fnum_of(v: &JsonValue, key: &str, line: usize) -> Result<f64, SchedError> {
    field(v, key, line)?
        .num()
        .ok_or_else(|| malformed(line, format!("field {key:?} is not a number")))
}

fn id_of(v: &JsonValue, key: &str, line: usize) -> Result<TaskId, SchedError> {
    Ok(TaskId(fnum_of(v, key, line)? as u64))
}

fn ids_of(v: &JsonValue, key: &str, line: usize) -> Result<Vec<TaskId>, SchedError> {
    field(v, key, line)?
        .arr()
        .ok_or_else(|| malformed(line, format!("field {key:?} is not an array")))?
        .iter()
        .map(|j| {
            j.num()
                .map(|x| TaskId(x as u64))
                .ok_or_else(|| malformed(line, "task id is not a number"))
        })
        .collect()
}

fn machine_of(v: &JsonValue, key: &str, line: usize) -> Result<MachineConfig, SchedError> {
    let m = field(v, key, line)?;
    Ok(MachineConfig {
        n_procs: fnum_of(m, "n_procs", line)? as u32,
        n_disks: fnum_of(m, "n_disks", line)? as u32,
        seq_bw: fnum_of(m, "seq_bw", line)?,
        almost_seq_bw: fnum_of(m, "almost_seq_bw", line)?,
        random_bw: fnum_of(m, "random_bw", line)?,
        memory: fnum_of(m, "memory", line)?,
    })
}

fn action_of(v: &JsonValue, line: usize) -> Result<Action, SchedError> {
    let kind = field(v, "kind", line)?
        .str()
        .ok_or_else(|| malformed(line, "action kind is not a string"))?;
    let id = id_of(v, "task", line)?;
    let parallelism = fnum_of(v, "x", line)?;
    match kind {
        "start" => Ok(Action::Start { id, parallelism }),
        "adjust" => Ok(Action::Adjust { id, parallelism }),
        other => Err(malformed(line, format!("unknown action kind {other:?}"))),
    }
}

impl TraceRecord {
    /// Parse one record from its [`TraceRecord::to_json`] line. `line` is
    /// the 1-based line number used in error reports.
    pub fn from_json(s: &str, line: usize) -> Result<TraceRecord, SchedError> {
        let v = xprs_obs::json::parse_prefix(s).map_err(|e| malformed(line, e))?;
        let ty = field(&v, "type", line)?
            .str()
            .ok_or_else(|| malformed(line, "record type is not a string"))?
            .to_string();
        match ty.as_str() {
            "run_start" => Ok(TraceRecord::RunStart {
                driver: field(&v, "driver", line)?
                    .str()
                    .ok_or_else(|| malformed(line, "driver is not a string"))?
                    .to_string(),
                policy: field(&v, "policy", line)?
                    .str()
                    .ok_or_else(|| malformed(line, "policy is not a string"))?
                    .to_string(),
                machine: machine_of(&v, "machine", line)?,
            }),
            "arrival" => {
                let kind = match field(&v, "io_kind", line)?.str() {
                    Some("seq") => IoKind::Sequential,
                    Some("random") => IoKind::Random,
                    _ => return Err(malformed(line, "unknown io_kind")),
                };
                Ok(TraceRecord::Arrival {
                    now: fnum_of(&v, "now", line)?,
                    profile: TaskProfile {
                        id: id_of(&v, "task", line)?,
                        seq_time: fnum_of(&v, "seq_time", line)?,
                        io_rate: fnum_of(&v, "io_rate", line)?,
                        io_kind: kind,
                        memory: fnum_of(&v, "memory", line)?,
                    },
                })
            }
            "finish" => Ok(TraceRecord::Finish {
                now: fnum_of(&v, "now", line)?,
                task: id_of(&v, "task", line)?,
            }),
            "queues" => Ok(TraceRecord::Queues {
                now: fnum_of(&v, "now", line)?,
                io: ids_of(&v, "io", line)?,
                cpu: ids_of(&v, "cpu", line)?,
            }),
            "candidate" => Ok(TraceRecord::Candidate {
                now: fnum_of(&v, "now", line)?,
                io: id_of(&v, "io", line)?,
                cpu: id_of(&v, "cpu", line)?,
                x_io: fnum_of(&v, "x_io", line)?,
                x_cpu: fnum_of(&v, "x_cpu", line)?,
                effective_bw: fnum_of(&v, "effective_bw", line)?,
                t_inter: fnum_of(&v, "t_inter", line)?,
                t_intra: fnum_of(&v, "t_intra", line)?,
                worthwhile: field(&v, "worthwhile", line)?
                    .boolean()
                    .ok_or_else(|| malformed(line, "worthwhile is not a bool"))?,
            }),
            "decide" => {
                let running = field(&v, "running", line)?
                    .arr()
                    .ok_or_else(|| malformed(line, "running is not an array"))?
                    .iter()
                    .map(|j| {
                        Ok(RunningSnap {
                            task: id_of(j, "task", line)?,
                            parallelism: fnum_of(j, "x", line)?,
                            remaining: fnum_of(j, "remaining", line)?,
                        })
                    })
                    .collect::<Result<Vec<_>, SchedError>>()?;
                let actions = field(&v, "actions", line)?
                    .arr()
                    .ok_or_else(|| malformed(line, "actions is not an array"))?
                    .iter()
                    .map(|j| action_of(j, line))
                    .collect::<Result<Vec<_>, SchedError>>()?;
                Ok(TraceRecord::Decide { now: fnum_of(&v, "now", line)?, running, actions })
            }
            "applied" => Ok(TraceRecord::Applied {
                now: fnum_of(&v, "now", line)?,
                action: action_of(field(&v, "action", line)?, line)?,
            }),
            "rejected" => Ok(TraceRecord::Rejected {
                now: fnum_of(&v, "now", line)?,
                task: id_of(&v, "task", line)?,
                reason: field(&v, "reason", line)?
                    .str()
                    .ok_or_else(|| malformed(line, "reason is not a string"))?
                    .to_string(),
            }),
            "error" => Ok(TraceRecord::Error {
                now: fnum_of(&v, "now", line)?,
                message: field(&v, "message", line)?
                    .str()
                    .ok_or_else(|| malformed(line, "message is not a string"))?
                    .to_string(),
            }),
            "recalibrate" => Ok(TraceRecord::Recalibrate {
                now: fnum_of(&v, "now", line)?,
                observed_b: fnum_of(&v, "observed_b", line)?,
                modeled_b: fnum_of(&v, "modeled_b", line)?,
                machine: machine_of(&v, "machine", line)?,
            }),
            "predict" => Ok(TraceRecord::Predict {
                now: fnum_of(&v, "now", line)?,
                task: id_of(&v, "task", line)?,
                declared_seq_time: fnum_of(&v, "declared_seq_time", line)?,
                declared_io_rate: fnum_of(&v, "declared_io_rate", line)?,
                declared_memory: fnum_of(&v, "declared_memory", line)?,
                predicted_seq_time: fnum_of(&v, "predicted_seq_time", line)?,
                predicted_io_rate: fnum_of(&v, "predicted_io_rate", line)?,
                predicted_memory: fnum_of(&v, "predicted_memory", line)?,
                co_runners: fnum_of(&v, "co_runners", line)? as u32,
                observations: fnum_of(&v, "observations", line)? as u64,
            }),
            other => Err(malformed(line, format!("unknown record type {other:?}"))),
        }
    }
}

/// Parse a whole JSONL capture (blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, SchedError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| TraceRecord::from_json(l, i + 1))
        .collect()
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// The `(timestamp, action)` stream a trace records, drawn from its
/// [`TraceRecord::Decide`] records in order.
pub fn action_stream(records: &[TraceRecord]) -> Vec<(f64, Action)> {
    records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Decide { now, actions, .. } => Some((*now, actions.clone())),
            _ => None,
        })
        .flat_map(|(now, actions)| actions.into_iter().map(move |a| (now, a)))
        .collect()
}

/// A whole-worker signature of an action stream, robust to the clock (wall
/// vs virtual) and to sub-worker jitter in remaining-work estimates:
/// `(task, is_start, parallelism rounded to whole workers in 1..=n_procs)`.
pub fn action_signature(actions: &[(f64, Action)], n_procs: u32) -> Vec<(TaskId, bool, u32)> {
    actions
        .iter()
        .map(|(_, a)| {
            let x = (a.parallelism().round() as i64).clamp(1, n_procs.max(1) as i64) as u32;
            (a.task(), matches!(a, Action::Start { .. }), x)
        })
        .collect()
}

/// Feed the recorded event stream (arrivals, finishes, decide snapshots) to
/// a *fresh* policy and verify it re-derives the recorded action stream
/// exactly. The policy must be constructed with the same configuration as
/// the capture (see [`replay_through_fluid`] for a fully self-contained
/// variant). Returns the number of decide records checked.
///
/// # Errors
/// [`SchedError::ReplayMismatch`] names the first diverging record;
/// [`SchedError::UnknownTask`] if a decide snapshot references a task with
/// no prior arrival record.
pub fn replay_decisions(
    records: &[TraceRecord],
    policy: &mut dyn SchedulePolicy,
) -> Result<usize, SchedError> {
    let mut profiles: Vec<TaskProfile> = Vec::new();
    let mut checked = 0usize;
    for (i, rec) in records.iter().enumerate() {
        match rec {
            TraceRecord::Arrival { now, profile } => {
                if !profiles.iter().any(|p| p.id == profile.id) {
                    profiles.push(profile.clone());
                }
                policy.on_arrival(*now, profile.clone());
            }
            TraceRecord::Finish { now, task } => policy.on_finish(*now, *task),
            TraceRecord::Recalibrate { now, machine, .. } => {
                policy.recalibrate(*now, machine.clone())
            }
            TraceRecord::Decide { now, running, actions } => {
                let snapshot: Vec<RunningTask> = running
                    .iter()
                    .map(|r| {
                        let profile = profiles
                            .iter()
                            .find(|p| p.id == r.task)
                            .cloned()
                            .ok_or(SchedError::UnknownTask { task: r.task })?;
                        Ok(RunningTask {
                            profile,
                            parallelism: r.parallelism,
                            remaining_seq_time: r.remaining,
                        })
                    })
                    .collect::<Result<Vec<_>, SchedError>>()?;
                let got = policy.decide(*now, &snapshot);
                if &got != actions {
                    return Err(SchedError::ReplayMismatch {
                        index: i,
                        detail: format!("recorded {actions:?}, replay produced {got:?}"),
                    });
                }
                checked += 1;
            }
            _ => {}
        }
    }
    Ok(checked)
}

/// Re-execute a captured run on the fluid model and return the re-derived
/// action stream.
///
/// The machine and policy are reconstructed from the trace's
/// [`TraceRecord::RunStart`] header. The recorded arrival/finish *causality*
/// is preserved by synthesising a [`crate::deps::FragmentDag`]: each arrival
/// depends on every task whose finish record precedes it, so the fluid
/// replay releases tasks in the same order the original driver did even
/// though its (virtual) clock differs from the capture's (wall) clock.
///
/// # Errors
/// [`SchedError::MalformedTrace`] if the trace has no `run_start` or no
/// arrivals; [`SchedError::UnknownPolicy`] for a policy the replayer cannot
/// rebuild; any [`SchedError`] the fluid replay itself surfaces.
pub fn replay_through_fluid(records: &[TraceRecord]) -> Result<Vec<(f64, Action)>, SchedError> {
    use crate::adaptive::{AdaptiveConfig, AdaptiveScheduler};
    use crate::deps::FragmentDag;
    use crate::fluid::FluidSim;
    use crate::intra::IntraOnly;

    let (machine, policy_name) = records
        .iter()
        .find_map(|r| match r {
            TraceRecord::RunStart { machine, policy, .. } => {
                Some((machine.clone(), policy.clone()))
            }
            _ => None,
        })
        .ok_or_else(|| malformed(0, "trace has no run_start record"))?;

    // Rebuild the dependency structure from arrival/finish causality, and
    // collect recalibrations keyed by the same causal coordinate (how many
    // finishes preceded them): a wall-clock timestamp is meaningless to the
    // virtual-time replay, the finish count is not.
    let mut dag = FragmentDag::new();
    let mut finished: Vec<usize> = Vec::new(); // dag indices finished so far
    let mut index_of: Vec<(TaskId, usize)> = Vec::new();
    let mut recals: Vec<(usize, MachineConfig)> = Vec::new();
    for rec in records {
        match rec {
            TraceRecord::Arrival { profile, .. } => {
                if index_of.iter().any(|(id, _)| *id == profile.id) {
                    continue; // duplicate arrival: keep the first
                }
                let idx = dag.add(profile.clone(), &finished);
                index_of.push((profile.id, idx));
            }
            TraceRecord::Finish { task, .. } => {
                if let Some(&(_, idx)) = index_of.iter().find(|(id, _)| id == task) {
                    if !finished.contains(&idx) {
                        finished.push(idx);
                    }
                }
            }
            TraceRecord::Recalibrate { machine, .. } => {
                recals.push((finished.len(), machine.clone()));
            }
            _ => {}
        }
    }
    if dag.is_empty() {
        return Err(malformed(0, "trace has no arrival records"));
    }

    let mut policy: Box<dyn SchedulePolicy> = match policy_name.as_str() {
        "INTER-WITH-ADJ" => {
            Box::new(AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(machine.clone())))
        }
        "INTER-WITHOUT-ADJ" => {
            Box::new(AdaptiveScheduler::new(AdaptiveConfig::without_adjustment(machine.clone())))
        }
        "INTRA-ONLY" => Box::new(IntraOnly::new(machine.clone(), true)),
        other => return Err(SchedError::UnknownPolicy { name: other.to_string() }),
    };

    let ring = Arc::new(Mutex::new(RingSink::unbounded()));
    let sink: SharedSink = ring.clone();
    FluidSim::new(machine)
        .with_recalibrations(recals)
        .with_sink(sink)
        .run_dag(policy.as_mut(), &dag)?;
    let replayed = ring.lock().map(|r| r.records()).unwrap_or_default();
    Ok(action_stream(&replayed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::RunStart {
                driver: "fluid".into(),
                policy: "INTER-WITH-ADJ".into(),
                machine: MachineConfig::paper_default(),
            },
            TraceRecord::Arrival {
                now: 0.0,
                profile: TaskProfile::new(TaskId(0), 20.0, 60.0, IoKind::Sequential),
            },
            TraceRecord::Queues { now: 0.0, io: vec![TaskId(0)], cpu: vec![] },
            TraceRecord::Candidate {
                now: 0.0,
                io: TaskId(0),
                cpu: TaskId(1),
                x_io: 3.2,
                x_cpu: 4.8,
                effective_bw: 213.25,
                t_inter: 7.5,
                t_intra: 10.0,
                worthwhile: true,
            },
            TraceRecord::Decide {
                now: 0.125,
                running: vec![RunningSnap { task: TaskId(0), parallelism: 3.0, remaining: 8.5 }],
                actions: vec![
                    Action::Start { id: TaskId(1), parallelism: 5.0 },
                    Action::Adjust { id: TaskId(0), parallelism: 3.0 },
                ],
            },
            TraceRecord::Applied {
                now: 0.125,
                action: Action::Start { id: TaskId(1), parallelism: 5.0 },
            },
            TraceRecord::Finish { now: 1.5, task: TaskId(0) },
            TraceRecord::Rejected { now: 2.0, task: TaskId(9), reason: "io_rate = 0".into() },
            TraceRecord::Error { now: 3.0, message: "policy \"x\" diverged\n".into() },
            TraceRecord::Recalibrate {
                now: 4.0,
                observed_b: 150.5,
                modeled_b: 240.0,
                machine: MachineConfig::paper_default(),
            },
            TraceRecord::Predict {
                now: 5.0,
                task: TaskId(3),
                declared_seq_time: 10.0,
                declared_io_rate: 20.0,
                declared_memory: 524288.0,
                predicted_seq_time: 41.5,
                predicted_io_rate: 9.75,
                predicted_memory: 3276800.0,
                co_runners: 3,
                observations: 6,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let records = sample_records();
        let text: String =
            records.iter().map(|r| r.to_json() + "\n").collect::<Vec<_>>().join("");
        let back = parse_jsonl(&text).expect("parse");
        assert_eq!(records, back);
    }

    #[test]
    fn infinite_memory_round_trips() {
        let rec = TraceRecord::RunStart {
            driver: "des".into(),
            policy: "INTRA-ONLY".into(),
            machine: MachineConfig::paper_default(), // memory = +inf
        };
        let back = TraceRecord::from_json(&rec.to_json(), 1).expect("parse");
        match back {
            TraceRecord::RunStart { machine, .. } => {
                assert!(machine.memory.is_infinite() && machine.memory > 0.0)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let mut ring = RingSink::new(2);
        for rec in sample_records() {
            ring.record(&rec);
        }
        let kept = ring.records();
        assert_eq!(kept.len(), 2);
        assert_eq!(ring.dropped(), sample_records().len() as u64 - 2);
        assert_eq!(kept[1], sample_records()[sample_records().len() - 1]);
    }

    #[test]
    fn null_sink_is_silent_and_emit_is_lazy() {
        let sink: Option<SharedSink> = None;
        // The closure must not run when no sink is attached.
        emit(&sink, || unreachable!("emit must be lazy"));
        let shared_null = shared(NullSink);
        emit(&Some(shared_null), || sample_records()[0].clone());
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        for rec in sample_records() {
            sink.record(&rec);
        }
        assert!(sink.io_error().is_none());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), sample_records().len());
        assert_eq!(parse_jsonl(&text).unwrap(), sample_records());
    }

    #[test]
    fn bounded_jsonl_sink_stops_at_the_cap_and_counts_drops() {
        let n = sample_records().len() as u64;
        let mut sink = JsonlSink::bounded(Vec::<u8>::new(), 2);
        for rec in sample_records() {
            sink.record(&rec);
        }
        assert!(sink.io_error().is_none());
        assert_eq!(sink.dropped(), n - 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2, "nothing past the cap is written");
        assert_eq!(parse_jsonl(&text).unwrap(), sample_records()[..2]);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let err = parse_jsonl("{\"type\":\"finish\",\"now\":0,\"task\":1}\n{oops}\n")
            .expect_err("must fail");
        match err {
            SchedError::MalformedTrace { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn replay_applies_recalibrations_to_the_policy() {
        use crate::adaptive::{AdaptiveConfig, AdaptiveScheduler};
        let mut degraded = MachineConfig::paper_default();
        degraded.almost_seq_bw = 20.0;
        let records = vec![TraceRecord::Recalibrate {
            now: 1.0,
            observed_b: 80.0,
            modeled_b: 240.0,
            machine: degraded.clone(),
        }];
        let mut p =
            AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(MachineConfig::paper_default()));
        replay_decisions(&records, &mut p).expect("replay");
        assert_eq!(p.machine().almost_seq_bw, 20.0, "policy must adopt the corrected machine");
    }

    #[test]
    fn action_stream_and_signature_extract_decides() {
        let stream = action_stream(&sample_records());
        assert_eq!(stream.len(), 2);
        let sig = action_signature(&stream, 8);
        assert_eq!(sig, vec![(TaskId(1), true, 5), (TaskId(0), false, 3)]);
    }
}
