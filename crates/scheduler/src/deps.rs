//! Order dependencies between plan fragments of a single query.
//!
//! Within one bushy plan, a fragment may consume the materialized output of
//! other fragments (across blocking edges), so it only becomes runnable when
//! all of its producers have finished. Section 4 notes the scheduling
//! algorithm "only needs to check if a task is ready before choosing it to
//! execute" — [`crate::fluid::FluidSim`] and the execution engines do exactly
//! that, driven by this DAG type.

use crate::task::TaskProfile;

/// A set of plan fragments plus producer→consumer dependencies.
#[derive(Debug, Clone, Default)]
pub struct FragmentDag {
    tasks: Vec<TaskProfile>,
    /// `deps[i]` lists the indices that must finish before task `i` can run.
    deps: Vec<Vec<usize>>,
}

impl FragmentDag {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fragment whose producers are the (already-added) indices in
    /// `deps`. Returns the fragment's index.
    ///
    /// # Panics
    /// Panics if any dependency index is not already present — building
    /// bottom-up guarantees acyclicity by construction.
    pub fn add(&mut self, task: TaskProfile, deps: &[usize]) -> usize {
        let idx = self.tasks.len();
        for &d in deps {
            assert!(d < idx, "dependency {d} of task {idx} not yet added (forward edges are not allowed)");
        }
        self.tasks.push(task);
        self.deps.push(deps.to_vec());
        idx
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the DAG holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The fragment profiles, indexed by insertion order.
    pub fn tasks(&self) -> &[TaskProfile] {
        &self.tasks
    }

    /// Producers of fragment `i`.
    pub fn deps_of(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// Indices with no dependencies (runnable immediately).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.tasks.len()).filter(|&i| self.deps[i].is_empty()).collect()
    }

    /// Sum of sequential times — the sequential-execution lower bound `ΣT_i`.
    pub fn total_seq_time(&self) -> f64 {
        self.tasks.iter().map(|t| t.seq_time).sum()
    }

    /// Splice another DAG into this one (for scheduling the fragments of
    /// several queries together). Task ids must already be globally unique;
    /// dependencies of `other` are re-based onto this DAG's index space.
    ///
    /// # Panics
    /// Panics if a task id of `other` already exists here.
    pub fn append(&mut self, other: &FragmentDag) -> usize {
        let offset = self.tasks.len();
        for t in other.tasks() {
            assert!(
                self.tasks.iter().all(|mine| mine.id != t.id),
                "duplicate task id {} when merging fragment DAGs",
                t.id
            );
        }
        for i in 0..other.len() {
            let deps: Vec<usize> = other.deps_of(i).iter().map(|&d| d + offset).collect();
            self.tasks.push(other.tasks()[i].clone());
            self.deps.push(deps);
        }
        offset
    }

    /// Length (in sequential time) of the longest dependency chain: no
    /// schedule can finish faster than the critical path run at parallelism
    /// `maxp` per fragment.
    pub fn critical_path(&self) -> f64 {
        let mut memo = vec![f64::NAN; self.tasks.len()];
        for i in 0..self.tasks.len() {
            let longest_dep = self.deps[i]
                .iter()
                .map(|&d| memo[d])
                .fold(0.0_f64, f64::max);
            memo[i] = longest_dep + self.tasks[i].seq_time;
        }
        memo.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{IoKind, TaskId};

    fn t(id: u64, time: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), time, 20.0, IoKind::Sequential)
    }

    #[test]
    fn bottom_up_construction_tracks_roots() {
        let mut dag = FragmentDag::new();
        let a = dag.add(t(0, 1.0), &[]);
        let b = dag.add(t(1, 2.0), &[]);
        let c = dag.add(t(2, 3.0), &[a, b]);
        assert_eq!(dag.roots(), vec![a, b]);
        assert_eq!(dag.deps_of(c), &[a, b]);
        assert_eq!(dag.len(), 3);
    }

    #[test]
    #[should_panic(expected = "forward edges")]
    fn forward_dependencies_are_rejected() {
        let mut dag = FragmentDag::new();
        dag.add(t(0, 1.0), &[3]);
    }

    #[test]
    fn critical_path_follows_the_longest_chain() {
        let mut dag = FragmentDag::new();
        let a = dag.add(t(0, 5.0), &[]);
        let b = dag.add(t(1, 1.0), &[]);
        let c = dag.add(t(2, 2.0), &[a]);
        let _d = dag.add(t(3, 1.0), &[b, c]);
        // a → c → d: 5 + 2 + 1 = 8.
        assert_eq!(dag.critical_path(), 8.0);
        assert_eq!(dag.total_seq_time(), 9.0);
    }

    #[test]
    fn append_rebases_dependencies() {
        let mut a = FragmentDag::new();
        let a0 = a.add(t(0, 1.0), &[]);
        let _a1 = a.add(t(1, 2.0), &[a0]);
        let mut b = FragmentDag::new();
        let b0 = b.add(t(10, 3.0), &[]);
        let _b1 = b.add(t(11, 4.0), &[b0]);
        let off = a.append(&b);
        assert_eq!(off, 2);
        assert_eq!(a.len(), 4);
        assert_eq!(a.deps_of(3), &[2]);
        assert_eq!(a.roots(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate task id")]
    fn append_rejects_id_collisions() {
        let mut a = FragmentDag::new();
        a.add(t(0, 1.0), &[]);
        let mut b = FragmentDag::new();
        b.add(t(0, 1.0), &[]);
        a.append(&b);
    }

    #[test]
    fn empty_dag_reports_sensibly() {
        let dag = FragmentDag::new();
        assert!(dag.is_empty());
        assert_eq!(dag.critical_path(), 0.0);
        assert!(dag.roots().is_empty());
    }
}
