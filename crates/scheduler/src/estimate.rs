//! Elapsed-time estimates `T_intra` and `T_inter` used by the scheduler to
//! decide whether inter-operation parallelism is worthwhile for a pair.
//!
//! With only intra-operation parallelism a task finishes in
//! `T_intra(f_i) = T_i / maxp(f_i)`. A pair run at its balance point
//! `(x_i, x_j)` finishes in
//!
//! ```text
//! T_inter(f_i, f_j) = min(T_i/x_i, T_j/x_j) + T_ij / maxp_ij
//! ```
//!
//! where `T_ij` is the sequential-time remainder of whichever task survives
//! the other and `maxp_ij` its maximum parallelism. Because of the disk-seek
//! penalty between two sequential scans, `T_inter` can *lose* to running the
//! tasks back-to-back; the scheduler performs exactly this comparison
//! (algorithm step 4) before committing to a pairing.

use crate::balance::BalancePoint;
use crate::machine::MachineConfig;
use crate::task::{TaskId, TaskProfile};

/// `T_intra(f)`: elapsed time using only intra-operation parallelism.
pub fn t_intra(f: &TaskProfile, m: &MachineConfig) -> f64 {
    f.seq_time / f.maxp(m)
}

/// Breakdown of a `T_inter` estimate for one IO/CPU pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterEstimate {
    /// Total elapsed time for both tasks.
    pub elapsed: f64,
    /// Time at which the first of the pair completes.
    pub first_finish: f64,
    /// The task still running at `first_finish`.
    pub survivor: TaskId,
    /// Sequential-time remainder `T_ij` of the survivor at `first_finish`.
    pub survivor_remaining: f64,
}

/// `T_inter(f_io, f_cpu)` for a pair running at balance point `bp`,
/// finishing the survivor at its own `maxp` (i.e. assuming the dynamic
/// parallelism adjustment of Section 2.4 kicks in once the partner is done).
pub fn t_inter(
    f_io: &TaskProfile,
    f_cpu: &TaskProfile,
    bp: &BalancePoint,
    m: &MachineConfig,
) -> InterEstimate {
    let t_io = f_io.seq_time / bp.x_io;
    let t_cpu = f_cpu.seq_time / bp.x_cpu;
    let first_finish = t_io.min(t_cpu);
    let (survivor, survivor_remaining, maxp) = if t_io > t_cpu {
        // f_cpu finishes first; f_io has run for t_cpu at parallelism x_io.
        (f_io.id, f_io.seq_time - t_cpu * bp.x_io, f_io.maxp(m))
    } else {
        (f_cpu.id, f_cpu.seq_time - t_io * bp.x_cpu, f_cpu.maxp(m))
    };
    let survivor_remaining = survivor_remaining.max(0.0);
    InterEstimate {
        elapsed: first_finish + survivor_remaining / maxp,
        first_finish,
        survivor,
        survivor_remaining,
    }
}

/// First-order service-time dilation seen by one run when `active_runs`
/// independent runs share the disk array. Each run's per-request slice of a
/// shared spindle stretches roughly in proportion to the number of runs
/// competing for it, so a patrol that measures per-run busy-seconds in a
/// multi-run service regime must divide the observed slowdown by this
/// factor before treating the remainder as machine-model drift — otherwise
/// cross-run contention is misread as a slow disk (DESIGN.md §15.4). The
/// predictor learns a sharper, per-plan-shape version of the same term by
/// regression ([`crate::predict`]); this closed form is the prior used
/// where no model exists.
pub fn interference_factor(active_runs: u32) -> f64 {
    active_runs.max(1) as f64
}

/// Step-4 test of the scheduling algorithm: is running the pair at its
/// balance point faster than running the two tasks back-to-back with
/// intra-operation parallelism only?
pub fn inter_is_worthwhile(
    f_io: &TaskProfile,
    f_cpu: &TaskProfile,
    bp: &BalancePoint,
    m: &MachineConfig,
) -> bool {
    t_inter(f_io, f_cpu, bp, m).elapsed < t_intra(f_io, m) + t_intra(f_cpu, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::balance_point;
    use crate::task::{IoKind, TaskId};

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    fn seq(id: u64, t: f64, rate: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), t, rate, IoKind::Sequential)
    }

    #[test]
    fn t_intra_divides_by_maxp() {
        // CPU-bound: 8-way speedup.
        assert!((t_intra(&seq(0, 40.0, 10.0), &m()) - 5.0).abs() < 1e-12);
        // IO-bound at C = 60: maxp = 4 ⇒ 40/4 = 10.
        assert!((t_intra(&seq(0, 40.0, 60.0), &m()) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn t_inter_accounts_for_the_survivor_tail() {
        let io = seq(0, 30.0, 60.0);
        let cpu = seq(1, 30.0, 10.0);
        let bp = balance_point(&io, &cpu, &m()).unwrap();
        let est = t_inter(&io, &cpu, &bp, &m());
        // Whoever survives must have nonnegative remaining work and the total
        // elapsed must exceed the first finish.
        assert!(est.survivor_remaining >= 0.0);
        assert!(est.elapsed >= est.first_finish);
        // Sanity: the pair cannot beat the critical path of either task run
        // with every processor it can use.
        assert!(est.elapsed >= t_intra(&io, &m()).max(t_intra(&cpu, &m())) - 1e-9);
    }

    #[test]
    fn survivor_identity_matches_the_slower_side() {
        // Long IO task vs short CPU task: the IO task survives.
        let io = seq(0, 100.0, 60.0);
        let cpu = seq(1, 5.0, 10.0);
        let bp = balance_point(&io, &cpu, &m()).unwrap();
        let est = t_inter(&io, &cpu, &bp, &m());
        assert_eq!(est.survivor, TaskId(0));
        // And the reverse.
        let io2 = seq(0, 5.0, 60.0);
        let cpu2 = seq(1, 100.0, 10.0);
        let bp2 = balance_point(&io2, &cpu2, &m()).unwrap();
        assert_eq!(t_inter(&io2, &cpu2, &bp2, &m()).survivor, TaskId(1));
    }

    #[test]
    fn remainder_formula_matches_paper() {
        // Constructed so T_cpu/x_cpu < T_io/x_io: T_ij = T_i − T_j·x_i/x_j.
        let io = seq(0, 50.0, 60.0);
        let cpu = seq(1, 10.0, 10.0);
        let bp = balance_point(&io, &cpu, &m()).unwrap();
        let est = t_inter(&io, &cpu, &bp, &m());
        let expected = io.seq_time - cpu.seq_time * bp.x_io / bp.x_cpu;
        assert!((est.survivor_remaining - expected).abs() < 1e-9);
    }

    #[test]
    fn mixed_pair_is_worthwhile_in_the_paper_regime() {
        // An extreme IO-bound + extreme CPU-bound pair is the paper's
        // showcase for inter-operation parallelism.
        let io = seq(0, 30.0, 65.0);
        let cpu = seq(1, 30.0, 8.0);
        let bp = balance_point(&io, &cpu, &m()).unwrap();
        assert!(inter_is_worthwhile(&io, &cpu, &bp, &m()));
    }
}
