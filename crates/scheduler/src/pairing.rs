//! Heuristics for choosing which IO-bound and CPU-bound task to pair next.
//!
//! The paper's default is "obvious": pair the *most* IO-bound task (greatest
//! I/O rate) with the *most* CPU-bound task (smallest I/O rate), so that the
//! leftover tasks correspond to lines closer to the diagonal of the
//! parallelism/bandwidth rectangle and later pairings stay near the maximum
//! utilization corner. In a multi-user setting the paper suggests
//! shortest-job-first instead, to favour response time over total elapsed
//! time. FIFO is included as the naive baseline for the ablation bench.

use crate::task::TaskProfile;

/// Strategy for picking the next task out of the IO-bound or CPU-bound set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pairing {
    /// Most IO-bound with most CPU-bound (the paper's choice).
    #[default]
    MostExtreme,
    /// Oldest arrival first.
    Fifo,
    /// Shortest sequential time first (the paper's multi-user suggestion).
    ShortestJobFirst,
}

impl Pairing {
    /// Index of the task to take from `set`, which must be non-empty and is
    /// kept in arrival order by the caller. `want_io` distinguishes the
    /// IO-bound set (pick the *largest* rate) from the CPU-bound set (pick
    /// the *smallest* rate) under [`Pairing::MostExtreme`].
    pub fn pick(&self, set: &[TaskProfile], want_io: bool) -> usize {
        assert!(!set.is_empty(), "cannot pick from an empty task set");
        match self {
            Pairing::Fifo => 0,
            Pairing::ShortestJobFirst => {
                let mut best = 0;
                for (i, t) in set.iter().enumerate() {
                    if t.seq_time < set[best].seq_time {
                        best = i;
                    }
                }
                best
            }
            Pairing::MostExtreme => {
                let mut best = 0;
                for (i, t) in set.iter().enumerate() {
                    let better = if want_io {
                        t.io_rate > set[best].io_rate
                    } else {
                        t.io_rate < set[best].io_rate
                    };
                    if better {
                        best = i;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{IoKind, TaskId};

    fn t(id: u64, seq_time: f64, rate: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), seq_time, rate, IoKind::Sequential)
    }

    #[test]
    fn most_extreme_picks_highest_rate_for_io_side() {
        let set = vec![t(0, 5.0, 40.0), t(1, 9.0, 65.0), t(2, 2.0, 50.0)];
        assert_eq!(Pairing::MostExtreme.pick(&set, true), 1);
    }

    #[test]
    fn most_extreme_picks_lowest_rate_for_cpu_side() {
        let set = vec![t(0, 5.0, 25.0), t(1, 9.0, 6.0), t(2, 2.0, 18.0)];
        assert_eq!(Pairing::MostExtreme.pick(&set, false), 1);
    }

    #[test]
    fn fifo_picks_the_head() {
        let set = vec![t(0, 5.0, 25.0), t(1, 9.0, 6.0)];
        assert_eq!(Pairing::Fifo.pick(&set, true), 0);
        assert_eq!(Pairing::Fifo.pick(&set, false), 0);
    }

    #[test]
    fn sjf_picks_the_shortest() {
        let set = vec![t(0, 5.0, 25.0), t(1, 1.5, 6.0), t(2, 9.0, 18.0)];
        assert_eq!(Pairing::ShortestJobFirst.pick(&set, true), 1);
    }

    #[test]
    #[should_panic(expected = "empty task set")]
    fn picking_from_empty_set_panics() {
        Pairing::MostExtreme.pick(&[], true);
    }
}
