//! The driver-facing scheduling policy abstraction.
//!
//! A *driver* — the fluid estimator ([`crate::fluid`]), the discrete-event
//! simulator (`xprs-sim`) or the threaded executor (`xprs-executor`) — owns
//! the clock and the running tasks. It forwards arrivals and completions to
//! the policy and, after each batch of simultaneous events, asks the policy
//! to [`decide`](SchedulePolicy::decide) what to start or adjust.
//!
//! The contract:
//!
//! * the driver never starts or resizes a task on its own;
//! * `decide` may be called at any time and must be idempotent — returning
//!   no actions when nothing should change;
//! * `remaining_seq_time` in [`RunningTask`] is the driver's best estimate
//!   of the sequential-time-equivalent work the task still has to do, which
//!   is what the policy feeds back into the balance equations when it
//!   re-pairs a running task.

use crate::machine::MachineConfig;
use crate::task::{TaskId, TaskProfile};

/// Snapshot of one currently-running task, supplied by the driver.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningTask {
    /// The task's original profile.
    pub profile: TaskProfile,
    /// Degree of parallelism it currently runs with.
    pub parallelism: f64,
    /// Sequential-time-equivalent work left (`T_i` minus progress).
    pub remaining_seq_time: f64,
}

impl RunningTask {
    /// The profile re-expressed with the remaining work as its length, which
    /// is what balance/estimate computations over a running task need.
    pub fn remaining_profile(&self) -> TaskProfile {
        TaskProfile {
            seq_time: self.remaining_seq_time.max(f64::MIN_POSITIVE),
            ..self.profile.clone()
        }
    }
}

/// An instruction from the policy to the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Begin executing a not-yet-started task with the given parallelism.
    Start {
        /// Task to start.
        id: TaskId,
        /// Degree of intra-operation parallelism to start with.
        parallelism: f64,
    },
    /// Change the parallelism of a running task (the Section 2.4 protocols).
    Adjust {
        /// Running task to resize.
        id: TaskId,
        /// New degree of parallelism.
        parallelism: f64,
    },
}

impl Action {
    /// The task this action applies to.
    pub fn task(&self) -> TaskId {
        match *self {
            Action::Start { id, .. } | Action::Adjust { id, .. } => id,
        }
    }

    /// The parallelism this action requests.
    pub fn parallelism(&self) -> f64 {
        match *self {
            Action::Start { parallelism, .. } | Action::Adjust { parallelism, .. } => parallelism,
        }
    }
}

/// A processor-scheduling policy: decides which runnable plan fragments to
/// execute, with what degree of parallelism, and when to adjust them.
pub trait SchedulePolicy {
    /// Human-readable policy name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The machine this policy plans for.
    fn machine(&self) -> &MachineConfig;

    /// A new runnable task entered the system at time `now`.
    fn on_arrival(&mut self, now: f64, task: TaskProfile);

    /// Task `id` finished at time `now`.
    fn on_finish(&mut self, now: f64, id: TaskId);

    /// After all events at `now` are delivered, return the starts/adjusts to
    /// apply. `running` describes every task currently executing (with the
    /// parallelism the driver last applied, and remaining work).
    fn decide(&mut self, now: f64, running: &[RunningTask]) -> Vec<Action>;

    /// The driver measured the machine and found it differs from the model:
    /// adopt `machine` as the planning basis from `now` on. Drivers call
    /// this when observed bandwidth drifts outside the recalibration band
    /// (e.g. a degraded disk); the default ignores it, so policies that
    /// plan against nominal rates only are unaffected.
    fn recalibrate(&mut self, now: f64, machine: MachineConfig) {
        let _ = (now, machine);
    }
}

/// Clamp a fractional allocation to whole workers in `1..=limit`.
///
/// Policies that feed real execution engines (the DES and the threaded
/// executor) must hand out whole backends; the analytic fluid estimator
/// keeps the fractional optimum. A `limit` of zero is treated as one — a
/// task that runs at all runs on at least one worker (`clamp(1.0, 0.0)`
/// would panic).
pub fn round_parallelism(x: f64, limit: u32) -> f64 {
    x.round().clamp(1.0, limit.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::IoKind;

    #[test]
    fn remaining_profile_substitutes_remaining_work() {
        let rt = RunningTask {
            profile: TaskProfile::new(TaskId(7), 20.0, 50.0, IoKind::Sequential),
            parallelism: 3.0,
            remaining_seq_time: 12.5,
        };
        let p = rt.remaining_profile();
        assert_eq!(p.seq_time, 12.5);
        assert_eq!(p.io_rate, 50.0);
        assert_eq!(p.id, TaskId(7));
    }

    #[test]
    fn remaining_profile_never_panics_on_exhausted_tasks() {
        let rt = RunningTask {
            profile: TaskProfile::new(TaskId(7), 20.0, 50.0, IoKind::Sequential),
            parallelism: 3.0,
            remaining_seq_time: 0.0,
        };
        assert!(rt.remaining_profile().seq_time > 0.0);
    }

    #[test]
    fn rounding_respects_bounds() {
        assert_eq!(round_parallelism(3.4, 8), 3.0);
        assert_eq!(round_parallelism(3.6, 8), 4.0);
        assert_eq!(round_parallelism(0.2, 8), 1.0);
        assert_eq!(round_parallelism(11.0, 8), 8.0);
    }

    #[test]
    fn rounding_with_zero_limit_does_not_panic() {
        // A degenerate limit (uniprocessor minus the reserved worker) must
        // yield one worker, not an inverted-clamp panic.
        assert_eq!(round_parallelism(3.4, 0), 1.0);
        assert_eq!(round_parallelism(0.0, 1), 1.0);
    }

    #[test]
    fn action_accessors() {
        let a = Action::Start { id: TaskId(1), parallelism: 2.0 };
        assert_eq!(a.task(), TaskId(1));
        assert_eq!(a.parallelism(), 2.0);
        let b = Action::Adjust { id: TaskId(2), parallelism: 5.0 };
        assert_eq!(b.task(), TaskId(2));
        assert_eq!(b.parallelism(), 5.0);
    }
}
