//! `INTRA-ONLY`: the baseline scheduler with no inter-operation parallelism.
//!
//! Tasks execute strictly one at a time, each with the maximum useful degree
//! of intra-operation parallelism `maxp(f_i)` — every processor for a
//! CPU-bound task, `B / C_i` processors for an IO-bound one. This is the
//! strategy of the earlier XPRS work (\[HONG91\]) and the baseline the paper's
//! Figure 7 compares against.

use std::collections::VecDeque;

use crate::machine::MachineConfig;
use crate::policy::{Action, RunningTask, SchedulePolicy};
use crate::task::{TaskId, TaskProfile};

/// One-task-at-a-time scheduler using intra-operation parallelism only.
#[derive(Debug, Clone)]
pub struct IntraOnly {
    machine: MachineConfig,
    /// Hand out whole workers (execution engines) vs. fractional (analysis).
    integral: bool,
    queue: VecDeque<TaskProfile>,
}

impl IntraOnly {
    /// New INTRA-ONLY policy for machine `m`. `integral` controls whether
    /// parallelism degrees are floored to whole workers.
    pub fn new(m: MachineConfig, integral: bool) -> Self {
        IntraOnly { machine: m, integral, queue: VecDeque::new() }
    }

    /// Number of tasks waiting to run.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn effective_maxp(&self, t: &TaskProfile) -> f64 {
        let maxp = t.maxp(&self.machine);
        if self.integral {
            // Floor: the paper reports severe penalties for *excessive*
            // parallelism, so never round a bandwidth cap upward.
            maxp.floor().max(1.0)
        } else {
            maxp
        }
    }
}

impl SchedulePolicy for IntraOnly {
    fn name(&self) -> &'static str {
        "INTRA-ONLY"
    }

    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn on_arrival(&mut self, _now: f64, task: TaskProfile) {
        self.queue.push_back(task);
    }

    fn on_finish(&mut self, _now: f64, _id: TaskId) {}

    fn recalibrate(&mut self, _now: f64, machine: MachineConfig) {
        // Future effective_maxp computations divide by the measured
        // bandwidth: a degraded array caps IO-bound tasks lower.
        self.machine = machine;
    }

    fn decide(&mut self, _now: f64, running: &[RunningTask]) -> Vec<Action> {
        if !running.is_empty() {
            return Vec::new();
        }
        match self.queue.pop_front() {
            Some(task) => {
                let parallelism = self.effective_maxp(&task);
                vec![Action::Start { id: task.id, parallelism }]
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::IoKind;

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    fn t(id: u64, rate: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), 10.0, rate, IoKind::Sequential)
    }

    fn running(t: &TaskProfile, x: f64) -> RunningTask {
        RunningTask { profile: t.clone(), parallelism: x, remaining_seq_time: t.seq_time }
    }

    #[test]
    fn runs_one_task_at_a_time() {
        let mut p = IntraOnly::new(m(), true);
        p.on_arrival(0.0, t(0, 10.0));
        p.on_arrival(0.0, t(1, 50.0));
        let acts = p.decide(0.0, &[]);
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0], Action::Start { id: TaskId(0), parallelism: 8.0 });
        // While task 0 runs, nothing new starts.
        assert!(p.decide(1.0, &[running(&t(0, 10.0), 8.0)]).is_empty());
        // After it finishes, the IO-bound task starts at floor(240/50) = 4.
        p.on_finish(2.0, TaskId(0));
        let acts = p.decide(2.0, &[]);
        assert_eq!(acts, vec![Action::Start { id: TaskId(1), parallelism: 4.0 }]);
    }

    #[test]
    fn fractional_mode_keeps_exact_maxp() {
        let mut p = IntraOnly::new(m(), false);
        p.on_arrival(0.0, t(0, 70.0));
        let acts = p.decide(0.0, &[]);
        assert!((acts[0].parallelism() - 240.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn empty_queue_yields_no_actions() {
        let mut p = IntraOnly::new(m(), true);
        assert!(p.decide(0.0, &[]).is_empty());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut p = IntraOnly::new(m(), true);
        for id in 0..5 {
            p.on_arrival(0.0, t(id, 10.0));
        }
        for id in 0..5 {
            let acts = p.decide(id as f64, &[]);
            assert_eq!(acts[0].task(), TaskId(id));
            p.on_finish(id as f64 + 0.5, TaskId(id));
        }
    }
}
