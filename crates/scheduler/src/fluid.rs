//! Fluid (rate-based) replay of a scheduling policy, and the paper's
//! `T_n(S)` parallel-execution-time estimator built on top of it.
//!
//! The fluid model advances virtual time between scheduling events. A task
//! running with parallelism `x_i` progresses at `x_i` sequential-seconds per
//! second, throttled when the running mix over-commits either resource:
//!
//! * if the aggregate I/O demand `Σ C_i·x_i` exceeds the interference-
//!   corrected effective bandwidth, every task is scaled by the delivered
//!   fraction (a pipelined fragment advances exactly as fast as its pages
//!   arrive);
//! * if the policy over-allocates processors (`Σ x_i > N`), progress is
//!   scaled by `N / Σ x_i`.
//!
//! A policy that keeps the system at the IO-CPU balance point never incurs
//! either penalty — that is the point of the paper. Replaying the
//! `INTER-WITH-ADJ` policy with fractional allocations therefore computes
//! exactly the recursive `T_n(S)` formula of Section 4, including the
//! order-dependency extension for fragments of a bushy plan, which is what
//! the optimizer's `parcost(p, n)` evaluates.
//!
//! Control-path anomalies — a policy that never reaches a fixpoint, an
//! action naming an unknown or non-running task, a wedged schedule — are
//! returned as [`SchedError`]s, not panics, and every decision is optionally
//! recorded into a [`crate::trace::TraceSink`] attached with
//! [`FluidSim::with_sink`].

use crate::balance::effective_bandwidth;
use crate::deps::FragmentDag;
use crate::error::SchedError;
use crate::machine::MachineConfig;
use crate::policy::{Action, RunningTask, SchedulePolicy};
use crate::task::{TaskId, TaskProfile};
use crate::trace::{emit, RunningSnap, SharedSink, TraceRecord};

/// One interval of the schedule during which the running set was constant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSegment {
    /// Segment start, seconds of virtual time.
    pub start: f64,
    /// Segment end.
    pub end: f64,
    /// `(task, parallelism, progress rate)` for every running task.
    pub running: Vec<(TaskId, f64, f64)>,
}

/// The full schedule trace: contiguous segments from 0 to completion.
#[derive(Debug, Clone, Default)]
pub struct ScheduleTrace {
    /// Segments in time order.
    pub segments: Vec<TraceSegment>,
}

impl ScheduleTrace {
    /// Time-averaged processor utilization (allocated workers / N).
    pub fn cpu_utilization(&self, m: &MachineConfig) -> f64 {
        let total: f64 = self.segments.iter().map(|s| s.end - s.start).sum();
        if total == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .segments
            .iter()
            .map(|s| {
                let x: f64 = s.running.iter().map(|(_, x, _)| x).sum();
                (s.end - s.start) * x.min(m.n_procs as f64)
            })
            .sum();
        busy / (total * m.n_procs as f64)
    }

    /// Time-averaged fraction of the reference bandwidth `B` in use.
    pub fn io_utilization(&self, m: &MachineConfig, tasks: &[TaskProfile]) -> f64 {
        let rate_of = |id: TaskId| tasks.iter().find(|t| t.id == id).map(|t| t.io_rate).unwrap_or(0.0);
        let total: f64 = self.segments.iter().map(|s| s.end - s.start).sum();
        if total == 0.0 {
            return 0.0;
        }
        let b = m.total_bandwidth();
        let busy: f64 = self
            .segments
            .iter()
            .map(|s| {
                // Delivered I/O = progress rate × C_i (progress already
                // includes any disk-saturation throttling).
                let io: f64 = s.running.iter().map(|(id, _, rate)| rate * rate_of(*id)).sum();
                (s.end - s.start) * io.min(b)
            })
            .sum();
        busy / (total * b)
    }
}

/// Outcome of one fluid replay.
#[derive(Debug, Clone)]
pub struct FluidResult {
    /// Completion time of the last task.
    pub elapsed: f64,
    /// Per-task `(start, finish)` times, in input order.
    pub task_times: Vec<(TaskId, f64, f64)>,
    /// The schedule trace.
    pub trace: ScheduleTrace,
}

impl FluidResult {
    /// Mean response time (finish − release) over all tasks; releases are
    /// the arrival (or readiness) times passed to the simulator.
    pub fn mean_response_time(&self, releases: &[(TaskId, f64)]) -> f64 {
        if self.task_times.is_empty() {
            return 0.0;
        }
        let rel = |id: TaskId| releases.iter().find(|(t, _)| *t == id).map(|(_, r)| *r).unwrap_or(0.0);
        let sum: f64 = self.task_times.iter().map(|(id, _, fin)| fin - rel(*id)).sum();
        sum / self.task_times.len() as f64
    }
}

struct RunState {
    profile: TaskProfile,
    parallelism: f64,
    remaining: f64,
    started_at: f64,
}

/// Rounds of `decide()` the driver allows at one instant before declaring
/// [`SchedError::FixpointDiverged`]. Shared by all three drivers.
pub const FIXPOINT_ROUNDS: u32 = 32;

/// Fluid-model driver: replays any [`SchedulePolicy`] over a task set (with
/// optional arrival times and dependencies) in virtual time.
pub struct FluidSim {
    machine: MachineConfig,
    sink: Option<SharedSink>,
    /// Scheduled machine corrections as `(finish_count, machine)`: once that
    /// many tasks have finished, the sim and the policy re-base on the
    /// corrected machine. This is how a captured degradation-aware run (see
    /// [`crate::trace::replay_through_fluid`]) replays in virtual time — the
    /// recalibration fires at the same *causal* position it was recorded at,
    /// not at a meaningless wall-clock timestamp.
    recalibrations: Vec<(usize, MachineConfig)>,
}

impl FluidSim {
    /// Driver for machine `m` (must match the policy's machine).
    pub fn new(machine: MachineConfig) -> Self {
        FluidSim { machine, sink: None, recalibrations: Vec::new() }
    }

    /// Record every arrival, decision and applied action into `sink`.
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Schedule machine corrections to apply after the given numbers of task
    /// completions (see the field docs on `recalibrations`).
    pub fn with_recalibrations(mut self, mut recals: Vec<(usize, MachineConfig)>) -> Self {
        recals.sort_by_key(|(after, _)| *after);
        self.recalibrations = recals;
        self
    }

    /// Replay `policy` over tasks that are all runnable at time zero.
    ///
    /// # Errors
    /// Any control-path [`SchedError`] the policy provokes; see
    /// [`FluidSim::run_inner` invariants](SchedError) for the taxonomy.
    pub fn run<P: SchedulePolicy + ?Sized>(
        &self,
        policy: &mut P,
        tasks: &[TaskProfile],
    ) -> Result<FluidResult, SchedError> {
        let arrivals: Vec<(TaskProfile, f64)> = tasks.iter().map(|t| (t.clone(), 0.0)).collect();
        self.run_with_arrivals(policy, &arrivals)
    }

    /// Replay `policy` over a stream of `(task, arrival time)` pairs.
    ///
    /// # Errors
    /// Any control-path [`SchedError`] the policy provokes.
    pub fn run_with_arrivals<P: SchedulePolicy + ?Sized>(
        &self,
        policy: &mut P,
        arrivals: &[(TaskProfile, f64)],
    ) -> Result<FluidResult, SchedError> {
        let dag = FragmentDag::new();
        self.run_inner(policy, arrivals, &dag, &[])
    }

    /// Replay `policy` over a fragment DAG: a fragment is released when all
    /// of its producers have finished (Section 4's ready check).
    ///
    /// # Errors
    /// Any control-path [`SchedError`] the policy provokes.
    pub fn run_dag<P: SchedulePolicy + ?Sized>(
        &self,
        policy: &mut P,
        dag: &FragmentDag,
    ) -> Result<FluidResult, SchedError> {
        let arrivals: Vec<(TaskProfile, f64)> = dag
            .roots()
            .into_iter()
            .map(|i| (dag.tasks()[i].clone(), 0.0))
            .collect();
        let blocked: Vec<usize> = (0..dag.len()).filter(|&i| !dag.deps_of(i).is_empty()).collect();
        self.run_inner(policy, &arrivals, dag, &blocked)
    }

    /// Emit an [`TraceRecord::Error`] and return the error — every `Err`
    /// path funnels through here so a captured trace always ends with the
    /// failure it led up to.
    fn fail(&self, now: f64, err: SchedError) -> SchedError {
        emit(&self.sink, || TraceRecord::Error { now, message: err.to_string() });
        err
    }

    fn run_inner<P: SchedulePolicy + ?Sized>(
        &self,
        policy: &mut P,
        arrivals: &[(TaskProfile, f64)],
        dag: &FragmentDag,
        blocked: &[usize],
    ) -> Result<FluidResult, SchedError> {
        // The machine may be re-based mid-run by a scheduled recalibration.
        let mut machine = self.machine.clone();
        let mut recal_idx = 0usize;
        let eps = 1e-9;

        emit(&self.sink, || TraceRecord::RunStart {
            driver: "fluid".to_string(),
            policy: policy.name().to_string(),
            machine: machine.clone(),
        });

        let mut pending: Vec<(TaskProfile, f64)> = arrivals.to_vec();
        pending.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut pending_idx = 0;

        let mut blocked: Vec<usize> = blocked.to_vec();
        let mut finished_ids: Vec<TaskId> = Vec::new();

        let mut known: Vec<TaskProfile> = pending.iter().map(|(t, _)| t.clone()).collect();
        known.extend(blocked.iter().map(|&i| dag.tasks()[i].clone()));

        let total_tasks = pending.len() + blocked.len();
        let mut running: Vec<RunState> = Vec::new();
        let mut task_times: Vec<(TaskId, f64, f64)> = Vec::new();
        let mut trace = ScheduleTrace::default();
        let mut now = 0.0_f64;

        // Generous bound: each task contributes at most a handful of events.
        let max_steps = 64 * (total_tasks + 1);
        for _step in 0..max_steps {
            // Apply machine corrections whose causal position (number of
            // completed tasks) has been reached, before the next decide.
            while recal_idx < self.recalibrations.len()
                && self.recalibrations[recal_idx].0 <= task_times.len()
            {
                let modeled = machine.total_bandwidth();
                machine = self.recalibrations[recal_idx].1.clone();
                recal_idx += 1;
                emit(&self.sink, || TraceRecord::Recalibrate {
                    now,
                    observed_b: machine.total_bandwidth(),
                    modeled_b: modeled,
                    machine: machine.clone(),
                });
                policy.recalibrate(now, machine.clone());
            }

            // Deliver arrivals due now.
            while pending_idx < pending.len() && pending[pending_idx].1 <= now + eps {
                let (t, at) = pending[pending_idx].clone();
                let when = at.max(now);
                emit(&self.sink, || TraceRecord::Arrival { now: when, profile: t.clone() });
                policy.on_arrival(when, t);
                pending_idx += 1;
            }

            // Let the policy reach a fixpoint of starts/adjusts.
            let mut settled = false;
            for _round in 0..FIXPOINT_ROUNDS {
                let snapshot: Vec<RunningTask> = running
                    .iter()
                    .map(|r| RunningTask {
                        profile: r.profile.clone(),
                        parallelism: r.parallelism,
                        remaining_seq_time: r.remaining,
                    })
                    .collect();
                let actions = policy.decide(now, &snapshot);
                if actions.is_empty() {
                    settled = true;
                    break;
                }
                emit(&self.sink, || TraceRecord::Decide {
                    now,
                    running: snapshot.iter().map(RunningSnap::of).collect(),
                    actions: actions.clone(),
                });
                for a in actions {
                    let (id, parallelism) = (a.task(), a.parallelism());
                    if !(parallelism > 0.0 && parallelism.is_finite()) {
                        return Err(self
                            .fail(now, SchedError::InvalidParallelism { task: id, parallelism }));
                    }
                    match a {
                        Action::Start { .. } => {
                            let profile = match known.iter().find(|t| t.id == id) {
                                Some(p) => p.clone(),
                                None => {
                                    return Err(
                                        self.fail(now, SchedError::UnknownTask { task: id })
                                    )
                                }
                            };
                            if running.iter().any(|r| r.profile.id == id) {
                                return Err(
                                    self.fail(now, SchedError::AlreadyRunning { task: id })
                                );
                            }
                            let remaining = profile.seq_time;
                            running.push(RunState { profile, parallelism, remaining, started_at: now });
                        }
                        Action::Adjust { .. } => {
                            let r = match running.iter_mut().find(|r| r.profile.id == id) {
                                Some(r) => r,
                                None => {
                                    return Err(self.fail(now, SchedError::NotRunning { task: id }))
                                }
                            };
                            r.parallelism = parallelism;
                        }
                    }
                    emit(&self.sink, || TraceRecord::Applied { now, action: a });
                }
            }
            if !settled {
                // One more non-empty round would make FIXPOINT_ROUNDS + 1
                // consecutive action batches at a single instant: the
                // policy's start/adjust stream is not converging.
                let snapshot: Vec<RunningTask> = running
                    .iter()
                    .map(|r| RunningTask {
                        profile: r.profile.clone(),
                        parallelism: r.parallelism,
                        remaining_seq_time: r.remaining,
                    })
                    .collect();
                if !policy.decide(now, &snapshot).is_empty() {
                    return Err(self.fail(
                        now,
                        SchedError::FixpointDiverged {
                            policy: policy.name(),
                            rounds: FIXPOINT_ROUNDS,
                        },
                    ));
                }
            }

            let all_arrived = pending_idx == pending.len() && blocked.is_empty();
            if running.is_empty() {
                if all_arrived {
                    break; // done
                }
                // Idle until the next timed arrival. (Blocked fragments only
                // unblock on completions, so if nothing runs and nothing can
                // arrive the policy has wedged.)
                if pending_idx >= pending.len() {
                    return Err(self.fail(
                        now,
                        SchedError::Wedged {
                            policy: policy.name(),
                            unfinished: total_tasks - task_times.len(),
                        },
                    ));
                }
                now = pending[pending_idx].1;
                continue;
            }

            // Progress rates under resource throttling.
            let n = machine.n_procs as f64;
            let total_x: f64 = running.iter().map(|r| r.parallelism).sum();
            let cpu_scale = (n / total_x).min(1.0);
            let streams: Vec<(f64, crate::task::IoKind)> = running
                .iter()
                .map(|r| (r.profile.io_rate * r.parallelism * cpu_scale, r.profile.io_kind))
                .collect();
            let bw = effective_bandwidth(&machine, &streams);
            let demand: f64 = streams.iter().map(|(d, _)| d).sum();
            let io_scale = if demand > bw { bw / demand } else { 1.0 };
            let scale = cpu_scale * io_scale;
            let rates: Vec<f64> = running.iter().map(|r| r.parallelism * scale).collect();

            // Next event: earliest completion or next arrival.
            let mut dt = f64::INFINITY;
            for (r, &rate) in running.iter().zip(&rates) {
                debug_assert!(rate > 0.0);
                dt = dt.min(r.remaining / rate);
            }
            if pending_idx < pending.len() {
                dt = dt.min(pending[pending_idx].1 - now);
            }
            debug_assert!(dt.is_finite() && dt >= 0.0);

            trace.segments.push(TraceSegment {
                start: now,
                end: now + dt,
                running: running
                    .iter()
                    .zip(&rates)
                    .map(|(r, &rate)| (r.profile.id, r.parallelism, rate))
                    .collect(),
            });

            now += dt;
            for (r, &rate) in running.iter_mut().zip(&rates) {
                r.remaining -= rate * dt;
            }

            // Retire finished tasks and release fragments they unblock.
            let mut i = 0;
            while i < running.len() {
                if running[i].remaining <= eps * running[i].profile.seq_time.max(1.0) {
                    let r = running.remove(i);
                    task_times.push((r.profile.id, r.started_at, now));
                    finished_ids.push(r.profile.id);
                    emit(&self.sink, || TraceRecord::Finish { now, task: r.profile.id });
                    policy.on_finish(now, r.profile.id);
                } else {
                    i += 1;
                }
            }
            let mut b = 0;
            while b < blocked.len() {
                let idx = blocked[b];
                let ready = dag
                    .deps_of(idx)
                    .iter()
                    .all(|&d| finished_ids.contains(&dag.tasks()[d].id));
                if ready {
                    blocked.remove(b);
                    let t = dag.tasks()[idx].clone();
                    emit(&self.sink, || TraceRecord::Arrival { now, profile: t.clone() });
                    policy.on_arrival(now, t);
                } else {
                    b += 1;
                }
            }
        }

        if task_times.len() != total_tasks {
            return Err(self.fail(
                now,
                SchedError::Incomplete {
                    policy: policy.name(),
                    completed: task_times.len(),
                    total: total_tasks,
                },
            ));
        }
        Ok(FluidResult { elapsed: now, task_times, trace })
    }
}

/// The paper's `T_n(S)`: estimated elapsed time of executing the task set
/// `S` on `m.n_procs` processors under the adaptive scheduling algorithm
/// (fractional allocations, dynamic adjustment enabled).
///
/// Returns `f64::INFINITY` if the replay fails — a plan whose schedule
/// cannot even be replayed must never win a cost comparison.
pub fn tn_estimate(m: &MachineConfig, tasks: &[TaskProfile]) -> f64 {
    use crate::adaptive::{AdaptiveConfig, AdaptiveScheduler};
    let mut cfg = AdaptiveConfig::with_adjustment(m.clone());
    cfg.integral = false;
    let mut policy = AdaptiveScheduler::new(cfg);
    FluidSim::new(m.clone())
        .run(&mut policy, tasks)
        .map(|r| r.elapsed)
        .unwrap_or(f64::INFINITY)
}

/// Joint `T_n` over the fragments of several queries scheduled together —
/// the multi-query parallel optimization the paper's Section 5 plans as
/// future work. Task ids must be globally unique across the DAGs.
pub fn tn_estimate_dags(m: &MachineConfig, dags: &[&FragmentDag]) -> f64 {
    let mut merged = FragmentDag::new();
    for dag in dags {
        merged.append(dag);
    }
    tn_estimate_dag(m, &merged)
}

/// `T_n(F(p))` over a fragment DAG with order dependencies — the quantity
/// the optimizer calls `parcost(p, n)`. Returns `f64::INFINITY` if the
/// replay fails (see [`tn_estimate`]).
pub fn tn_estimate_dag(m: &MachineConfig, dag: &FragmentDag) -> f64 {
    use crate::adaptive::{AdaptiveConfig, AdaptiveScheduler};
    if dag.is_empty() {
        return 0.0;
    }
    let mut cfg = AdaptiveConfig::with_adjustment(m.clone());
    cfg.integral = false;
    let mut policy = AdaptiveScheduler::new(cfg);
    FluidSim::new(m.clone())
        .run_dag(&mut policy, dag)
        .map(|r| r.elapsed)
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::{AdaptiveConfig, AdaptiveScheduler};
    use crate::estimate::t_intra;
    use crate::intra::IntraOnly;
    use crate::task::IoKind;

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    fn seq(id: u64, t: f64, rate: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), t, rate, IoKind::Sequential)
    }

    #[test]
    fn intra_only_elapsed_is_the_sum_of_t_intra() {
        let tasks = vec![seq(0, 24.0, 10.0), seq(1, 12.0, 60.0), seq(2, 8.0, 20.0)];
        let mut p = IntraOnly::new(m(), false);
        let res = FluidSim::new(m()).run(&mut p, &tasks).expect("replay");
        let expected: f64 = tasks.iter().map(|t| t_intra(t, &m())).sum();
        assert!((res.elapsed - expected).abs() < 1e-6, "{} vs {expected}", res.elapsed);
    }

    #[test]
    fn single_task_runs_at_maxp() {
        let tasks = vec![seq(0, 40.0, 60.0)]; // maxp = 4
        let mut p = IntraOnly::new(m(), false);
        let res = FluidSim::new(m()).run(&mut p, &tasks).expect("replay");
        assert!((res.elapsed - 10.0).abs() < 1e-6);
    }

    #[test]
    fn adaptive_beats_intra_on_a_mixed_pair() {
        let tasks = vec![seq(0, 30.0, 65.0), seq(1, 30.0, 8.0)];
        let sim = FluidSim::new(m());
        let mut intra = IntraOnly::new(m(), false);
        let t_base = sim.run(&mut intra, &tasks).expect("replay").elapsed;
        let mut cfg = AdaptiveConfig::with_adjustment(m());
        cfg.integral = false;
        let mut adj = AdaptiveScheduler::new(cfg);
        let t_adj = sim.run(&mut adj, &tasks).expect("replay").elapsed;
        assert!(
            t_adj < t_base * 0.95,
            "expected a clear win: with-adj {t_adj} vs intra {t_base}"
        );
    }

    #[test]
    fn adaptive_matches_intra_on_uniform_cpu_workload() {
        let tasks: Vec<_> = (0..6).map(|i| seq(i, 10.0 + i as f64, 10.0 + i as f64)).collect();
        let sim = FluidSim::new(m());
        let mut intra = IntraOnly::new(m(), false);
        let t_base = sim.run(&mut intra, &tasks).expect("replay").elapsed;
        let mut cfg = AdaptiveConfig::with_adjustment(m());
        cfg.integral = false;
        let mut adj = AdaptiveScheduler::new(cfg);
        let t_adj = sim.run(&mut adj, &tasks).expect("replay").elapsed;
        assert!((t_adj - t_base).abs() < 1e-6 * t_base);
    }

    #[test]
    fn elapsed_never_beats_physical_lower_bounds() {
        let tasks = vec![
            seq(0, 30.0, 65.0),
            seq(1, 30.0, 8.0),
            seq(2, 12.0, 45.0),
            seq(3, 20.0, 15.0),
        ];
        let mut cfg = AdaptiveConfig::with_adjustment(m());
        cfg.integral = false;
        let mut adj = AdaptiveScheduler::new(cfg);
        let res = FluidSim::new(m()).run(&mut adj, &tasks).expect("replay");
        let total_work: f64 = tasks.iter().map(|t| t.seq_time).sum();
        let total_ios: f64 = tasks.iter().map(|t| t.total_ios()).sum();
        // CPU bound: N processors; IO bound: the best bandwidth the array
        // can ever deliver.
        assert!(res.elapsed >= total_work / 8.0 - 1e-9);
        assert!(res.elapsed >= total_ios / m().total_bandwidth() - 1e-9);
    }

    #[test]
    fn trace_utilization_is_high_for_a_balanced_pair() {
        let tasks = vec![seq(0, 60.0, 60.0), seq(1, 60.0, 10.0)];
        let mut cfg = AdaptiveConfig::with_adjustment(m());
        cfg.integral = false;
        let mut adj = AdaptiveScheduler::new(cfg);
        let res = FluidSim::new(m()).run(&mut adj, &tasks).expect("replay");
        // While both run, CPU is fully allocated (utilization 1.0); the
        // average dips only during the survivor's maxp-limited tail. For
        // this pair the exact value is (8·t_pair + 4·t_tail)/(8·total) ≈ 0.78.
        assert!(res.trace.cpu_utilization(&m()) > 0.75, "{}", res.trace.cpu_utilization(&m()));
        // And the IO side is saturated while the pair runs together.
        assert!(res.trace.io_utilization(&m(), &tasks) > 0.5);
    }

    #[test]
    fn timed_arrivals_delay_starts() {
        let arrivals = vec![(seq(0, 10.0, 10.0), 0.0), (seq(1, 10.0, 10.0), 100.0)];
        let mut p = IntraOnly::new(m(), false);
        let res = FluidSim::new(m()).run_with_arrivals(&mut p, &arrivals).expect("replay");
        // Task 0 finishes at 1.25; task 1 cannot start before 100.
        assert!((res.elapsed - 101.25).abs() < 1e-6);
        let t1 = res.task_times.iter().find(|(id, _, _)| *id == TaskId(1)).unwrap();
        assert!((t1.1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dag_dependencies_serialize_fragments() {
        let mut dag = FragmentDag::new();
        let a = dag.add(seq(0, 16.0, 10.0), &[]);
        let _b = dag.add(seq(1, 16.0, 10.0), &[a]);
        let mut p = IntraOnly::new(m(), false);
        let res = FluidSim::new(m()).run_dag(&mut p, &dag).expect("replay");
        // Both CPU-bound at maxp 8: 2 + 2 seconds, strictly sequential.
        assert!((res.elapsed - 4.0).abs() < 1e-6);
    }

    #[test]
    fn tn_estimate_of_empty_dag_is_zero() {
        assert_eq!(tn_estimate_dag(&m(), &FragmentDag::new()), 0.0);
    }

    #[test]
    fn joint_tn_beats_serializing_the_queries() {
        // One IO-heavy query and one CPU-heavy query: scheduled together,
        // their fragments pair; one after the other, they cannot.
        let mut io_dag = FragmentDag::new();
        io_dag.add(seq(0, 20.0, 60.0), &[]);
        let mut cpu_dag = FragmentDag::new();
        cpu_dag.add(seq(100, 20.0, 8.0), &[]);
        let joint = tn_estimate_dags(&m(), &[&io_dag, &cpu_dag]);
        let serial = tn_estimate_dag(&m(), &io_dag) + tn_estimate_dag(&m(), &cpu_dag);
        assert!(joint < serial * 0.9, "joint {joint} vs serial {serial}");
    }

    #[test]
    fn tn_estimate_is_consistent_with_direct_replay() {
        let tasks = vec![seq(0, 30.0, 65.0), seq(1, 30.0, 8.0), seq(2, 10.0, 40.0)];
        let direct = {
            let mut cfg = AdaptiveConfig::with_adjustment(m());
            cfg.integral = false;
            let mut p = AdaptiveScheduler::new(cfg);
            FluidSim::new(m()).run(&mut p, &tasks).expect("replay").elapsed
        };
        assert!((tn_estimate(&m(), &tasks) - direct).abs() < 1e-9);
    }

    #[test]
    fn mean_response_time_uses_releases() {
        let tasks = vec![seq(0, 8.0, 10.0), seq(1, 8.0, 10.0)];
        let mut p = IntraOnly::new(m(), false);
        let res = FluidSim::new(m()).run(&mut p, &tasks).expect("replay");
        let releases: Vec<(TaskId, f64)> = tasks.iter().map(|t| (t.id, 0.0)).collect();
        // Finishes at 1 and 2 seconds ⇒ mean response 1.5.
        assert!((res.mean_response_time(&releases) - 1.5).abs() < 1e-6);
    }

    /// A policy that starts a task the driver was never told about.
    struct RogueStart(MachineConfig);
    impl SchedulePolicy for RogueStart {
        fn name(&self) -> &'static str {
            "ROGUE-START"
        }
        fn machine(&self) -> &MachineConfig {
            &self.0
        }
        fn on_arrival(&mut self, _now: f64, _task: TaskProfile) {}
        fn on_finish(&mut self, _now: f64, _task: TaskId) {}
        fn decide(&mut self, _now: f64, running: &[RunningTask]) -> Vec<Action> {
            if running.is_empty() {
                vec![Action::Start { id: TaskId(999), parallelism: 1.0 }]
            } else {
                vec![]
            }
        }
    }

    /// A policy that re-adjusts forever: never reaches a fixpoint.
    struct NeverSettles {
        m: MachineConfig,
        started: bool,
        flip: f64,
    }
    impl SchedulePolicy for NeverSettles {
        fn name(&self) -> &'static str {
            "NEVER-SETTLES"
        }
        fn machine(&self) -> &MachineConfig {
            &self.m
        }
        fn on_arrival(&mut self, _now: f64, _task: TaskProfile) {}
        fn on_finish(&mut self, _now: f64, _task: TaskId) {}
        fn decide(&mut self, _now: f64, _running: &[RunningTask]) -> Vec<Action> {
            if !self.started {
                self.started = true;
                return vec![Action::Start { id: TaskId(0), parallelism: 1.0 }];
            }
            self.flip = if self.flip == 1.0 { 2.0 } else { 1.0 };
            vec![Action::Adjust { id: TaskId(0), parallelism: self.flip }]
        }
    }

    #[test]
    fn scheduled_recalibration_rebases_the_policy() {
        use crate::trace::{action_stream, RingSink};
        use std::sync::{Arc, Mutex};
        // Two IO-bound tasks run one at a time; after the first finishes the
        // machine is recalibrated to half its bandwidth, so the second must
        // start at half the intra-operation parallelism.
        let tasks = vec![seq(0, 10.0, 60.0), seq(1, 10.0, 60.0)];
        let mut degraded = m();
        degraded.almost_seq_bw = 30.0; // B: 240 → 120
        let ring = Arc::new(Mutex::new(RingSink::unbounded()));
        let sink: crate::trace::SharedSink = ring.clone();
        let mut p = IntraOnly::new(m(), true);
        FluidSim::new(m())
            .with_recalibrations(vec![(1, degraded)])
            .with_sink(sink)
            .run(&mut p, &tasks)
            .expect("replay");
        let records = ring.lock().unwrap().records();
        assert!(records.iter().any(|r| matches!(r, TraceRecord::Recalibrate { .. })));
        let starts: Vec<f64> = action_stream(&records)
            .into_iter()
            .filter(|(_, a)| matches!(a, Action::Start { .. }))
            .map(|(_, a)| a.parallelism())
            .collect();
        assert_eq!(starts, vec![4.0, 2.0], "second start must plan against the degraded machine");
    }

    #[test]
    fn unknown_task_is_a_typed_error_not_a_panic() {
        let mut p = RogueStart(m());
        let err = FluidSim::new(m()).run(&mut p, &[seq(0, 10.0, 10.0)]).unwrap_err();
        assert_eq!(err, SchedError::UnknownTask { task: TaskId(999) });
    }

    #[test]
    fn diverging_policy_is_a_typed_error_not_a_hang() {
        let mut p = NeverSettles { m: m(), started: false, flip: 1.0 };
        let err = FluidSim::new(m()).run(&mut p, &[seq(0, 10.0, 10.0)]).unwrap_err();
        assert_eq!(
            err,
            SchedError::FixpointDiverged { policy: "NEVER-SETTLES", rounds: FIXPOINT_ROUNDS }
        );
    }

    #[test]
    fn error_paths_record_a_trace_error_record() {
        use crate::trace::{shared, RingSink};
        use std::sync::{Arc, Mutex};
        let ring = Arc::new(Mutex::new(RingSink::unbounded()));
        let sink: crate::trace::SharedSink = ring.clone();
        let mut p = RogueStart(m());
        let err = FluidSim::new(m())
            .with_sink(sink)
            .run(&mut p, &[seq(0, 10.0, 10.0)])
            .unwrap_err();
        let records = ring.lock().unwrap().records();
        let last = records.last().expect("trace is non-empty");
        match last {
            TraceRecord::Error { message, .. } => assert_eq!(message, &err.to_string()),
            other => panic!("expected a trailing Error record, got {other:?}"),
        }
        let _ = shared(RingSink::new(1)); // exercise the helper
    }

    #[test]
    fn sinked_run_replays_identically() {
        use crate::trace::{action_stream, parse_jsonl, JsonlSink};
        use std::sync::{Arc, Mutex};

        let tasks = vec![seq(0, 30.0, 65.0), seq(1, 30.0, 8.0), seq(2, 10.0, 40.0)];
        let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
        let shared_sink: crate::trace::SharedSink = sink.clone();
        let mut cfg = AdaptiveConfig::with_adjustment(m());
        cfg.integral = false;
        let mut p = AdaptiveScheduler::new(cfg);
        FluidSim::new(m()).with_sink(shared_sink).run(&mut p, &tasks).expect("replay");

        // The driver was dropped after `run`, so this is the sole owner.
        let Ok(cell) = Arc::try_unwrap(sink) else { unreachable!("sink still shared") };
        let owned = cell.into_inner().unwrap();
        assert!(owned.io_error().is_none());
        let text = String::from_utf8(owned.into_inner()).unwrap();
        let records = parse_jsonl(&text).expect("well-formed trace");
        let recorded = action_stream(&records);
        assert!(!recorded.is_empty());

        // A fresh policy fed the recorded event stream re-derives every
        // recorded decision.
        let mut cfg = AdaptiveConfig::with_adjustment(m());
        cfg.integral = false;
        let mut fresh = AdaptiveScheduler::new(cfg);
        let checked = crate::trace::replay_decisions(&records, &mut fresh).expect("replay");
        assert!(checked > 0);
    }
}
