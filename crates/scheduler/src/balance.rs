//! The IO-CPU balance point and the seek-interference bandwidth model.
//!
//! Running one IO-bound task `f_i` with parallelism `x_i` and one CPU-bound
//! task `f_j` with parallelism `x_j` puts the system at the point
//! `(x_i + x_j, C_i·x_i + C_j·x_j)` of the parallelism/bandwidth rectangle.
//! Maximum utilization of both resources is reached at the *balance point*:
//!
//! ```text
//!     x_i + x_j           = N
//!     C_i·x_i + C_j·x_j   = B
//! ```
//!
//! whose closed-form solution (for constant `B`) is
//! `x_i = (B − C_j·N) / (C_i − C_j)` and `x_j = (C_i·N − B) / (C_i − C_j)`.
//! Both coordinates are positive exactly when `C_i > B/N > C_j`, i.e. when
//! one task is IO-bound and the other CPU-bound — which is why the scheduler
//! never needs to co-run more than two tasks.
//!
//! When both tasks read sequentially the disks must seek between the two
//! block streams, so `B` is not constant: the paper models the *effective*
//! bandwidth as `B = Br + (1 − ratio)(Bs − Br)` where `ratio` is the smaller
//! of `C_i·x_i / C_j·x_j` and its reciprocal, `Bs` is the (almost-)sequential
//! bandwidth and `Br` the random bandwidth. [`balance_point`] solves the
//! resulting three-equation system.

use crate::machine::MachineConfig;
use crate::task::{Boundedness, IoKind, TaskProfile};

/// A solved IO-CPU balance point for one IO-bound / CPU-bound task pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancePoint {
    /// Parallelism assigned to the IO-bound task (`x_i`), possibly fractional.
    pub x_io: f64,
    /// Parallelism assigned to the CPU-bound task (`x_j`).
    pub x_cpu: f64,
    /// The effective aggregate disk bandwidth at this operating point.
    pub effective_bw: f64,
}

/// Closed-form balance point assuming a constant aggregate bandwidth `b`.
///
/// The class check mirrors [`TaskProfile::classify`]'s strict `>`: the IO
/// side must have `c_io > b/n`, the CPU side must *not* (`c_cpu <= b/n`).
/// A task sitting exactly on the threshold is a legal CPU-bound partner —
/// its balance point degenerates to `x_io = 0`, which (like any
/// non-positive coordinate) is reported as `None` rather than a split that
/// allocates nothing to one side.
pub fn balance_point_constant_b(c_io: f64, c_cpu: f64, n: f64, b: f64) -> Option<BalancePoint> {
    let threshold = b / n;
    // NaN-aware: a NaN rate fails the Greater test and falls out as None.
    if c_io.partial_cmp(&threshold) != Some(std::cmp::Ordering::Greater) || c_cpu > threshold {
        return None; // class mismatch under strict-> classification
    }
    let x_io = (b - c_cpu * n) / (c_io - c_cpu);
    let x_cpu = (c_io * n - b) / (c_io - c_cpu);
    if !(x_io > 0.0 && x_cpu > 0.0) {
        return None; // degenerate: one side would get zero processors
    }
    Some(BalancePoint { x_io, x_cpu, effective_bw: b })
}

/// Effective aggregate bandwidth of the array given the concurrent I/O
/// demand streams `(rate, kind)` currently offered to it.
///
/// * A single sequential stream sees the full parallel bandwidth
///   `n_disks × almost_seq_bw` (`240` io/s on the paper's machine);
///   a single random stream sees `n_disks × random_bw` (`140`).
/// * Two sequential streams interfere: the disks spend a fraction of their
///   time seeking between the streams, interpolating linearly between the
///   two bounds by the paper's `ratio` formula.
/// * For a sequential/random mix (the paper says the balance point can be
///   computed "similarly" but gives no formula) we charge each I/O its
///   service time: random I/Os always cost `1/random_bw`, sequential I/Os
///   cost `1/almost_seq_bw` degraded toward `1/random_bw` by the same
///   interleave ratio, and the aggregate is the reciprocal of the weighted
///   mean service time.
/// * More than two streams (the `k`-task ablation) generalizes the
///   service-time model with per-stream interleave ratio `1 − d_i / D`.
pub fn effective_bandwidth(m: &MachineConfig, demands: &[(f64, IoKind)]) -> f64 {
    let hi = m.total_bandwidth();
    let lo = m.total_random_bandwidth();
    let live: Vec<(f64, IoKind)> = demands.iter().copied().filter(|(d, _)| *d > 0.0).collect();
    match live.len() {
        0 => hi,
        1 => match live[0].1 {
            IoKind::Sequential => hi,
            IoKind::Random => lo,
        },
        2 => {
            let (d1, k1) = live[0];
            let (d2, k2) = live[1];
            match (k1, k2) {
                (IoKind::Sequential, IoKind::Sequential) => {
                    // The paper's formula, verbatim.
                    let ratio = (d1 / d2).min(d2 / d1);
                    lo + (1.0 - ratio) * (hi - lo)
                }
                (IoKind::Random, IoKind::Random) => lo,
                _ => {
                    let (d_seq, d_rand) = if k1 == IoKind::Sequential { (d1, d2) } else { (d2, d1) };
                    mixed_service_time_bw(m, &[(d_seq, IoKind::Sequential), (d_rand, IoKind::Random)])
                }
            }
        }
        _ => mixed_service_time_bw(m, &live),
    }
}

/// Service-time bandwidth model for mixes the paper does not give a closed
/// form for: aggregate bandwidth is `n_disks / mean service time`, where each
/// sequential stream's per-I/O service time degrades from almost-sequential
/// toward random by its interleave ratio `1 − d_i / D`.
fn mixed_service_time_bw(m: &MachineConfig, live: &[(f64, IoKind)]) -> f64 {
    let total: f64 = live.iter().map(|(d, _)| d).sum();
    let s_alm = 1.0 / m.almost_seq_bw;
    let s_rand = 1.0 / m.random_bw;
    let mut mean_service = 0.0;
    for &(d, kind) in live {
        let share = d / total;
        let service = match kind {
            IoKind::Random => s_rand,
            IoKind::Sequential => {
                let interleave = 1.0 - share; // fraction of I/O time stolen by others
                s_alm + interleave * (s_rand - s_alm)
            }
        };
        mean_service += share * service;
    }
    m.n_disks as f64 / mean_service
}

/// Solve the balance point between an IO-bound task `io` and a CPU-bound task
/// `cpu` on machine `m`, accounting for seek interference.
///
/// Returns `None` when the pair cannot reach a balance point: the tasks must
/// classify as IO-bound and CPU-bound respectively, and the interference-
/// corrected demand curve must actually cross the effective bandwidth inside
/// the open interval `x_io ∈ (0, N)`.
pub fn balance_point(io: &TaskProfile, cpu: &TaskProfile, m: &MachineConfig) -> Option<BalancePoint> {
    if io.classify(m) != Boundedness::IoBound || cpu.classify(m) != Boundedness::CpuBound {
        return None;
    }
    let n = m.n_procs as f64;
    // g(x) = total demand − effective bandwidth at x_io = x. A root of g is a
    // balance point: processors are fully allocated by construction and the
    // I/O demand exactly matches what the array can deliver.
    let g = |x: f64| -> f64 {
        let d_io = io.io_rate * x;
        let d_cpu = cpu.io_rate * (n - x);
        d_io + d_cpu - effective_bandwidth(m, &[(d_io, io.io_kind), (d_cpu, cpu.io_kind)])
    };
    // The demand slope is C_io − C_cpu > 0 while the effective bandwidth is
    // bounded, so g goes from negative (CPU-bound demand alone is below B) to
    // positive (IO-bound demand alone exceeds B); scan for the first sign
    // change, then bisect. Scanning tolerates the (mild) non-monotonicity the
    // interference term introduces.
    const STEPS: usize = 512;
    let eps = n * 1e-9;
    let mut lo_x = eps;
    let mut g_lo = g(lo_x);
    if g_lo > 0.0 {
        return None; // already over-committed with essentially no IO task
    }
    let mut hi_x = None;
    for k in 1..=STEPS {
        let x = eps + (n - 2.0 * eps) * k as f64 / STEPS as f64;
        let gx = g(x);
        if gx >= 0.0 {
            hi_x = Some(x);
            break;
        }
        lo_x = x;
        g_lo = gx;
    }
    let mut hi_x = hi_x?;
    let _ = g_lo;
    // Bisection to ~1e-10 of a processor.
    for _ in 0..80 {
        let mid = 0.5 * (lo_x + hi_x);
        if g(mid) < 0.0 {
            lo_x = mid;
        } else {
            hi_x = mid;
        }
    }
    let x_io = 0.5 * (lo_x + hi_x);
    let x_cpu = n - x_io;
    if !(x_io > 0.0 && x_cpu > 0.0) {
        return None;
    }
    let d_io = io.io_rate * x_io;
    let d_cpu = cpu.io_rate * x_cpu;
    let effective_bw = effective_bandwidth(m, &[(d_io, io.io_kind), (d_cpu, cpu.io_kind)]);
    Some(BalancePoint { x_io, x_cpu, effective_bw })
}

/// Round a fractional balance point to whole workers that still sum to `N`.
///
/// Execution engines allocate whole backends; the fractional optimum is
/// rounded to the nearest integer split with at least one worker per task.
/// Returns `None` on machines with fewer than two processors — there is no
/// split that gives both tasks a worker, and the old `clamp(1.0, 0.0)`
/// would panic in release builds (debug builds masked it behind a
/// `debug_assert!`).
pub fn integral_split(bp: &BalancePoint, m: &MachineConfig) -> Option<(u32, u32)> {
    let n = m.n_procs;
    if n < 2 {
        return None;
    }
    let x_io = bp.x_io.round().clamp(1.0, (n - 1) as f64) as u32;
    Some((x_io, n - x_io))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn m() -> MachineConfig {
        MachineConfig::paper_default()
    }

    fn seq(id: u64, rate: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), 10.0, rate, IoKind::Sequential)
    }

    fn rnd(id: u64, rate: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), 10.0, rate, IoKind::Random)
    }

    #[test]
    fn constant_b_closed_form_matches_hand_calculation() {
        // C_i = 60, C_j = 10, N = 8, B = 240:
        // x_i = (240 − 80) / 50 = 3.2, x_j = (480 − 240) / 50 = 4.8.
        let bp = balance_point_constant_b(60.0, 10.0, 8.0, 240.0).unwrap();
        assert!((bp.x_io - 3.2).abs() < 1e-12);
        assert!((bp.x_cpu - 4.8).abs() < 1e-12);
    }

    #[test]
    fn constant_b_requires_one_of_each_class() {
        // Two IO-bound tasks: no balance point.
        assert!(balance_point_constant_b(60.0, 40.0, 8.0, 240.0).is_none());
        // Two CPU-bound tasks: no balance point.
        assert!(balance_point_constant_b(20.0, 10.0, 8.0, 240.0).is_none());
    }

    #[test]
    fn solo_sequential_stream_sees_full_parallel_bandwidth() {
        assert_eq!(effective_bandwidth(&m(), &[(100.0, IoKind::Sequential)]), 240.0);
    }

    #[test]
    fn solo_random_stream_sees_random_bandwidth() {
        assert_eq!(effective_bandwidth(&m(), &[(100.0, IoKind::Random)]), 140.0);
    }

    #[test]
    fn two_even_sequential_streams_degrade_to_random_bandwidth() {
        // ratio = 1 ⇒ B = Br.
        let b = effective_bandwidth(
            &m(),
            &[(60.0, IoKind::Sequential), (60.0, IoKind::Sequential)],
        );
        assert!((b - 140.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_sequential_stream_keeps_nearly_full_bandwidth() {
        // ratio = 1/99 ⇒ B ≈ Bs.
        let b = effective_bandwidth(
            &m(),
            &[(198.0, IoKind::Sequential), (2.0, IoKind::Sequential)],
        );
        assert!(b > 235.0 && b <= 240.0);
    }

    #[test]
    fn interference_is_symmetric_in_the_two_streams() {
        let a = effective_bandwidth(&m(), &[(150.0, IoKind::Sequential), (50.0, IoKind::Sequential)]);
        let b = effective_bandwidth(&m(), &[(50.0, IoKind::Sequential), (150.0, IoKind::Sequential)]);
        assert_eq!(a, b);
    }

    #[test]
    fn two_random_streams_stay_at_random_bandwidth() {
        let b = effective_bandwidth(&m(), &[(30.0, IoKind::Random), (90.0, IoKind::Random)]);
        assert_eq!(b, 140.0);
    }

    #[test]
    fn mixed_pair_lies_between_the_bounds() {
        let b = effective_bandwidth(&m(), &[(80.0, IoKind::Sequential), (80.0, IoKind::Random)]);
        assert!(b > 140.0 && b < 240.0, "got {b}");
    }

    #[test]
    fn balance_point_saturates_both_resources() {
        let io = seq(0, 60.0);
        let cpu = seq(1, 10.0);
        let bp = balance_point(&io, &cpu, &m()).unwrap();
        assert!((bp.x_io + bp.x_cpu - 8.0).abs() < 1e-9);
        let demand = io.io_rate * bp.x_io + cpu.io_rate * bp.x_cpu;
        assert!((demand - bp.effective_bw).abs() < 1e-6 * demand);
        assert!(bp.effective_bw >= 140.0 && bp.effective_bw <= 240.0);
    }

    #[test]
    fn interference_shifts_parallelism_away_from_the_io_task() {
        // With sequential interference the effective bandwidth is below 240,
        // so the IO-bound task gets fewer processors than the constant-B
        // closed form predicts.
        let io = seq(0, 60.0);
        let cpu = seq(1, 10.0);
        let corrected = balance_point(&io, &cpu, &m()).unwrap();
        let naive = balance_point_constant_b(60.0, 10.0, 8.0, 240.0).unwrap();
        assert!(
            corrected.x_io < naive.x_io,
            "corrected {} vs naive {}",
            corrected.x_io,
            naive.x_io
        );
    }

    #[test]
    fn random_io_task_balances_against_cpu_task() {
        let io = rnd(0, 34.0); // random scans top out near the per-array random rate
        let cpu = seq(1, 6.0);
        let bp = balance_point(&io, &cpu, &m()).unwrap();
        assert!((bp.x_io + bp.x_cpu - 8.0).abs() < 1e-9);
        assert!(bp.x_io > 0.0 && bp.x_cpu > 0.0);
    }

    #[test]
    fn misclassified_pair_is_rejected() {
        // Both IO-bound.
        assert!(balance_point(&seq(0, 60.0), &seq(1, 40.0), &m()).is_none());
        // Both CPU-bound.
        assert!(balance_point(&seq(0, 20.0), &seq(1, 10.0), &m()).is_none());
        // Arguments swapped (cpu passed as io).
        assert!(balance_point(&seq(0, 10.0), &seq(1, 60.0), &m()).is_none());
    }

    #[test]
    fn integral_split_conserves_processors() {
        let io = seq(0, 55.0);
        let cpu = seq(1, 12.0);
        let bp = balance_point(&io, &cpu, &m()).unwrap();
        let (a, b) = integral_split(&bp, &m()).unwrap();
        assert_eq!(a + b, 8);
        assert!(a >= 1 && b >= 1);
    }

    #[test]
    fn integral_split_on_a_uniprocessor_is_none_not_a_panic() {
        let mut machine = m();
        machine.n_procs = 1;
        let bp = BalancePoint { x_io: 0.6, x_cpu: 0.4, effective_bw: 240.0 };
        assert_eq!(integral_split(&bp, &machine), None);
        machine.n_procs = 2;
        assert_eq!(integral_split(&bp, &machine), Some((1, 1)));
    }

    #[test]
    fn constant_b_boundary_matches_strict_classification() {
        // B/N = 30. A partner sitting exactly on the threshold classifies as
        // CPU-bound (strict >), so it is not a class mismatch — but its
        // balance point degenerates to x_io = 0 and is reported as None.
        assert!(balance_point_constant_b(60.0, 30.0, 8.0, 240.0).is_none());
        // Just below the threshold the pair balances normally...
        let bp = balance_point_constant_b(60.0, 30.0 - 1e-6, 8.0, 240.0).unwrap();
        assert!(bp.x_io > 0.0 && bp.x_cpu > 0.0);
        // ...and an IO side exactly on the threshold is not IO-bound.
        assert!(balance_point_constant_b(30.0, 10.0, 8.0, 240.0).is_none());
    }

    #[test]
    fn extreme_pair_matches_paper_intuition() {
        // The paper's extreme workload: C_io ∈ [60,70], C_cpu ∈ [5,15].
        // The IO task should get roughly a third of the machine.
        let io = seq(0, 70.0);
        let cpu = seq(1, 5.0);
        let bp = balance_point(&io, &cpu, &m()).unwrap();
        assert!(bp.x_io > 1.0 && bp.x_io < 4.0, "x_io = {}", bp.x_io);
    }
}
