//! The shared-memory machine model: `N` processors plus a striped disk array.
//!
//! The paper's testbed is a 12-processor Sequent Symmetry with four disks of
//! which eight processors are used in the experiments. Each disk was measured
//! (after file-system overhead) at 97 I/Os per second for sequential reads,
//! 60 for *almost sequential* reads (the pattern produced by several parallel
//! backends scanning one striped relation) and 35 for random reads.

/// Static description of the machine the scheduler is planning for.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of processors available to query processing (`N`).
    pub n_procs: u32,
    /// Number of disks in the array; relations are striped round-robin.
    pub n_disks: u32,
    /// Per-disk sequential-read bandwidth, I/Os per second.
    pub seq_bw: f64,
    /// Per-disk almost-sequential bandwidth — what parallel scans of a single
    /// striped relation actually see, I/Os per second.
    pub almost_seq_bw: f64,
    /// Per-disk random-read bandwidth, I/Os per second.
    pub random_bw: f64,
    /// Shared memory available to query processing, bytes. `f64::INFINITY`
    /// disables the memory constraint (the paper's own setting — Section 5
    /// leaves memory to future work; we implement it and default it off).
    pub memory: f64,
}

impl MachineConfig {
    /// The configuration used throughout the paper's Section 3 experiments:
    /// 8 processors, 4 disks, 97/60/35 I/Os per second per disk.
    ///
    /// With these numbers the aggregate parallel bandwidth is
    /// `B = 4 × 60 = 240` I/Os per second and the IO/CPU classification
    /// threshold is `B / N = 30` I/Os per second.
    pub fn paper_default() -> Self {
        MachineConfig {
            n_procs: 8,
            n_disks: 4,
            seq_bw: 97.0,
            almost_seq_bw: 60.0,
            random_bw: 35.0,
            memory: f64::INFINITY,
        }
    }

    /// Aggregate bandwidth `B` used by the balance-point equations: the
    /// almost-sequential rate summed over the array. Parallel executions "at
    /// most see the almost sequential read bandwidth" because reads become
    /// unordered across asynchronous backends.
    pub fn total_bandwidth(&self) -> f64 {
        self.n_disks as f64 * self.almost_seq_bw
    }

    /// Aggregate truly-sequential bandwidth (single backend, in-order reads).
    pub fn total_seq_bandwidth(&self) -> f64 {
        self.n_disks as f64 * self.seq_bw
    }

    /// Aggregate random-read bandwidth — the floor the array degrades to when
    /// it must seek between the blocks of competing tasks.
    pub fn total_random_bandwidth(&self) -> f64 {
        self.n_disks as f64 * self.random_bw
    }

    /// The IO/CPU classification threshold `B / N`: a task whose sequential
    /// I/O rate exceeds this is IO-bound.
    pub fn io_threshold(&self) -> f64 {
        self.total_bandwidth() / self.n_procs as f64
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_3() {
        let m = MachineConfig::paper_default();
        assert_eq!(m.n_procs, 8);
        assert_eq!(m.n_disks, 4);
        assert_eq!(m.total_bandwidth(), 240.0);
        assert_eq!(m.total_random_bandwidth(), 140.0);
        assert_eq!(m.total_seq_bandwidth(), 388.0);
        assert_eq!(m.io_threshold(), 30.0);
    }

    #[test]
    fn threshold_scales_with_processors() {
        let mut m = MachineConfig::paper_default();
        m.n_procs = 4;
        assert_eq!(m.io_threshold(), 60.0);
        m.n_procs = 16;
        assert_eq!(m.io_threshold(), 15.0);
    }

    #[test]
    fn bandwidth_scales_with_disks() {
        let mut m = MachineConfig::paper_default();
        m.n_disks = 8;
        assert_eq!(m.total_bandwidth(), 480.0);
    }
}
