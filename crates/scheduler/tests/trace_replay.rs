//! The trace-replay checker: a JSONL decision trace captured from a live
//! run must re-execute against the fluid model to the identical action
//! sequence, and a tampered trace must be rejected with a typed error.

use std::sync::{Arc, Mutex};

use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::fluid::FluidSim;
use xprs_scheduler::trace::{
    action_signature, action_stream, parse_jsonl, replay_decisions, replay_through_fluid,
    JsonlSink, SharedSink, TraceRecord,
};
use xprs_scheduler::{IoKind, MachineConfig, SchedError, TaskId, TaskProfile};

fn m() -> MachineConfig {
    MachineConfig::paper_default()
}

fn seq(id: u64, seq_time: f64, rate: f64) -> TaskProfile {
    TaskProfile::new(TaskId(id), seq_time, rate, IoKind::Sequential)
}

/// Capture a fluid run of `tasks` under INTER-WITH-ADJ as JSONL text.
fn capture(tasks: &[TaskProfile]) -> String {
    let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
    let shared: SharedSink = sink.clone();
    let mut p = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
    FluidSim::new(m()).with_sink(shared).run(&mut p, tasks).expect("capture run");
    let Ok(cell) = Arc::try_unwrap(sink) else { unreachable!("sink still shared") };
    let owned = cell.into_inner().unwrap();
    assert!(owned.io_error().is_none());
    String::from_utf8(owned.into_inner()).unwrap()
}

#[test]
fn recorded_trace_replays_to_the_identical_action_sequence() {
    let tasks = vec![seq(0, 30.0, 65.0), seq(1, 30.0, 8.0), seq(2, 12.0, 40.0)];
    let text = capture(&tasks);
    let records = parse_jsonl(&text).expect("well-formed trace");

    let recorded = action_stream(&records);
    assert!(!recorded.is_empty(), "capture must contain decisions");

    let replayed = replay_through_fluid(&records).expect("replay");
    let n = m().n_procs;
    assert_eq!(
        action_signature(&recorded, n),
        action_signature(&replayed, n),
        "fluid replay must re-derive the recorded schedule"
    );
}

#[test]
fn replay_is_deterministic_across_repeated_captures() {
    let tasks = vec![seq(0, 20.0, 60.0), seq(1, 20.0, 10.0)];
    let a = capture(&tasks);
    let b = capture(&tasks);
    assert_eq!(a, b, "same inputs must serialize to byte-identical traces");
}

#[test]
fn tampered_decision_is_rejected_with_replay_mismatch() {
    let tasks = vec![seq(0, 30.0, 65.0), seq(1, 30.0, 8.0)];
    let text = capture(&tasks);
    let mut records = parse_jsonl(&text).expect("well-formed trace");

    // Corrupt the first recorded decision's parallelism.
    let decide = records
        .iter_mut()
        .find_map(|r| match r {
            TraceRecord::Decide { actions, .. } if !actions.is_empty() => Some(actions),
            _ => None,
        })
        .expect("trace has a decision");
    match &mut decide[0] {
        xprs_scheduler::policy::Action::Start { parallelism, .. }
        | xprs_scheduler::policy::Action::Adjust { parallelism, .. } => {
            *parallelism += 1.0;
        }
    }

    let mut fresh = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
    let err = replay_decisions(&records, &mut fresh).expect_err("tampering must be caught");
    assert!(
        matches!(err, SchedError::ReplayMismatch { .. }),
        "expected ReplayMismatch, got {err}"
    );
}

#[test]
fn malformed_jsonl_reports_the_offending_line() {
    let tasks = vec![seq(0, 10.0, 50.0), seq(1, 10.0, 12.0)];
    let mut text = capture(&tasks);
    text.push_str("{\"type\":\"decide\",\"now\":oops}\n");
    let n_lines = text.lines().count();
    let err = parse_jsonl(&text).expect_err("garbage line must be rejected");
    match err {
        SchedError::MalformedTrace { line, .. } => assert_eq!(line, n_lines),
        other => panic!("expected MalformedTrace, got {other}"),
    }
}

#[test]
fn trace_without_run_start_cannot_replay() {
    let tasks = vec![seq(0, 10.0, 50.0), seq(1, 10.0, 12.0)];
    let text = capture(&tasks);
    let records: Vec<TraceRecord> = parse_jsonl(&text)
        .expect("well-formed trace")
        .into_iter()
        .filter(|r| !matches!(r, TraceRecord::RunStart { .. }))
        .collect();
    let err = replay_through_fluid(&records).expect_err("headerless trace must be rejected");
    assert!(matches!(err, SchedError::MalformedTrace { .. }));
}
