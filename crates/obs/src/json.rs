//! The workspace's hand-rolled JSON: one encoder convention and one minimal
//! parser, shared by the scheduler's trace layer, the executor's
//! `metrics.json`, and the bench/CI validation paths. The build is offline
//! (no serde), so keeping a single implementation here is what makes every
//! producer and consumer agree on the corner cases (float round-trips,
//! infinities, NaN).

/// Render a float as a JSON token that round-trips through [`str::parse`]:
/// finite values use Rust's shortest-exact `Display`, infinities saturate
/// (`±1e400` parses back to `±inf`), `NaN` becomes `null`.
pub fn fnum(x: f64) -> String {
    if x.is_nan() {
        "null".to_string()
    } else if x.is_infinite() {
        if x > 0.0 { "1e400".to_string() } else { "-1e400".to_string() }
    } else {
        format!("{x}")
    }
}

/// Quote and escape a string for embedding in JSON.
pub fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Numbers are `f64` (matching the encoder, which only
/// ever emits values that round-trip); object fields keep source order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field `key` of an object (None for other variants or missing keys).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value; `null` reads as NaN (the encoder writes NaN as null).
    pub fn num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// String contents.
    pub fn str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Array elements.
    pub fn arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one JSON value from `s` (leading whitespace allowed; trailing
/// garbage after the value is rejected).
///
/// # Errors
/// A human-readable description with the byte offset of the first problem.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Parse a prefix of `s` as one JSON value, ignoring anything after it —
/// the lenient variant trace-replay uses for JSONL lines.
pub fn parse_prefix(s: &str) -> Result<JsonValue, String> {
    Parser::new(s).value()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected literal {lit}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("utf8"))?;
        tok.parse::<f64>().map(JsonValue::Num).map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("utf8 in \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unmodified).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnum_round_trips_specials() {
        assert_eq!(fnum(f64::NAN), "null");
        assert_eq!(fnum(f64::INFINITY), "1e400");
        assert_eq!(fnum(f64::NEG_INFINITY), "-1e400");
        assert_eq!(fnum(0.1), "0.1");
        let back: f64 = fnum(f64::INFINITY).parse().unwrap();
        assert!(back.is_infinite() && back > 0.0);
    }

    #[test]
    fn jstr_escapes() {
        assert_eq!(jstr("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(jstr("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_an_object() {
        let v = parse("{\"a\": [1, 2.5, null], \"b\": {\"c\": true}, \"s\": \"x\\ny\"}")
            .expect("parse");
        assert_eq!(v.get("a").and_then(|x| x.arr()).map(|a| a.len()), Some(3));
        assert!(v.get("a").unwrap().arr().unwrap()[2].num().unwrap().is_nan());
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(|c| c.boolean()), Some(true));
        assert_eq!(v.get("s").and_then(|s| s.str()), Some("x\ny"));
    }

    #[test]
    fn parse_rejects_trailing_garbage_but_prefix_allows_it() {
        assert!(parse("{} tail").is_err());
        assert_eq!(parse_prefix("{} tail").unwrap(), JsonValue::Obj(vec![]));
        assert!(parse("{oops}").is_err());
        assert!(parse("").is_err());
    }
}
