//! `xprs-obs`: measurement primitives for the whole workspace.
//!
//! The paper's argument (§2.2–2.3) is quantitative — pair an IO-bound and a
//! CPU-bound task at the balance point and *both* resources stay saturated —
//! so the repro has to be able to measure utilization, not just model it.
//! This crate supplies the two pieces every other layer shares:
//!
//! * **Metrics primitives** — [`Counter`] (a relaxed `AtomicU64`, one
//!   uncontended CAS-free add on the hot path) and [`Histogram`] (fixed
//!   power-of-two buckets of atomics, no locks, no allocation after
//!   construction). Both snapshot into plain-old-data ([`u64`],
//!   [`HistSnapshot`]) that supports window diffs: sample at a window edge,
//!   diff against the previous edge, and the delta is what happened inside
//!   the window.
//! * **JSON** — the workspace builds offline with no serde, so every crate
//!   that speaks JSON (scheduler traces, executor `metrics.json`, bench
//!   artifacts) hand-rolls it. The [`json`] module is the single shared
//!   implementation: [`json::fnum`] / [`json::jstr`] for encoding with exact
//!   float round-trips, and [`json::parse`] for the minimal parser the
//!   replay and CI validation paths need.
//!
//! Disabled collection must cost ~zero: instrumented code holds an
//! `Option<Arc<...>>` of metrics and branches on `is_some()`; this crate
//! keeps the enabled path cheap (relaxed atomics only).

use std::sync::atomic::{AtomicU64, Ordering};

pub mod json;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter. All operations are relaxed
/// atomics: safe to share across worker threads, never a synchronization
/// point. Totals are exact once the writers have quiesced (e.g. after
/// `Executor::run` joins its workers).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Accumulates durations (or any `f64` quantity) as integer nanoseconds so
/// the hot path stays a single relaxed `fetch_add` — no float CAS loop.
#[derive(Debug, Default)]
pub struct TimeSum(AtomicU64);

impl TimeSum {
    /// A sum starting at zero.
    pub const fn new() -> Self {
        TimeSum(AtomicU64::new(0))
    }

    /// Add `ns` nanoseconds.
    #[inline]
    pub fn add_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add `secs` seconds (saturating at ~584 years; negative/NaN ignored).
    #[inline]
    pub fn add_secs(&self, secs: f64) {
        if secs > 0.0 {
            self.add_ns((secs * 1e9) as u64);
        }
    }

    /// Total in nanoseconds.
    #[inline]
    pub fn ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Total in seconds.
    #[inline]
    pub fn secs(&self) -> f64 {
        self.ns() as f64 / 1e9
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of buckets in a [`Histogram`]: bucket `i` holds values whose
/// highest set bit is `i - 1` (bucket 0 holds the value 0), so the upper
/// bound of bucket `i` is `2^i - 1` and 65 buckets cover all of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket power-of-two histogram of `u64` samples (latencies in
/// nanoseconds, fan-outs, run sizes...). `observe` is two relaxed
/// `fetch_add`s plus one `fetch_max` — no locks, no allocation — which keeps
/// enabled-metrics overhead inside the ~2% budget on the executor benches.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of `v`: 0 for 0, else one past the highest set bit.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram. Not atomic across buckets —
    /// take snapshots at quiescent points or treat small cross-bucket skew
    /// as noise (the counters themselves never go backwards).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-old-data copy of a [`Histogram`], supporting window diffs and JSON
/// export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (over the histogram's whole life, even in diffs).
    pub max: u64,
}

impl HistSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the bucket
    /// containing the `q`-th sample. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_bound(i).min(self.max.max(1));
            }
        }
        self.max
    }

    /// What happened since `earlier`: per-bucket and total deltas
    /// (saturating, so a mismatched pair degrades to zeros rather than
    /// nonsense). `max` keeps the later snapshot's lifetime max.
    pub fn diff(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Compact JSON object: count, sum, mean, max, p50/p99, and the
    /// non-empty buckets as `[bucket_upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("[{},{}]", Histogram::bucket_bound(i), c))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{},\"max\":{},\"p50\":{},\"p99\":{},\
             \"buckets\":[{}]}}",
            self.count,
            self.sum,
            json::fnum(self.mean()),
            self.max,
            self.quantile(0.5),
            self.quantile(0.99),
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn time_sum_round_trips_seconds() {
        let t = TimeSum::new();
        t.add_secs(1.5);
        t.add_ns(500_000_000);
        assert!((t.secs() - 2.0).abs() < 1e-9);
        t.add_secs(-1.0); // ignored
        t.add_secs(f64::NAN); // ignored
        assert!((t.secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(2), 3);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_snapshot_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 1106.0 / 6.0).abs() < 1e-9);
        assert!(s.quantile(0.0) <= s.quantile(1.0));
        assert_eq!(s.quantile(1.0), 1000); // last bucket bound clamped to max
        let empty = HistSnapshot { buckets: vec![0; HIST_BUCKETS], count: 0, sum: 0, max: 0 };
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn histogram_diff_isolates_a_window() {
        let h = Histogram::new();
        h.observe(10);
        let edge = h.snapshot();
        h.observe(20);
        h.observe(30);
        let delta = h.snapshot().diff(&edge);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 50);
    }

    #[test]
    fn histogram_json_parses_back() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.observe(v);
        }
        let text = h.snapshot().to_json();
        let v = json::parse(&text).expect("valid json");
        assert_eq!(v.get("count").and_then(|x| x.num()), Some(100.0));
        let buckets = v.get("buckets").and_then(|x| x.arr()).expect("buckets");
        let total: f64 = buckets
            .iter()
            .map(|pair| pair.arr().unwrap()[1].num().unwrap())
            .sum();
        assert_eq!(total, 100.0);
    }
}
