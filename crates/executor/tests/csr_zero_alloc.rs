//! Acceptance check: probing a CSR-indexed [`Materialized`] performs **zero
//! heap allocations** — `matches()` is a binary search plus a slice borrow,
//! and iterating the hits only walks the positions array.
//!
//! Proven with a counting `#[global_allocator]` wrapping the system
//! allocator. This file holds exactly one `#[test]` so no sibling test
//! thread can allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use xprs_executor::Materialized;
use xprs_storage::{Datum, Tuple};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

#[test]
fn csr_probes_do_not_allocate() {
    // Build happens before the measured window; it allocates freely.
    let mut seed = 0x0A11_0C0D_u64;
    let runs: Vec<Vec<(i32, Tuple)>> = (0..4)
        .map(|_| {
            let mut run: Vec<(i32, Tuple)> = (0..2_000)
                .map(|_| {
                    let a = (lcg(&mut seed) % 512) as i32;
                    (a, Tuple::from_values(vec![Datum::Int(a)]))
                })
                .collect();
            run.sort_by_key(|(k, _)| *k);
            run
        })
        .collect();
    let mat = Materialized::from_runs(runs);
    assert!(mat.is_csr());

    // Measured window: many probes — hits, misses, plain and cursored —
    // with full iteration of every match. `sum` into a stack integer so
    // the loop body itself is allocation-free too.
    //
    // The counter is process-wide, so the libtest harness thread can leak a
    // stray allocation into a window under load. A probe-path allocation
    // would repeat in *every* window (~5M probes each), so retrying and
    // accepting one clean window keeps the assertion sound while shedding
    // harness noise.
    let mut min_allocs = u64::MAX;
    for _attempt in 0..5 {
        let mut checksum = 0i64;
        let before = ALLOCS.load(Ordering::SeqCst);
        for round in 0..100 {
            for key in -8i32..520 {
                for t in mat.matches(key) {
                    if let Datum::Int(v) = t.get(0) {
                        checksum += *v as i64;
                    }
                }
            }
            // Monotone sweep through the cursor path (the MergeWith shape).
            let mut cursor = 0usize;
            for key in -8i32..520 {
                for t in mat.matches_from(key, &mut cursor) {
                    if let Datum::Int(v) = t.get(0) {
                        checksum -= *v as i64;
                    }
                }
            }
            let _ = round;
        }
        let after = ALLOCS.load(Ordering::SeqCst);

        assert_eq!(checksum, 0, "plain and cursored probes must visit the same rows");
        min_allocs = min_allocs.min(after - before);
        if min_allocs == 0 {
            break;
        }
    }

    assert_eq!(
        min_allocs, 0,
        "CSR probe path allocated {min_allocs} times in every measured window"
    );
}
