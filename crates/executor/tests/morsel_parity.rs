//! Output parity across morsel modes: the same query must return
//! **byte-identical** rows under §2.4 static partition shares
//! ([`MorselMode::StaticShares`]) and morsel-driven work stealing
//! ([`MorselMode::Stealing`]) — at every worker count, at a morsel grain
//! small enough to force heavy stealing, and with a worker killed
//! mid-scan so the heartbeat patrol's reclamation path is on the
//! byte-identity critical path too.
//!
//! Payloads are a pure function of `(relation, key)` (the
//! `join_datapath` convention), so the key-sorted outputs admit
//! row-for-row comparison regardless of which slot produced which row.

use std::sync::Arc;

use xprs_disk::{FaultPlan, StripedLayout};
use xprs_executor::{ExecConfig, Executor, MorselMode, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::MachineConfig;
use xprs_storage::{Catalog, Datum, Schema, Tuple};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

/// Two indexed relations; payload `b` depends only on `(relation, a)`.
fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0x9A21_u64;
    for (name, n, key_mod) in [("big", 2_000u64, 120u64), ("small", 600, 90)] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let a = (lcg(&mut seed) % key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text(format!("{name}:{a}"))])
            })
            .collect();
        cat.load(name, rows);
        cat.build_index(name, false);
    }
    Arc::new(cat)
}

/// A scan query and a two-fragment join query — the shapes whose unit
/// spaces (pages and keys) the morsel layer partitions.
fn runs(cat: &Arc<Catalog>) -> Vec<QueryRun> {
    let optimizer = TwoPhaseOptimizer::paper_default();
    let scan = Query::selection("big", 1.0);
    let join = Query::join().rel("big", 1.0).rel("small", 1.0).on(0, 1).build();
    vec![
        QueryRun {
            optimized: optimizer.optimize_catalog(cat, &scan, Costing::SeqCost).expect("plan"),
            bindings: vec![RelBinding { name: "big".into(), pred: (i32::MIN, i32::MAX) }],
        },
        QueryRun {
            optimized: optimizer.optimize_catalog(cat, &join, Costing::SeqCost).expect("plan"),
            bindings: vec![
                RelBinding { name: "big".into(), pred: (i32::MIN, i32::MAX) },
                RelBinding { name: "small".into(), pred: (i32::MIN, i32::MAX) },
            ],
        },
    ]
}

fn run_mode(
    cat: &Arc<Catalog>,
    mode: MorselMode,
    faults: Option<Arc<FaultPlan>>,
) -> Vec<Vec<(i32, Tuple)>> {
    let mut cfg = ExecConfig::unthrottled().with_morsel_mode(mode);
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let exec = Executor::new(cfg, cat.clone());
    let mut policy = IntraOnly::new(MachineConfig::paper_default(), true);
    let report = exec.run(&runs(cat), &mut policy).expect("parity run failed");
    report.results.iter().map(|r| r.rows.rows.clone()).collect()
}

/// Fault-free parity: static shares and stealing — at the default grain
/// and at a grain of one unit per morsel (maximum steal traffic) — all
/// return byte-identical rows.
#[test]
fn stealing_and_static_shares_return_byte_identical_rows() {
    let cat = catalog();
    let reference = run_mode(&cat, MorselMode::StaticShares, None);
    assert!(reference.iter().all(|r| !r.is_empty()), "vacuous parity reference");
    for mode in [MorselMode::stealing(), MorselMode::Stealing { morsel_units: 1 }] {
        let got = run_mode(&cat, mode, None);
        assert_eq!(got, reference, "{mode:?} diverged from StaticShares");
    }
}

/// A worker killed mid-scan (fragment 0, slot 0, after one unit) must not
/// change a single byte of either mode's output: the heartbeat patrol
/// reclaims exactly the units the dead slot never claimed, and a
/// replacement finishes them.
#[test]
fn worker_death_mid_scan_preserves_byte_identity_in_both_modes() {
    let cat = catalog();
    let reference = run_mode(&cat, MorselMode::StaticShares, None);
    for mode in [
        MorselMode::StaticShares,
        MorselMode::stealing(),
        MorselMode::Stealing { morsel_units: 1 },
    ] {
        let faults = Arc::new(FaultPlan::new().with_worker_death(0, 0, 1));
        let got = run_mode(&cat, mode, Some(faults.clone()));
        assert_eq!(faults.stats().deaths_fired(), 1, "{mode:?}: death must fire");
        assert_eq!(got, reference, "{mode:?}: death changed the output");
    }
}
