//! Capture a structured decision trace from the *threaded* executor and
//! re-execute it against the analytic fluid model: the replay must derive
//! the identical whole-worker action sequence. Also exercises the typed
//! error path for misbehaving policies — the run returns `ExecError::Sched`
//! with every worker drained instead of panicking or hanging.

use std::sync::{Arc, Mutex};

use xprs_disk::StripedLayout;
use xprs_executor::{ExecConfig, ExecError, Executor, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::fluid::FIXPOINT_ROUNDS;
use xprs_scheduler::policy::{Action, RunningTask, SchedulePolicy};
use xprs_scheduler::trace::{
    action_signature, action_stream, parse_jsonl, replay_through_fluid, JsonlSink, SharedSink,
};
use xprs_scheduler::{MachineConfig, SchedError, TaskId, TaskProfile};
use xprs_storage::{Catalog, Datum, Schema, Tuple};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

/// Two relations with strongly skewed scan costs, so the two fragments'
/// finish order is unambiguous for both the real machine and the model.
fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0xFEED_u64;
    for (name, n, key_mod, blen) in [
        ("wide", 600u64, 100u64, 800usize), // IO-heavy: few tuples per page
        ("slim", 6000, 150, 16),            // CPU-heavy: many tuples per page
    ] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let a = (lcg(&mut seed) % key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(blen))])
            })
            .collect();
        cat.load(name, rows);
        cat.build_index(name, false);
    }
    Arc::new(cat)
}

fn m() -> MachineConfig {
    MachineConfig::paper_default()
}

fn full_scan_run(cat: &Arc<Catalog>, name: &str) -> QueryRun {
    let q = Query::selection(name, 1.0);
    let optimized = TwoPhaseOptimizer::paper_default()
        .optimize_catalog(cat, &q, Costing::SeqCost)
        .expect("plan");
    QueryRun {
        optimized,
        bindings: vec![RelBinding { name: name.into(), pred: (i32::MIN, i32::MAX) }],
    }
}

#[test]
fn executor_trace_replays_through_the_fluid_model() {
    let cat = catalog();
    let runs = vec![full_scan_run(&cat, "wide"), full_scan_run(&cat, "slim")];

    let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
    let shared: SharedSink = sink.clone();
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
    Executor::new(ExecConfig::unthrottled(), cat.clone())
        .with_trace(shared)
        .run(&runs, &mut policy)
        .expect("traced run");

    let Ok(cell) = Arc::try_unwrap(sink) else { unreachable!("sink still shared") };
    let owned = cell.into_inner().unwrap();
    assert!(owned.io_error().is_none());
    let text = String::from_utf8(owned.into_inner()).unwrap();
    let records = parse_jsonl(&text).expect("well-formed executor trace");

    let recorded = action_stream(&records);
    assert!(!recorded.is_empty(), "executor trace must record decisions");

    // Re-execute the recorded event stream on the fluid model: the analytic
    // replay must re-derive the same schedule, whole worker for whole
    // worker, despite the capture running on a wall clock.
    let replayed = replay_through_fluid(&records).expect("fluid replay");
    assert_eq!(
        action_signature(&recorded, m().n_procs),
        action_signature(&replayed, m().n_procs),
        "threaded capture and fluid replay disagree"
    );
}

/// A policy that flip-flops an Adjust forever: the executor must detect the
/// divergence, drain its workers, and return a typed error.
struct NeverSettles {
    machine: MachineConfig,
    started: Vec<TaskId>,
    flip: bool,
}

impl SchedulePolicy for NeverSettles {
    fn name(&self) -> &'static str {
        "NEVER-SETTLES"
    }
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }
    fn on_arrival(&mut self, _now: f64, task: TaskProfile) {
        self.started.push(task.id);
    }
    fn on_finish(&mut self, _now: f64, _id: TaskId) {}
    fn decide(&mut self, _now: f64, running: &[RunningTask]) -> Vec<Action> {
        if let Some(id) = self.started.pop() {
            return vec![Action::Start { id, parallelism: 1.0 }];
        }
        let Some(r) = running.first() else { return vec![] };
        self.flip = !self.flip;
        let x = if self.flip { 2.0 } else { 3.0 };
        vec![Action::Adjust { id: r.profile.id, parallelism: x }]
    }
}

#[test]
fn diverging_policy_surfaces_as_sched_error_with_drained_backends() {
    let cat = catalog();
    let runs = vec![full_scan_run(&cat, "slim")];
    let mut policy = NeverSettles { machine: m(), started: Vec::new(), flip: false };
    // Returning at all proves the drain: a leaked worker set would leave the
    // run blocked on the completion channel.
    let err = Executor::new(ExecConfig::unthrottled(), cat.clone())
        .run(&runs, &mut policy)
        .expect_err("divergence must surface");
    match err {
        ExecError::Sched { source, completed, total } => {
            assert_eq!(
                source,
                SchedError::FixpointDiverged { policy: "NEVER-SETTLES", rounds: FIXPOINT_ROUNDS }
            );
            assert_eq!((completed, total), (0, 1));
        }
        other => panic!("expected Sched error, got {other}"),
    }
}

/// A policy that starts a task the executor never announced.
struct RogueStart {
    machine: MachineConfig,
    fired: bool,
}

impl SchedulePolicy for RogueStart {
    fn name(&self) -> &'static str {
        "ROGUE-START"
    }
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }
    fn on_arrival(&mut self, _now: f64, _task: TaskProfile) {}
    fn on_finish(&mut self, _now: f64, _id: TaskId) {}
    fn decide(&mut self, _now: f64, _running: &[RunningTask]) -> Vec<Action> {
        if self.fired {
            return vec![];
        }
        self.fired = true;
        vec![Action::Start { id: TaskId(0xDEAD), parallelism: 1.0 }]
    }
}

#[test]
fn unknown_task_reference_surfaces_as_sched_error() {
    let cat = catalog();
    let runs = vec![full_scan_run(&cat, "slim")];
    let mut policy = RogueStart { machine: m(), fired: false };
    let err = Executor::new(ExecConfig::unthrottled(), cat.clone())
        .run(&runs, &mut policy)
        .expect_err("unknown task must surface");
    assert!(
        matches!(
            err,
            ExecError::Sched { source: SchedError::UnknownTask { task: TaskId(0xDEAD) }, .. }
        ),
        "got {err}"
    );
}

/// A policy that never starts anything: the executor must detect the wedge
/// instead of blocking on the completion channel forever.
struct DoNothing(MachineConfig);

impl SchedulePolicy for DoNothing {
    fn name(&self) -> &'static str {
        "DO-NOTHING"
    }
    fn machine(&self) -> &MachineConfig {
        &self.0
    }
    fn on_arrival(&mut self, _now: f64, _task: TaskProfile) {}
    fn on_finish(&mut self, _now: f64, _id: TaskId) {}
    fn decide(&mut self, _now: f64, _running: &[RunningTask]) -> Vec<Action> {
        vec![]
    }
}

#[test]
fn wedged_policy_surfaces_instead_of_hanging() {
    let cat = catalog();
    let runs = vec![full_scan_run(&cat, "wide")];
    let mut policy = DoNothing(m());
    let err = Executor::new(ExecConfig::unthrottled(), cat.clone())
        .run(&runs, &mut policy)
        .expect_err("wedge must surface");
    assert!(
        matches!(
            err,
            ExecError::Sched {
                source: SchedError::Wedged { policy: "DO-NOTHING", unfinished: 1 },
                ..
            }
        ),
        "got {err}"
    );
}
