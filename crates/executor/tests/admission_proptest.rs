//! Concurrent memory-grant admission: hash-join workloads whose aggregate
//! build demand is several times the buffer pool must complete under
//! admission — queueing and spilling as needed — with rows **byte-identical**
//! to an uncontended run, a balanced grant ledger (every granted page
//! released), and an empty pin table at exit. `PoolExhausted` may never
//! surface; the only memory error a caller can see is the typed
//! [`ExecError::MemoryGrantExceeded`], and only when spill is disabled.

use std::sync::Arc;

use proptest::prelude::*;
use xprs_disk::StripedLayout;
use xprs_executor::{ExecConfig, ExecError, ExecReport, Executor, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::MachineConfig;
use xprs_storage::Catalog;
use xprs_workload::{generate_oversized_build, OversizedBuildSpec, OversizedBuildWorkload};

const N_DISKS: u32 = 4;
/// Tiny pool the oversized builds are sized against.
const POOL_PAGES: u64 = 32;

/// An oversized-build spec with fatter rows than the bench default, keeping
/// the join outputs (quadratic in tuples-per-page) test-sized while the
/// page demand stays ≥ `demand_factor`× the pool.
fn spec(seed: u64, demand_factor: u64, n_queries: usize) -> OversizedBuildSpec {
    let mut s = OversizedBuildSpec::paper(POOL_PAGES, demand_factor, n_queries, seed);
    s.blen = 200;
    s
}

fn catalog_for(wl: &OversizedBuildWorkload) -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(N_DISKS));
    wl.load_into(&mut cat);
    Arc::new(cat)
}

/// One join query per generated pair, all submitted in a single run so the
/// builds contend for admission concurrently.
fn runs_for(cat: &Arc<Catalog>, wl: &OversizedBuildWorkload) -> Vec<QueryRun> {
    let opt = TwoPhaseOptimizer::paper_default();
    wl.pairs
        .iter()
        .map(|pair| {
            let q = Query::join().rel(&pair.build, 1.0).rel(&pair.probe, 1.0).on(0, 1).build();
            let optimized = opt.optimize_catalog(cat, &q, Costing::SeqCost).expect("plan");
            QueryRun {
                optimized,
                bindings: vec![
                    RelBinding { name: pair.build.clone(), pred: (i32::MIN, i32::MAX) },
                    RelBinding { name: pair.probe.clone(), pred: (i32::MIN, i32::MAX) },
                ],
            }
        })
        .collect()
}

fn run_with(
    cfg: ExecConfig,
    cat: &Arc<Catalog>,
    runs: &[QueryRun],
) -> Result<ExecReport, ExecError> {
    let mut policy =
        AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(MachineConfig::paper_default()));
    Executor::new(cfg, cat.clone()).run(runs, &mut policy)
}

/// The grants-on configuration under test: a pool the workload overwhelms.
fn granted_cfg() -> ExecConfig {
    let mut cfg = ExecConfig::unthrottled().with_memory_grants();
    cfg.bufpool_pages = POOL_PAGES as usize;
    cfg
}

/// Check every admission invariant of a grants-on report against the
/// uncontended reference, returning an error description on the first
/// violation (proptest-friendly).
fn check_invariants(granted: &ExecReport, reference: &ExecReport) -> Result<(), String> {
    if granted.results.len() != reference.results.len() {
        return Err("result count mismatch".into());
    }
    for (i, (g, r)) in granted.results.iter().zip(&reference.results).enumerate() {
        if g.rows.rows != r.rows.rows {
            return Err(format!(
                "query {i}: rows diverge from the uncontended run ({} vs {} tuples)",
                g.rows.rows.len(),
                r.rows.rows.len()
            ));
        }
    }
    if granted.mem_granted_pages == 0 {
        return Err("no pages were ever granted".into());
    }
    if granted.mem_granted_pages != granted.mem_released_pages {
        return Err(format!(
            "grant ledger out of balance: granted {} released {}",
            granted.mem_granted_pages, granted.mem_released_pages
        ));
    }
    if granted.pool_pinned_at_exit != 0 {
        return Err(format!("{} pages still pinned at exit", granted.pool_pinned_at_exit));
    }
    Ok(())
}

/// The acceptance scenario: three concurrent joins whose builds total 4× the
/// pool. All complete (no `PoolExhausted`, no error at all), rows match the
/// uncontended run byte-for-byte, the ledger balances, spill engaged.
#[test]
fn oversized_builds_complete_with_grants_and_spill() {
    let wl = generate_oversized_build(&spec(0xAD0551, 4, 3));
    assert!(wl.total_build_pages() >= 4 * POOL_PAGES);
    let cat = catalog_for(&wl);
    let runs = runs_for(&cat, &wl);

    let granted = run_with(granted_cfg(), &cat, &runs).expect("grants-on run failed");
    let reference = run_with(ExecConfig::unthrottled(), &cat, &runs).expect("reference run failed");

    check_invariants(&granted, &reference).unwrap();
    // Builds several times the grant must actually have cut spill runs.
    assert!(granted.spill_chunks > 0, "oversized builds never spilled");
    assert!(granted.spill_rows > 0);
    // The reference run had grants off: its ledger must be empty.
    assert_eq!(reference.mem_granted_pages, 0);
    assert_eq!(reference.spill_chunks, 0);
}

/// With spill disabled, a demand exceeding the whole pool is refused with
/// the typed error — not `PoolExhausted`, not a panic, not a hang.
#[test]
fn over_pool_demand_without_spill_is_refused_typed() {
    let wl = generate_oversized_build(&spec(0xBAD, 4, 1));
    let cat = catalog_for(&wl);
    let runs = runs_for(&cat, &wl);

    let err = run_with(granted_cfg().without_spill(), &cat, &runs)
        .expect_err("a 4x-pool build must be refused when spill is off");
    match err {
        ExecError::MemoryGrantExceeded { demand_pages, capacity_pages, .. } => {
            assert!(
                demand_pages > capacity_pages,
                "refusal with demand {demand_pages} <= capacity {capacity_pages}"
            );
        }
        other => panic!("expected MemoryGrantExceeded, got: {other}"),
    }
}

/// Admission queueing is observable: with several oversized builds racing
/// for a pool that admits at most one clamped grant at a time, at least one
/// fragment must wait in the FIFO.
#[test]
fn concurrent_oversized_builds_wait_in_the_admission_queue() {
    let wl = generate_oversized_build(&spec(0x5EED, 6, 4));
    let cat = catalog_for(&wl);
    let runs = runs_for(&cat, &wl);
    let report = run_with(granted_cfg(), &cat, &runs).expect("run failed");
    assert!(
        report.mem_grant_waits > 0,
        "4 concurrent over-pool builds never queued for admission"
    );
}

proptest! {
    // Each case is two full executor runs over a generated catalog; keep
    // the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed and workload shape in the ≥4× regime: the grants-on run
    /// completes (zero `PoolExhausted` surfaced), returns byte-identical
    /// rows to the uncontended grants-off run, balances its grant ledger,
    /// and leaves no page pinned.
    #[test]
    fn concurrent_admission_is_safe_and_answer_preserving(
        seed in 0u64..1_000_000,
        demand_factor in 4u64..=6,
        n_queries in 2usize..=3,
    ) {
        let wl = generate_oversized_build(&spec(seed, demand_factor, n_queries));
        let cat = catalog_for(&wl);
        let runs = runs_for(&cat, &wl);
        let granted = run_with(granted_cfg(), &cat, &runs);
        prop_assert!(granted.is_ok(), "grants-on run died: {}", granted.unwrap_err());
        let granted = granted.unwrap();
        let reference = run_with(ExecConfig::unthrottled(), &cat, &runs);
        prop_assert!(reference.is_ok(), "reference run died: {}", reference.unwrap_err());
        let reference = reference.unwrap();
        let verdict = check_invariants(&granted, &reference);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
}
