//! Chaos tests: the executor's self-healing data path under injected
//! faults. A multi-fragment query survives transient read errors (absorbed
//! by bounded retries), a sustained disk slowdown (detected by the
//! degradation patrol, which recalibrates the policy), and a worker death
//! (detected by the heartbeat patrol, which reclaims the dead slot's
//! partition share and staffs a replacement) — and still returns results
//! identical to a fault-free run.

use std::sync::{Arc, Mutex};

use xprs_disk::{FaultPlan, StripedLayout};
use xprs_executor::{
    ExecConfig, ExecError, ExecReport, Executor, QueryRun, RelBinding, READ_ATTEMPTS,
};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::trace::{
    action_stream, parse_jsonl, replay_through_fluid, JsonlSink, SharedSink, TraceRecord,
};
use xprs_scheduler::MachineConfig;
use xprs_storage::{Catalog, Datum, Schema, Tuple};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0xC4A0_u64;
    for (name, n, key_mod, blen) in [
        ("fat", 400u64, 100u64, 800usize), // IO-heavy: ~10 tuples per page
        ("thin", 3000, 150, 16),           // CPU-heavy: many tuples per page
    ] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let a = (lcg(&mut seed) % key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(blen))])
            })
            .collect();
        cat.load(name, rows);
        cat.build_index(name, false);
    }
    Arc::new(cat)
}

fn m() -> MachineConfig {
    MachineConfig::paper_default()
}

/// The multi-fragment workload: a two-way join (build fragment + probe
/// fragment, dependency-ordered).
fn join_run(cat: &Arc<Catalog>) -> QueryRun {
    let q = Query::join().rel("fat", 1.0).rel("thin", 1.0).on(0, 1).build();
    let optimized = TwoPhaseOptimizer::paper_default()
        .optimize_catalog(cat, &q, Costing::SeqCost)
        .expect("plan");
    QueryRun {
        optimized,
        bindings: vec![
            RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) },
            RelBinding { name: "thin".into(), pred: (i32::MIN, i32::MAX) },
        ],
    }
}

fn run_with(cat: &Arc<Catalog>, cfg: ExecConfig, sink: Option<SharedSink>) -> ExecReport {
    let mut exec = Executor::new(cfg, cat.clone());
    if let Some(sink) = sink {
        exec = exec.with_trace(sink);
    }
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
    exec.run(&[join_run(cat)], &mut policy).expect("run failed")
}

/// The issue's acceptance scenario: two transient read errors + one
/// sustained disk slowdown + one worker death, on a multi-fragment query.
/// The run completes with results identical to the fault-free run, the
/// patrol recovers the dead worker, the captured trace records at least one
/// recalibration, and the trace replays through the fluid model.
#[test]
fn chaos_run_matches_fault_free_run_and_records_recalibration() {
    let cat = catalog();
    let fat = cat.get("fat").unwrap().heap.rel();

    let baseline = run_with(&cat, ExecConfig::unthrottled(), None);

    let plan = Arc::new(
        FaultPlan::new()
            // Two transient read errors, each absorbed by one retry.
            .with_read_error(fat, 3, 1)
            .with_read_error(fat, 17, 1)
            // Disk 0 degrades to one-eighth speed early in the run.
            .with_slowdown(0, 4, 8.0)
            // Slot 0 of the build fragment dies after two pages.
            .with_worker_death(0, 0, 2),
    );
    let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
    let shared: SharedSink = sink.clone();
    let mut cfg = ExecConfig::unthrottled().with_faults(plan.clone()).with_recalibration(0.2);
    cfg.recal_min_requests = 16; // the test workload is small; trust short windows
    let report = run_with(&cat, cfg, Some(shared));

    // Every scheduled fault actually fired.
    assert_eq!(plan.stats().read_errors_fired(), 2, "both transient errors must fire");
    assert_eq!(plan.stats().deaths_fired(), 1, "the worker death must fire");
    assert!(plan.stats().slow_requests() > 0, "the slowdown must degrade requests");

    // Self-healing: the dead slot was reclaimed and the drift recalibrated.
    assert!(report.worker_recoveries >= 1, "patrol must replace the dead worker");
    assert!(report.recalibrations >= 1, "observed-rate drift must trigger recalibration");
    eprintln!(
        "chaos e2e: recoveries={} recalibrations={} slow_requests={} reads={} rows={}",
        report.worker_recoveries,
        report.recalibrations,
        plan.stats().slow_requests(),
        report.stats.reads,
        report.results[0].rows.rows.len(),
    );

    // Result equivalence: the materialized output is key-sorted and every
    // equal-key row is identical, so row-for-row equality is exact.
    assert_eq!(
        baseline.results[0].rows.rows, report.results[0].rows.rows,
        "chaos run must return the fault-free result"
    );
    assert!(!report.results[0].rows.rows.is_empty(), "vacuous comparison");

    // The captured trace carries the recalibration and replays.
    let Ok(cell) = Arc::try_unwrap(sink) else { unreachable!("sink still shared") };
    let owned = cell.into_inner().unwrap();
    assert!(owned.io_error().is_none());
    let text = String::from_utf8(owned.into_inner()).unwrap();
    let records = parse_jsonl(&text).expect("well-formed chaos trace");
    let recals = records
        .iter()
        .filter(|r| matches!(r, TraceRecord::Recalibrate { .. }))
        .count();
    assert!(recals >= 1, "trace must record the recalibration");
    let replayed = replay_through_fluid(&records).expect("chaos trace must replay");
    assert!(!replayed.is_empty(), "replay must re-derive a schedule");
    assert!(!action_stream(&records).is_empty(), "trace must carry scheduler actions");
}

/// A read error outlasting every retry escalates to the typed
/// [`ExecError::IoFault`] with the run drained, not a panic or a hang.
#[test]
fn unrecoverable_read_error_surfaces_as_typed_fault() {
    let cat = catalog();
    let fat = cat.get("fat").unwrap().heap.rel();
    let plan = Arc::new(FaultPlan::new().with_read_error(fat, 5, READ_ATTEMPTS));
    let exec = Executor::new(ExecConfig::unthrottled().with_faults(plan), cat.clone());
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
    let err = exec.run(&[join_run(&cat)], &mut policy).expect_err("fault must surface");
    match err {
        ExecError::IoFault { fault, .. } => {
            assert_eq!(fault.block, 5);
            assert_eq!(fault.attempts, READ_ATTEMPTS);
        }
        other => panic!("expected IoFault, got {other}"),
    }
}

/// A stalled (not dead) worker that outlives the patrol's grace window is a
/// *false positive*: its share is reclaimed and a replacement staffed, yet
/// when it wakes it completes its in-flight unit and retires cleanly — the
/// result must still be exactly-once correct.
#[test]
fn stalled_worker_false_positive_is_harmless() {
    let cat = catalog();
    let baseline = run_with(&cat, ExecConfig::unthrottled(), None);

    let plan = Arc::new(FaultPlan::new().with_worker_stall(0, 0, 1, 60));
    let mut cfg = ExecConfig::unthrottled().with_faults(plan.clone());
    cfg.patrol_ms = 5;
    cfg.patrol_grace = 2;
    let report = run_with(&cat, cfg, None);

    assert_eq!(plan.stats().stalls_fired(), 1, "the stall must fire");
    assert_eq!(
        baseline.results[0].rows.rows, report.results[0].rows.rows,
        "a falsely-reaped stalled worker must not corrupt the result"
    );
}

/// Satellite audit: a retry storm against a pool too small for the scan's
/// pin pressure must degrade gracefully (bypass or miss), never livelock or
/// leak pins — the run completes and the result is unchanged.
#[test]
fn retry_storm_under_tiny_pool_completes_without_pin_leaks() {
    let cat = catalog();
    let baseline = run_with(&cat, ExecConfig::unthrottled(), None);

    let fat = &cat.get("fat").unwrap().heap;
    let thin = &cat.get("thin").unwrap().heap;
    let mut plan = FaultPlan::new();
    let mut scheduled = 0u64;
    for (rel, blocks) in [(fat.rel(), fat.n_blocks()), (thin.rel(), thin.n_blocks())] {
        for b in 0..blocks.min(24) {
            // Recovered on the final attempt: maximum retry pressure per block.
            plan = plan.with_read_error(rel, b, READ_ATTEMPTS - 1);
            scheduled += 1;
        }
    }
    let plan = Arc::new(plan);
    let mut cfg = ExecConfig::unthrottled().with_faults(plan.clone());
    cfg.bufpool_pages = 8; // far below the scan's concurrent pin demand
    cfg.bufpool_shards = 8;
    let report = run_with(&cat, cfg, None);

    assert_eq!(
        plan.stats().read_errors_fired(),
        scheduled * u64::from(READ_ATTEMPTS - 1),
        "every scheduled transient error must fire"
    );
    assert_eq!(
        baseline.results[0].rows.rows, report.results[0].rows.rows,
        "retry storm must not change the result"
    );
}
