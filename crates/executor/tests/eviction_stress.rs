//! Eviction stress: the larger-than-memory workload generator driving a
//! tiny sharded buffer pool (8 frames, 8 shards — one frame per shard)
//! through sustained eviction pressure. The run must land below a 50% hit
//! rate, the pool's accounting ledger (`hits + misses + bypasses`) must
//! equal the machine's independently-counted page reads — per shard and in
//! total — no pin may survive the run, and the rows must match a fully
//! cached baseline under both morsel modes.

use std::sync::Arc;

use xprs_disk::StripedLayout;
use xprs_executor::{ExecConfig, ExecReport, Executor, MorselMode, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::MachineConfig;
use xprs_storage::Catalog;
use xprs_workload::{generate_disk_resident, DiskResidentSpec, DiskResidentWorkload};

/// Frames in the stressed pool; the workload spills it 8× per relation.
const TINY_POOL_PAGES: usize = 8;
const SPILL_FACTOR: u64 = 8;
const SEED: u64 = 0xE71C;

fn workload() -> (Arc<Catalog>, DiskResidentWorkload) {
    let spec = DiskResidentSpec::paper(TINY_POOL_PAGES as u64, SPILL_FACTOR, SEED);
    let workload = generate_disk_resident(&spec);
    let mut cat = Catalog::new(StripedLayout::new(4));
    workload.load_into(&mut cat);
    (Arc::new(cat), workload)
}

/// Full scans of every disk-resident relation, twice each — revisiting
/// each relation is what gives a big pool its hits and a tiny pool its
/// evictions.
fn scan_runs(cat: &Arc<Catalog>, workload: &DiskResidentWorkload) -> Vec<QueryRun> {
    let optimizer = TwoPhaseOptimizer::paper_default();
    workload
        .relations
        .iter()
        .chain(workload.relations.iter())
        .map(|rel| {
            let q = Query::selection(&rel.name, 1.0);
            QueryRun {
                optimized: optimizer.optimize_catalog(cat, &q, Costing::SeqCost).expect("plan"),
                bindings: vec![RelBinding {
                    name: rel.name.clone(),
                    pred: (i32::MIN, i32::MAX),
                }],
            }
        })
        .collect()
}

fn run_with_pool(
    cat: &Arc<Catalog>,
    workload: &DiskResidentWorkload,
    pool_pages: usize,
    mode: MorselMode,
) -> ExecReport {
    let mut cfg = ExecConfig::unthrottled().with_morsel_mode(mode);
    cfg.bufpool_pages = pool_pages;
    cfg.bufpool_shards = TINY_POOL_PAGES;
    let exec = Executor::new(cfg, cat.clone());
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(
        MachineConfig::paper_default(),
    ));
    exec.run(&scan_runs(cat, workload), &mut policy).expect("eviction stress run failed")
}

/// Rows in a canonical total order: key, then rendered tuple.
fn canonical(rows: &[(i32, xprs_storage::Tuple)]) -> Vec<(i32, String)> {
    let mut v: Vec<(i32, String)> = rows.iter().map(|(k, t)| (*k, format!("{t:?}"))).collect();
    v.sort();
    v
}

#[test]
fn tiny_shard_pool_thrashes_with_an_exact_ledger_and_no_pin_leaks() {
    let (cat, workload) = workload();
    let pages_per_scan: u64 = workload.relations.iter().map(|r| r.n_pages()).sum();
    // Baseline: a pool big enough to cache both relations, so the second
    // pass over each is all hits and the rows are the reference output.
    let baseline =
        run_with_pool(&cat, &workload, (pages_per_scan * 2) as usize, MorselMode::stealing());
    assert!(
        baseline.stats.pool.hit_rate() > 0.45,
        "cacheable baseline should hit on its second pass, got {:.3}",
        baseline.stats.pool.hit_rate()
    );

    for mode in [MorselMode::stealing(), MorselMode::StaticShares] {
        let report = run_with_pool(&cat, &workload, TINY_POOL_PAGES, mode);
        let pool = &report.stats.pool;

        // The generator's spill sizing must actually defeat the pool.
        assert!(
            pool.hit_rate() < 0.5,
            "{mode:?}: tiny pool should thrash, hit_rate={:.3}",
            pool.hit_rate()
        );

        // Ledger: every page read the machine counted is accounted to
        // exactly one of hit / miss / bypass — in aggregate...
        assert_eq!(
            pool.hits + pool.misses + pool.bypasses,
            report.stats.reads,
            "{mode:?}: pool ledger out of balance"
        );
        // ...and the machine's read count is itself grounded: two full
        // scans of each relation, page for page.
        assert_eq!(report.stats.reads, pages_per_scan * 2, "{mode:?}: unexpected read count");
        // Per-shard counters sum to the aggregate (no shard double-counts).
        let shard_sum: u64 =
            report.pool_shards.iter().map(|s| s.hits + s.misses + s.bypasses).sum();
        assert_eq!(shard_sum, report.stats.reads, "{mode:?}: shard ledgers out of balance");

        // Pin-leak freedom: one-frame shards make even a single leaked pin
        // permanent, and eviction requires an unpinned victim.
        assert_eq!(report.pool_pinned_at_exit, 0, "{mode:?}: leaked buffer-pool pins");

        // Eviction pressure was real, not all bypasses.
        assert!(
            pool.evictions > 0,
            "{mode:?}: a thrashing pool must evict, stats={pool:?}"
        );

        // Same rows as the cacheable baseline, query for query. Output is
        // key-sorted but tie order among equal keys follows run arrival,
        // which is timing-dependent — compare canonical multisets here;
        // the stable-order guarantee is covered by the parity test, whose
        // payloads are key-determined.
        assert_eq!(report.results.len(), baseline.results.len());
        for (got, want) in report.results.iter().zip(&baseline.results) {
            assert_eq!(
                canonical(&got.rows.rows),
                canonical(&want.rows.rows),
                "{mode:?}: rows diverged under eviction"
            );
        }
    }
}
