//! End-to-end executor tests: real threads, real data, results checked
//! against a naive reference evaluator.

use std::collections::HashMap;
use std::sync::Arc;

use xprs_disk::StripedLayout;
use xprs_executor::{DataPath, ExecConfig, ExecError, Executor, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Plan, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::{MachineConfig, SchedulePolicy};
use xprs_storage::{Catalog, Datum, Schema, Tuple};

/// Deterministic pseudo-random stream.
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

/// Catalog with three relations of different shapes, indexed on `a`.
fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0xD1CE_u64;
    for (name, n, key_mod, blen) in [
        ("fat", 400u64, 100u64, 800usize),  // few tuples per page → IO-heavy scan
        ("thin", 3000, 150, 16),            // many tuples per page → CPU-heavy scan
        ("mid", 1200, 120, 120),
    ] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let a = (lcg(&mut seed) % key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(blen))])
            })
            .collect();
        cat.load(name, rows);
        cat.build_index(name, false);
    }
    Arc::new(cat)
}

/// Reference: selection result as a multiset of keys.
fn ref_selection(cat: &Catalog, name: &str, pred: (i32, i32)) -> HashMap<i32, usize> {
    let mut out = HashMap::new();
    for (_, t) in cat.get(name).unwrap().heap.scan() {
        let a = t.get(0).as_int().unwrap();
        if a >= pred.0 && a <= pred.1 {
            *out.entry(a).or_insert(0) += 1;
        }
    }
    out
}

/// Reference: natural-join-on-`a` cardinality per key across relations.
fn ref_join(cat: &Catalog, specs: &[(&str, (i32, i32))]) -> HashMap<i32, usize> {
    let mut acc: Option<HashMap<i32, usize>> = None;
    for (name, pred) in specs {
        let h = ref_selection(cat, name, *pred);
        acc = Some(match acc {
            None => h,
            Some(prev) => {
                let mut next = HashMap::new();
                for (k, c) in prev {
                    if let Some(c2) = h.get(&k) {
                        next.insert(k, c * c2);
                    }
                }
                next
            }
        });
    }
    acc.unwrap()
}

fn result_multiset(rows: &xprs_executor::Materialized) -> HashMap<i32, usize> {
    let mut out = HashMap::new();
    for (k, _) in &rows.rows {
        *out.entry(*k).or_insert(0) += 1;
    }
    out
}

fn optimizer() -> TwoPhaseOptimizer {
    TwoPhaseOptimizer::paper_default()
}

fn run_one(
    cat: &Arc<Catalog>,
    q: &Query,
    bindings: Vec<RelBinding>,
    costing: Costing,
    policy: &mut dyn SchedulePolicy,
) -> xprs_executor::ExecReport {
    let optimized = optimizer().optimize_catalog(cat, q, costing).expect("plan");
    let exec = Executor::new(ExecConfig::unthrottled(), cat.clone());
    exec.run(&[QueryRun { optimized, bindings }], policy).expect("run failed")
}

fn m() -> MachineConfig {
    MachineConfig::paper_default()
}

#[test]
fn parallel_selection_matches_reference() {
    let cat = catalog();
    let q = Query::selection("thin", 0.4);
    let bindings = vec![RelBinding { name: "thin".into(), pred: (0, 59) }];
    let mut policy = IntraOnly::new(m(), true);
    let report = run_one(&cat, &q, bindings, Costing::SeqCost, &mut policy);
    let got = result_multiset(&report.results[0].rows);
    let want = ref_selection(&cat, "thin", (0, 59));
    assert_eq!(got, want);
    assert!(report.stats.reads > 0);
}

#[test]
fn two_way_join_matches_reference() {
    let cat = catalog();
    let q = Query::join().rel("fat", 1.0).rel("thin", 1.0).on(0, 1).build();
    let bindings = vec![
        RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) },
        RelBinding { name: "thin".into(), pred: (i32::MIN, i32::MAX) },
    ];
    let mut policy = IntraOnly::new(m(), true);
    let report = run_one(&cat, &q, bindings, Costing::SeqCost, &mut policy);
    let got = result_multiset(&report.results[0].rows);
    let want = ref_join(&cat, &[("fat", (i32::MIN, i32::MAX)), ("thin", (i32::MIN, i32::MAX))]);
    assert_eq!(got, want);
}

#[test]
fn three_way_join_under_every_policy_agrees() {
    let cat = catalog();
    let q = Query::join()
        .rel("fat", 1.0)
        .rel("thin", 1.0)
        .rel("mid", 1.0)
        .on(0, 1)
        .on(1, 2)
        .build();
    let bindings = vec![
        RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) },
        RelBinding { name: "thin".into(), pred: (i32::MIN, i32::MAX) },
        RelBinding { name: "mid".into(), pred: (i32::MIN, i32::MAX) },
    ];
    let want = ref_join(
        &cat,
        &[
            ("fat", (i32::MIN, i32::MAX)),
            ("thin", (i32::MIN, i32::MAX)),
            ("mid", (i32::MIN, i32::MAX)),
        ],
    );
    for costing in [Costing::SeqCost, Costing::ParCost] {
        let mut intra = IntraOnly::new(m(), true);
        let mut with_adj = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        let mut no_adj = AdaptiveScheduler::new(AdaptiveConfig::without_adjustment(m()));
        let policies: Vec<&mut dyn SchedulePolicy> = vec![&mut intra, &mut with_adj, &mut no_adj];
        for policy in policies {
            let report = run_one(&cat, &q, bindings.clone(), costing, policy);
            let got = result_multiset(&report.results[0].rows);
            assert_eq!(got, want, "policy result mismatch under {costing:?}");
        }
    }
}

#[test]
fn selective_join_with_predicates() {
    let cat = catalog();
    let q = Query::join().rel("mid", 0.5).rel("thin", 0.3).on(0, 1).build();
    let bindings = vec![
        RelBinding { name: "mid".into(), pred: (0, 59) },
        RelBinding { name: "thin".into(), pred: (20, 80) },
    ];
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
    let report = run_one(&cat, &q, bindings, Costing::ParCost, &mut policy);
    let got = result_multiset(&report.results[0].rows);
    let want = ref_join(&cat, &[("mid", (0, 59)), ("thin", (20, 80))]);
    assert_eq!(got, want);
    // Keys outside the intersection of predicates cannot appear.
    assert!(got.keys().all(|k| (20..=59).contains(k)));
}

#[test]
fn multi_query_run_returns_each_querys_rows() {
    let cat = catalog();
    let mk = |name: &str, pred: (i32, i32)| {
        let q = Query::selection(name, 1.0);
        let optimized = optimizer().optimize_catalog(&cat, &q, Costing::SeqCost).expect("plan");
        QueryRun { optimized, bindings: vec![RelBinding { name: name.into(), pred }] }
    };
    let runs = vec![mk("fat", (0, 49)), mk("thin", (0, 9)), mk("mid", (100, 119))];
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
    let exec = Executor::new(ExecConfig::unthrottled(), cat.clone());
    let report = exec.run(&runs, &mut policy).expect("run failed");
    assert_eq!(report.results.len(), 3);
    assert_eq!(result_multiset(&report.results[0].rows), ref_selection(&cat, "fat", (0, 49)));
    assert_eq!(result_multiset(&report.results[1].rows), ref_selection(&cat, "thin", (0, 9)));
    assert_eq!(result_multiset(&report.results[2].rows), ref_selection(&cat, "mid", (100, 119)));
}

/// A worker panic must come back as [`ExecError::WorkerPanicked`] with the
/// remaining workers drained — not take the process down or hang the
/// master. Forced by optimizing an index-scan plan against an indexed
/// catalog, then executing it on a catalog whose relation has no index.
#[test]
fn worker_panic_surfaces_as_exec_error() {
    let indexed = catalog();
    let q = Query::selection("thin", 0.05);
    let bindings = vec![RelBinding { name: "thin".into(), pred: (0, 7) }];
    let mut optimized = optimizer().optimize_catalog(&indexed, &q, Costing::SeqCost).expect("plan");
    // Force the index-access path; a selection decomposes into one fragment
    // either way, so only the worker's driver changes.
    optimized.plan = Plan::IndexScan { rel: 0 };

    // Same relation, same rows, no index.
    let mut bare = Catalog::new(xprs_disk::StripedLayout::new(4));
    bare.create("thin", Schema::paper_rel());
    let rows: Vec<Tuple> =
        indexed.get("thin").unwrap().heap.scan().map(|(_, t)| t.clone()).collect();
    bare.load("thin", rows);

    let exec = Executor::new(ExecConfig::unthrottled(), Arc::new(bare));
    let mut policy = IntraOnly::new(m(), true);
    let err = exec
        .run(&[QueryRun { optimized, bindings }], &mut policy)
        .expect_err("run over a missing index must fail");
    match err {
        ExecError::WorkerPanicked { message, .. } => {
            assert!(message.contains("index"), "unexpected panic payload: {message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

#[test]
fn empty_selection_completes() {
    let cat = catalog();
    let q = Query::selection("thin", 0.01);
    // Predicate range matching nothing.
    let bindings = vec![RelBinding { name: "thin".into(), pred: (100_000, 100_001) }];
    let mut policy = IntraOnly::new(m(), true);
    let report = run_one(&cat, &q, bindings, Costing::SeqCost, &mut policy);
    assert!(report.results[0].rows.rows.is_empty());
}

/// The batched/merged tuple stream must be a **permutation** of the seed
/// (global-lock) path's stream for the same plan: identical multiset of
/// rows, merely flushed in batches instead of pushed one tuple at a time.
#[test]
fn decontended_output_is_permutation_of_global_lock_output() {
    let cat = catalog();
    let q = Query::join().rel("mid", 0.5).rel("thin", 0.5).on(0, 1).build();
    let bindings = vec![
        RelBinding { name: "mid".into(), pred: (0, 79) },
        RelBinding { name: "thin".into(), pred: (10, 99) },
    ];
    let optimized = optimizer().optimize_catalog(&cat, &q, Costing::ParCost).expect("plan");
    let run = |path: DataPath| {
        let exec = Executor::new(ExecConfig::unthrottled().with_data_path(path), cat.clone());
        let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
        let run = QueryRun { optimized: optimized.clone(), bindings: bindings.clone() };
        exec.run(&[run], &mut policy).expect("run failed")
    };
    let contended = run(DataPath::GlobalLock);
    let decontended = run(DataPath::Decontended);
    // Materialized output is key-sorted, so full row-by-row equality holds
    // (not just multiset equality) if and only if the unsorted streams were
    // permutations of each other.
    assert_eq!(
        contended.results[0].rows.rows, decontended.results[0].rows.rows,
        "data paths disagree on the result stream"
    );
    assert!(!decontended.results[0].rows.rows.is_empty(), "vacuous comparison");
}

#[test]
fn throttled_run_still_produces_correct_results() {
    // A fast throttle (2000× real time) exercises the sleep paths without
    // slowing the suite; correctness must be unaffected.
    let cat = catalog();
    let q = Query::join().rel("fat", 1.0).rel("thin", 1.0).on(0, 1).build();
    let bindings = vec![
        RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) },
        RelBinding { name: "thin".into(), pred: (i32::MIN, i32::MAX) },
    ];
    let optimized = optimizer().optimize_catalog(&cat, &q, Costing::ParCost).expect("plan");
    let exec = Executor::new(ExecConfig::scaled(2000.0), cat.clone());
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(m()));
    let report = exec.run(&[QueryRun { optimized, bindings }], &mut policy).expect("run failed");
    let got = result_multiset(&report.results[0].rows);
    let want = ref_join(&cat, &[("fat", (i32::MIN, i32::MAX)), ("thin", (i32::MIN, i32::MAX))]);
    assert_eq!(got, want);
    assert!(report.wall > 0.0);
    assert!(report.stats.disk.total() > 0);
}
