//! Cancellation safety under arbitrary timing: queries cancelled at random
//! unit boundaries — including mid-spill (oversized builds under a tiny
//! granted pool) and mid-steal (morsel mode is the stealing default) — must
//! leave a balanced grant ledger, zero pinned pages at exit, and
//! byte-identical rows for every query that survived.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use xprs_disk::StripedLayout;
use xprs_executor::{CancelToken, ExecConfig, ExecReport, Executor, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::MachineConfig;
use xprs_storage::Catalog;
use xprs_workload::{generate_oversized_build, OversizedBuildSpec, OversizedBuildWorkload};

/// Tiny pool so the oversized builds must spill under grants — a cancel
/// landing mid-run has a good chance of landing mid-spill.
const POOL_PAGES: u64 = 32;

fn spec(seed: u64, n_queries: usize) -> OversizedBuildSpec {
    let mut s = OversizedBuildSpec::paper(POOL_PAGES, 4, n_queries, seed);
    s.blen = 200;
    s
}

fn catalog_for(wl: &OversizedBuildWorkload) -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    wl.load_into(&mut cat);
    Arc::new(cat)
}

fn runs_for(cat: &Arc<Catalog>, wl: &OversizedBuildWorkload) -> Vec<QueryRun> {
    let opt = TwoPhaseOptimizer::paper_default();
    wl.pairs
        .iter()
        .map(|pair| {
            let q = Query::join().rel(&pair.build, 1.0).rel(&pair.probe, 1.0).on(0, 1).build();
            QueryRun {
                optimized: opt.optimize_catalog(cat, &q, Costing::SeqCost).expect("plan"),
                bindings: vec![
                    RelBinding { name: pair.build.clone(), pred: (i32::MIN, i32::MAX) },
                    RelBinding { name: pair.probe.clone(), pred: (i32::MIN, i32::MAX) },
                ],
            }
        })
        .collect()
}

fn granted_cfg() -> ExecConfig {
    let mut cfg = ExecConfig::unthrottled().with_memory_grants().with_patrol(2, 3);
    cfg.bufpool_pages = POOL_PAGES as usize;
    cfg
}

fn policy() -> AdaptiveScheduler {
    AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(MachineConfig::paper_default()))
}

/// Run `runs` with per-query tokens, firing each token from a side thread
/// after its delay (`None` = pre-fired before the run starts, hitting the
/// master's first poll; `Some(µs)` = mid-run, hitting whatever unit or
/// morsel boundary the race lands on).
fn run_with_cancels(
    cfg: ExecConfig,
    cat: &Arc<Catalog>,
    runs: &[QueryRun],
    delays: &[Option<Option<u64>>],
) -> ExecReport {
    assert_eq!(runs.len(), delays.len());
    let tokens: Vec<CancelToken> = delays.iter().map(|_| CancelToken::new()).collect();
    let mut firers = Vec::new();
    for (tok, delay) in tokens.iter().zip(delays) {
        match delay {
            None => {}
            Some(None) => tok.cancel(),
            Some(Some(micros)) => {
                let tok = tok.clone();
                let micros = *micros;
                firers.push(std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_micros(micros));
                    tok.cancel();
                }));
            }
        }
    }
    let report = Executor::new(cfg, cat.clone())
        .run_with_cancel(runs, &mut policy(), &tokens)
        .expect("cancelled run must still return a report");
    for f in firers {
        f.join().expect("cancel firer panicked");
    }
    report
}

/// The invariants every cancelled run must satisfy, against an
/// uncancelled reference.
fn check(report: &ExecReport, reference: &ExecReport) -> Result<(), String> {
    if report.mem_granted_pages != report.mem_released_pages {
        return Err(format!(
            "grant ledger out of balance: granted {} released {}",
            report.mem_granted_pages, report.mem_released_pages
        ));
    }
    if report.pool_pinned_at_exit != 0 {
        return Err(format!("{} pages still pinned at exit", report.pool_pinned_at_exit));
    }
    for (qi, cancelled) in report.cancelled.iter().enumerate() {
        if *cancelled {
            if !report.results[qi].rows.rows.is_empty() {
                return Err(format!("cancelled query {qi} still produced rows"));
            }
        } else if report.results[qi].rows.rows != reference.results[qi].rows.rows {
            return Err(format!(
                "surviving query {qi} diverged from the reference ({} vs {} tuples)",
                report.results[qi].rows.rows.len(),
                reference.results[qi].rows.rows.len()
            ));
        }
    }
    Ok(())
}

/// Acceptance: cancel *every* query before the run starts. All are
/// reported cancelled with empty outputs, nothing is granted-and-kept,
/// nothing stays pinned.
#[test]
fn mass_prefired_cancellation_releases_everything() {
    let wl = generate_oversized_build(&spec(0xCA9CE1, 3));
    let cat = catalog_for(&wl);
    let runs = runs_for(&cat, &wl);
    let delays = vec![Some(None); runs.len()];
    let report = run_with_cancels(granted_cfg(), &cat, &runs, &delays);
    assert!(report.cancelled.iter().all(|&c| c), "pre-fired tokens must cancel every query");
    assert!(report.results.iter().all(|r| r.rows.rows.is_empty()));
    assert_eq!(report.mem_granted_pages, report.mem_released_pages);
    assert_eq!(report.pool_pinned_at_exit, 0);
}

/// A deadline token behaves like a manual cancel: queries under an
/// immediate deadline settle as cancelled with balanced ledgers.
#[test]
fn deadline_tokens_cancel_like_manual_tokens() {
    let wl = generate_oversized_build(&spec(0xDEAD11, 2));
    let cat = catalog_for(&wl);
    let runs = runs_for(&cat, &wl);
    let tokens: Vec<CancelToken> =
        runs.iter().map(|_| CancelToken::with_deadline(Duration::from_micros(200))).collect();
    let report = Executor::new(granted_cfg(), cat.clone())
        .run_with_cancel(&runs, &mut policy(), &tokens)
        .expect("run must survive deadline cancellation");
    assert_eq!(report.mem_granted_pages, report.mem_released_pages);
    assert_eq!(report.pool_pinned_at_exit, 0);
    // A 200 µs deadline against multi-page spilling joins: at least one
    // query must actually have been cut short.
    assert!(report.cancelled.iter().any(|&c| c), "no deadline ever fired");
}

proptest! {
    // Each case is two full executor runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed, any cancel subset, and any fire delay (pre-fired or
    /// mid-run): the run returns, the grant ledger balances, no page stays
    /// pinned, cancelled queries yield no rows, and surviving queries are
    /// byte-identical to the uncancelled reference.
    #[test]
    fn cancellation_at_random_boundaries_is_leak_free_and_answer_preserving(
        seed in 0u64..1_000_000,
        cancel_mask in 1u8..7,           // at least one of 3 queries cancelled
        prefire in proptest::bool::ANY,
        delay_us in 0u64..30_000,        // mid-run window: 0–30 ms
    ) {
        let wl = generate_oversized_build(&spec(seed, 3));
        let cat = catalog_for(&wl);
        let runs = runs_for(&cat, &wl);
        let delays: Vec<Option<Option<u64>>> = (0..runs.len())
            .map(|qi| {
                if cancel_mask & (1 << qi) == 0 {
                    None
                } else if prefire && qi == 0 {
                    Some(None)
                } else {
                    Some(Some(delay_us + 500 * qi as u64))
                }
            })
            .collect();

        let report = run_with_cancels(granted_cfg(), &cat, &runs, &delays);
        let reference = Executor::new(ExecConfig::unthrottled(), cat.clone())
            .run(&runs, &mut policy());
        prop_assert!(reference.is_ok(), "reference run died: {}", reference.unwrap_err());
        let reference = reference.unwrap();

        // A query whose token never fired must not be reported cancelled.
        for (qi, d) in delays.iter().enumerate() {
            if d.is_none() {
                prop_assert!(!report.cancelled[qi], "uncancelled query {qi} marked cancelled");
            }
        }
        let verdict = check(&report, &reference);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
}

/// Regression: a token that fires *after* its query already completed is
/// a no-op — the query keeps its rows and is not reported cancelled. The
/// original bug marked such queries cancelled while their materialized
/// results stood, so `cancelled[qi] ⇒ empty rows` was violated.
#[test]
fn late_token_never_marks_a_completed_query_cancelled() {
    let wl = generate_oversized_build(&spec(819221, 3));
    let cat = catalog_for(&wl);
    let runs = runs_for(&cat, &wl);
    for _ in 0..10 {
        // One pre-fired, one racing completion, one never fired.
        let delays = vec![Some(None), Some(Some(9_107)), None];
        let report = run_with_cancels(granted_cfg(), &cat, &runs, &delays);
        for (qi, &c) in report.cancelled.iter().enumerate() {
            assert!(
                !c || report.results[qi].rows.rows.is_empty(),
                "query {qi} reported cancelled but kept {} rows",
                report.results[qi].rows.rows.len()
            );
        }
        assert!(!report.cancelled[2], "unfired token must never cancel");
        assert_eq!(report.mem_granted_pages, report.mem_released_pages);
        assert_eq!(report.pool_pinned_at_exit, 0);
    }
}
