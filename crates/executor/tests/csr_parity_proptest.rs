//! Property-based parity between the two `Materialized` builders: for any
//! input multiset — duplicate keys, negative keys, empty input — the legacy
//! hash build (`Materialized::build`: stable full sort + `HashMap` index)
//! and the sorted-runs/CSR build (`Materialized::from_runs`: stably sorted
//! chunks → stable k-way merge → counting-pass CSR) must agree on the row
//! vector itself, the key extrema, and the `matches()` multiset for every
//! probe key.
//!
//! Row-for-row equality (not just multiset equality) is the strong form of
//! the contract: the k-way merge breaks ties by run index then position, so
//! merging stably-sorted *consecutive* chunks reproduces the legacy stable
//! sort exactly, payloads included.

use proptest::prelude::*;
use xprs_executor::Materialized;
use xprs_storage::{Datum, Tuple};

/// Rows whose payload records the original input position, so two rows with
/// equal keys are still distinguishable and stability violations surface.
fn rows_from(spec: &[(i32, u8)]) -> Vec<(i32, Tuple)> {
    spec.iter()
        .enumerate()
        .map(|(pos, (k, tag))| {
            (*k, Tuple::from_values(vec![Datum::Int(*k), Datum::Text(format!("{pos}:{tag}"))]))
        })
        .collect()
}

/// Split `rows` into consecutive worker-style runs (each stably sorted by
/// key), the shape `OutputSink::harvest_runs` hands the master.
fn into_runs(rows: Vec<(i32, Tuple)>, chunk: usize) -> Vec<Vec<(i32, Tuple)>> {
    let mut runs: Vec<Vec<(i32, Tuple)>> = Vec::new();
    let mut it = rows.into_iter().peekable();
    while it.peek().is_some() {
        let mut run: Vec<(i32, Tuple)> = it.by_ref().take(chunk.max(1)).collect();
        run.sort_by_key(|(k, _)| *k);
        runs.push(run);
    }
    runs
}

fn probe_multiset(m: &Materialized, key: i32) -> Vec<Tuple> {
    let mut hits: Vec<Tuple> = m.matches(key).cloned().collect();
    hits.sort_by_key(|t| format!("{t:?}"));
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Legacy hash build and sorted-runs/CSR build agree on rows, extrema,
    /// and every probe's match multiset, for arbitrary keyed inputs.
    #[test]
    fn hash_and_csr_builds_agree(
        spec in proptest::collection::vec((-40i32..40, 0u8..4), 0..300),
        chunk in 1usize..48,
    ) {
        let rows = rows_from(&spec);
        let legacy = Materialized::build(rows.clone());
        let csr = Materialized::from_runs(into_runs(rows, chunk));

        prop_assert!(!legacy.is_csr());
        prop_assert!(csr.is_csr());
        prop_assert_eq!(&legacy.rows, &csr.rows, "row vectors must match exactly");
        prop_assert_eq!(legacy.min_key(), csr.min_key());
        prop_assert_eq!(legacy.max_key(), csr.max_key());

        // Probe every key in the input domain plus strict misses outside it.
        for key in -42i32..42 {
            prop_assert_eq!(
                probe_multiset(&legacy, key),
                probe_multiset(&csr, key),
                "matches({}) multisets differ", key
            );
        }
    }

    /// The cursor probe (`matches_from`) agrees with the plain probe on a
    /// monotone key sweep — the access pattern `MergeWith` produces.
    #[test]
    fn cursor_probe_agrees_on_monotone_sweeps(
        spec in proptest::collection::vec((-30i32..30, 0u8..4), 0..200),
    ) {
        let csr = Materialized::from_runs(into_runs(rows_from(&spec), 16));
        let mut cursor = 0usize;
        for key in -32i32..32 {
            let seek: Vec<Tuple> = csr.matches_from(key, &mut cursor).cloned().collect();
            let plain: Vec<Tuple> = csr.matches(key).cloned().collect();
            prop_assert_eq!(seek, plain, "seek({}) diverged from lookup", key);
        }
    }
}
