//! E2e regression for the join-materialization rebuild: every plan shape
//! the compiler knows (hash join, deep probe chain, nestloop, key-domain
//! merge, bushy) must return **byte-identical** results on the legacy
//! materialization path (flat harvest → full re-sort → hash index,
//! `DataPath::GlobalLock`) and the new one (locally sorted worker runs →
//! k-way merge → CSR index, `DataPath::Decontended`) — with the parallel
//! pool-farmed merge both above and below its engagement threshold, and
//! under a fault plan that kills a worker mid-build.
//!
//! Payloads are a pure function of `(relation, key)`, so rows bearing one
//! key are indistinguishable and row-for-row equality of the key-sorted
//! outputs is well-defined across paths.

use std::sync::Arc;

use xprs_disk::{FaultPlan, StripedLayout};
use xprs_executor::{DataPath, ExecConfig, ExecError, Executor, QueryRun, RelBinding};
use xprs_optimizer::cost::{CostModel, RelInfo};
use xprs_optimizer::{decompose, OptimizedQuery, Plan};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::MachineConfig;
use xprs_storage::{Catalog, Datum, Schema, Tuple};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

/// Four indexed relations; payload `b` depends only on `(relation, a)`.
fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0x1013_u64;
    for (name, n, key_mod) in
        [("r0", 300u64, 40u64), ("r1", 500, 50), ("r2", 400, 45), ("r3", 350, 35)]
    {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let a = (lcg(&mut seed) % key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text(format!("{name}:{a}"))])
            })
            .collect();
        cat.load(name, rows);
        cat.build_index(name, false);
    }
    Arc::new(cat)
}

fn scan(rel: usize) -> Box<Plan> {
    Box::new(Plan::SeqScan { rel })
}

fn iscan(rel: usize) -> Box<Plan> {
    Box::new(Plan::IndexScan { rel })
}

/// Build an [`OptimizedQuery`] around a hand-written plan shape, deriving
/// cost estimates and the fragment decomposition the same way the
/// optimizer's phase two does.
fn optimized_from_plan(cat: &Catalog, names: &[&str], plan: Plan) -> OptimizedQuery {
    let rels: Vec<RelInfo> = names
        .iter()
        .map(|n| {
            let rel = cat.get(n).expect("test relation");
            let s = rel.stats();
            RelInfo {
                n_tuples: s.n_tuples as f64,
                n_blocks: s.n_blocks as f64,
                n_distinct: s.n_distinct_a as f64,
                selectivity: 1.0,
                has_index: rel.index_on_a.is_some(),
                clustered: rel.index_on_a.as_ref().is_some_and(|i| i.is_clustered()),
            }
        })
        .collect();
    let costed = CostModel::paper_default().cost_plan(&plan, &rels);
    let fragments = decompose(&plan, &costed, 0);
    OptimizedQuery { seqcost: costed.cost.total_cost, parcost: 0.0, plan, fragments }
}

fn bindings(names: &[&str]) -> Vec<RelBinding> {
    names
        .iter()
        .map(|n| RelBinding { name: (*n).to_string(), pred: (i32::MIN, i32::MAX) })
        .collect()
}

fn run_shape(
    cat: &Arc<Catalog>,
    names: &[&str],
    plan: &Plan,
    mut cfg: ExecConfig,
    faults: Option<Arc<FaultPlan>>,
) -> Result<Vec<(i32, Tuple)>, ExecError> {
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let optimized = optimized_from_plan(cat, names, plan.clone());
    let exec = Executor::new(cfg, cat.clone());
    let mut policy = IntraOnly::new(MachineConfig::paper_default(), true);
    let report =
        exec.run(&[QueryRun { optimized, bindings: bindings(names) }], &mut policy)?;
    Ok(report.results[0].rows.rows.clone())
}

/// Every compiler plan shape, with the relations it touches.
fn shapes() -> Vec<(&'static str, Vec<&'static str>, Plan)> {
    vec![
        (
            "hash_join",
            vec!["r0", "r1"],
            Plan::HashJoin { build: scan(0), probe: scan(1) },
        ),
        (
            "deep_probe_chain",
            vec!["r0", "r1", "r2"],
            Plan::HashJoin {
                build: scan(0),
                probe: Box::new(Plan::HashJoin { build: scan(1), probe: scan(2) }),
            },
        ),
        (
            "nestloop",
            vec!["r0", "r1"],
            Plan::NestLoop { outer: scan(0), inner: iscan(1) },
        ),
        (
            "key_domain_merge",
            vec!["r0", "r1"],
            Plan::MergeJoin { left: scan(0), right: scan(1) },
        ),
        (
            "bushy",
            vec!["r0", "r1", "r2", "r3"],
            Plan::HashJoin {
                build: Box::new(Plan::HashJoin { build: scan(0), probe: scan(1) }),
                probe: Box::new(Plan::MergeJoin { left: iscan(2), right: iscan(3) }),
            },
        ),
    ]
}

#[test]
fn all_plan_shapes_agree_across_materialization_paths() {
    let cat = catalog();
    for (label, names, plan) in shapes() {
        let legacy = run_shape(
            &cat,
            &names,
            &plan,
            ExecConfig::unthrottled().with_data_path(DataPath::GlobalLock),
            None,
        )
        .expect(label);
        let serial_merge =
            run_shape(&cat, &names, &plan, ExecConfig::unthrottled(), None).expect(label);
        // Force the pool-farmed parallel merge even on small outputs and
        // on single-core hosts (auto fan-out would stay serial there).
        let mut forced = ExecConfig::unthrottled();
        forced.parallel_merge_min_rows = 1;
        forced.parallel_merge_ways = 4;
        let parallel_merge = run_shape(&cat, &names, &plan, forced, None).expect(label);

        assert!(!legacy.is_empty(), "{label}: vacuous comparison");
        assert_eq!(legacy, serial_merge, "{label}: serial k-way merge path differs");
        assert_eq!(legacy, parallel_merge, "{label}: parallel merge path differs");
    }
}

/// A worker death mid-build (during the build-side fragment) must not
/// change either path's result: the patrol reclaims the dead slot's share,
/// a replacement finishes it, and the materialized output stays identical.
#[test]
fn worker_death_mid_build_preserves_results_on_both_paths() {
    let cat = catalog();
    let (label, names, plan) = &shapes()[1]; // deep probe chain: two build fragments
    let fault_free =
        run_shape(&cat, names, plan, ExecConfig::unthrottled(), None).expect(label);
    for path in [DataPath::GlobalLock, DataPath::Decontended] {
        // Fragment 0 is a build side; kill its slot 0 after one unit.
        let faults = Arc::new(FaultPlan::new().with_worker_death(0, 0, 1));
        let got = run_shape(
            &cat,
            names,
            plan,
            ExecConfig::unthrottled().with_data_path(path),
            Some(faults.clone()),
        )
        .unwrap_or_else(|e| panic!("{label} under {path:?}: {e}"));
        assert_eq!(faults.stats().deaths_fired(), 1, "{path:?}: death must fire");
        assert_eq!(got, fault_free, "{label} under {path:?}: death changed the result");
    }
}

/// Satellite: the merge-indexed probe over an unindexed relation is a
/// typed [`ExecError::IndexMissing`], not a worker panic.
#[test]
fn merge_indexed_over_unindexed_is_a_typed_error() {
    // `left` is indexed (the KeyScan driver needs it); `right` is not, so
    // the MergeIndexed pipeline op hits the missing-index path.
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0x5EED_u64;
    for (name, indexed) in [("left", true), ("right", false)] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..200)
            .map(|_| {
                let a = (lcg(&mut seed) % 30) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text(String::new())])
            })
            .collect();
        cat.load(name, rows);
        if indexed {
            cat.build_index(name, false);
        }
    }
    let cat = Arc::new(cat);
    let plan = Plan::MergeJoin { left: iscan(0), right: iscan(1) };
    // The planner must *believe* both sides are indexed (or it would refuse
    // the shape at cost time); the runtime catalog is what disagrees.
    let rels: Vec<RelInfo> = ["left", "right"]
        .iter()
        .map(|n| {
            let rel = cat.get(n).expect("test relation");
            let s = rel.stats();
            RelInfo {
                n_tuples: s.n_tuples as f64,
                n_blocks: s.n_blocks as f64,
                n_distinct: s.n_distinct_a as f64,
                selectivity: 1.0,
                has_index: true,
                clustered: false,
            }
        })
        .collect();
    let costed = CostModel::paper_default().cost_plan(&plan, &rels);
    let fragments = decompose(&plan, &costed, 0);
    let optimized =
        OptimizedQuery { seqcost: costed.cost.total_cost, parcost: 0.0, plan, fragments };
    let exec = Executor::new(ExecConfig::unthrottled(), cat.clone());
    let mut policy = IntraOnly::new(MachineConfig::paper_default(), true);
    let err = exec
        .run(&[QueryRun { optimized, bindings: bindings(&["left", "right"]) }], &mut policy)
        .expect_err("probe over unindexed relation must fail");
    match err {
        ExecError::IndexMissing { name, .. } => assert_eq!(name, "right"),
        other => panic!("expected IndexMissing, got {other:?}"),
    }
}
