//! Property tests for the morsel work-stealing deque layer: for arbitrary
//! unit counts, grains, worker counts, and seeded interleavings — with and
//! without a mid-run `fail_slot` from the PR 3 fault machinery — every unit
//! is claimed **exactly once** across owners, thieves, and the replacement
//! slot that inherits a dead worker's unclaimed remainder.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use proptest::prelude::*;
use xprs_executor::StealPartition;

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Drive the partition to exhaustion under a seeded interleaving: each step
/// one pseudo-randomly chosen live slot either claims a unit of its
/// in-flight morsel or takes/steals its next morsel; a slot with neither
/// retires. At step `fail_at` (if given) a pseudo-random live slot is
/// declared dead — its unclaimed remainder moves to a fresh replacement
/// slot, which joins the interleaving. Returns every unit claimed, in
/// claim order.
fn drive(
    part: &StealPartition,
    seed: u64,
    mut fail_at: Option<u64>,
) -> Vec<u64> {
    let mut rng = seed ^ 0x5EED_0BEE;
    let mut claims: Vec<Arc<AtomicU64>> =
        (0..part.n_slots()).map(|s| part.claim_of(s)).collect();
    let mut live: Vec<usize> = (0..claims.len()).collect();
    let mut seen = Vec::new();
    let mut step = 0u64;
    while !live.is_empty() {
        if fail_at == Some(step) {
            fail_at = None;
            let victim = live[(lcg(&mut rng) % live.len() as u64) as usize];
            let replacement = part.fail_slot(victim);
            claims.push(part.claim_of(replacement));
            assert_eq!(claims.len() - 1, replacement, "slots grow by one per failure");
            live.push(replacement);
        }
        step += 1;
        let pick = (lcg(&mut rng) % live.len() as u64) as usize;
        let slot = live[pick];
        if let Some(u) = StealPartition::claim_unit(&claims[slot]) {
            seen.push(u);
        } else if part.next_morsel(slot).is_none() {
            live.swap_remove(pick);
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault-free: any interleaving of owners and thieves claims
    /// `[0, total)` exactly once.
    #[test]
    fn seeded_interleavings_claim_every_unit_exactly_once(
        total in 0u64..600,
        grain in 1u64..40,
        workers in 1u32..9,
        seed in 0u64..1_000_000,
    ) {
        let part = StealPartition::new(total, grain, workers, seed);
        let mut seen = drive(&part, seed, None);
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    /// A mid-run slot failure revokes the victim and moves its unclaimed
    /// work to the replacement; units the victim claimed before revocation
    /// stay claimed. Exactly-once must survive any failure point.
    #[test]
    fn mid_run_fail_slot_preserves_exactly_once(
        total in 1u64..400,
        grain in 1u64..32,
        workers in 1u32..7,
        seed in 0u64..1_000_000,
        fail_at in 0u64..500,
    ) {
        let part = StealPartition::new(total, grain, workers, seed);
        let mut seen = drive(&part, seed, Some(fail_at));
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    /// Real threads, real races: every worker loops claim-or-steal on its
    /// own OS thread while the main thread kills one slot mid-run; the
    /// union of what the threads claimed and what the replacement slot
    /// yields afterwards is `[0, total)` exactly once.
    #[test]
    fn threaded_stealing_with_a_death_is_exactly_once(
        total in 1u64..400,
        grain in 1u64..32,
        workers in 2u32..7,
        seed in 0u64..1_000_000,
    ) {
        let part = Arc::new(StealPartition::new(total, grain, workers, seed));
        let victim = (seed % workers as u64) as usize;
        let handles: Vec<_> = (0..workers as usize)
            .map(|slot| {
                let part = Arc::clone(&part);
                std::thread::spawn(move || {
                    let claim = part.claim_of(slot);
                    let mut mine = Vec::new();
                    loop {
                        if let Some(u) = StealPartition::claim_unit(&claim) {
                            mine.push(u);
                            std::thread::yield_now();
                        } else if part.next_morsel(slot).is_none() {
                            return mine;
                        }
                    }
                })
            })
            .collect();
        std::thread::yield_now();
        let replacement = part.fail_slot(victim);
        let mut seen: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().expect("worker thread")).collect();
        // The replacement inherits whatever the dead slot never claimed.
        let claim = part.claim_of(replacement);
        loop {
            if let Some(u) = StealPartition::claim_unit(&claim) {
                seen.push(u);
            } else if part.next_morsel(replacement).is_none() {
                break;
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }
}
