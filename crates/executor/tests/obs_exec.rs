//! Observability regression tests: the blind spots `xprs-obs` exposed.
//!
//! * Patrol starvation — a dead worker must be reclaimed even while a
//!   chatty sibling stream floods the master channel (the old quiet-tick
//!   patrol only ran on `recv_timeout` timeouts, which a continuous
//!   message stream suppresses forever).
//! * Bypass accounting — a pool too small for the scan's pin pressure
//!   serves reads *around* the pool; those must be counted, so that
//!   `hits + misses + bypasses == reads` holds even under exhaustion.
//! * `metrics.json` — the dumped document must parse with the crate's own
//!   parser and its counters must balance.
//! * Plan mismatch — a hand-tampered decomposition is a typed refusal,
//!   not a master panic.

use std::collections::HashMap;
use std::sync::Arc;

use xprs_disk::{FaultPlan, StripedLayout};
use xprs_executor::{ExecConfig, ExecError, Executor, QueryRun, RelBinding};
use xprs_obs::json::{parse, JsonValue};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::{
    Action, FragmentDag, MachineConfig, RunningTask, SchedulePolicy, TaskId, TaskProfile,
};
use xprs_storage::{Catalog, Datum, Schema, Tuple};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0x0B5_u64;
    for (name, n, key_mod, blen) in [
        ("fat", 400u64, 100u64, 800usize), // IO-heavy: ~10 tuples per page
        ("thin", 3000, 150, 16),           // CPU-heavy: many tuples per page
    ] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let a = (lcg(&mut seed) % key_mod) as i32;
                Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(blen))])
            })
            .collect();
        cat.load(name, rows);
        cat.build_index(name, false);
    }
    Arc::new(cat)
}

fn m() -> MachineConfig {
    MachineConfig::paper_default()
}

fn optimizer() -> TwoPhaseOptimizer {
    TwoPhaseOptimizer::paper_default()
}

fn selection_run(cat: &Arc<Catalog>, name: &str, pred: (i32, i32)) -> QueryRun {
    let q = Query::selection(name, 1.0);
    let optimized = optimizer().optimize_catalog(cat, &q, Costing::SeqCost).expect("plan");
    QueryRun { optimized, bindings: vec![RelBinding { name: name.into(), pred }] }
}

fn join_run(cat: &Arc<Catalog>) -> QueryRun {
    let q = Query::join().rel("fat", 1.0).rel("thin", 1.0).on(0, 1).build();
    let optimized = optimizer().optimize_catalog(cat, &q, Costing::SeqCost).expect("plan");
    QueryRun {
        optimized,
        bindings: vec![
            RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) },
            RelBinding { name: "thin".into(), pred: (i32::MIN, i32::MAX) },
        ],
    }
}

fn ref_selection(cat: &Catalog, name: &str, pred: (i32, i32)) -> HashMap<i32, usize> {
    let mut out = HashMap::new();
    for (_, t) in cat.get(name).unwrap().heap.scan() {
        let a = t.get(0).as_int().unwrap();
        if a >= pred.0 && a <= pred.1 {
            *out.entry(a).or_insert(0) += 1;
        }
    }
    out
}

fn result_multiset(rows: &xprs_executor::Materialized) -> HashMap<i32, usize> {
    let mut out = HashMap::new();
    for (k, _) in &rows.rows {
        *out.entry(*k).or_insert(0) += 1;
    }
    out
}

/// Starts the flood-victim query (task id 0) immediately and keeps up to
/// three of the chatty queries running at all times, so FragmentDone
/// messages hit the master channel continuously for the whole run.
struct FloodPolicy {
    machine: MachineConfig,
    pending: Vec<TaskId>,
}

impl SchedulePolicy for FloodPolicy {
    fn name(&self) -> &'static str {
        "flood"
    }
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }
    fn on_arrival(&mut self, _now: f64, task: TaskProfile) {
        self.pending.push(task.id);
    }
    fn on_finish(&mut self, _now: f64, _id: TaskId) {}
    fn decide(&mut self, _now: f64, running: &[RunningTask]) -> Vec<Action> {
        let mut chatty = running.iter().filter(|r| r.profile.id.0 != 0).count();
        let mut out = Vec::new();
        self.pending.retain(|&id| {
            if id.0 == 0 {
                out.push(Action::Start { id, parallelism: 1.0 });
                false
            } else if chatty < 3 {
                chatty += 1;
                out.push(Action::Start { id, parallelism: 1.0 });
                false
            } else {
                true
            }
        });
        out
    }
}

/// The patrol-starvation regression, end to end: the victim query's only
/// worker dies two pages into its scan while 600 sibling queries keep the
/// master channel busy. The deadline-based patrol must reap the dead slot
/// and staff a replacement *during* the flood — under the old quiet-tick
/// patrol the victim could only finish after the last chatty query
/// drained the channel.
#[test]
fn dead_worker_is_reclaimed_while_siblings_flood_the_master() {
    let cat = catalog();
    let mut runs = vec![selection_run(&cat, "fat", (i32::MIN, i32::MAX))];
    for _ in 0..600 {
        runs.push(selection_run(&cat, "thin", (0, 9)));
    }
    let plan = Arc::new(FaultPlan::new().with_worker_death(0, 0, 2));
    let mut cfg = ExecConfig::unthrottled().with_faults(plan.clone());
    cfg.patrol_ms = 3;
    cfg.patrol_grace = 2;
    let exec = Executor::new(cfg, cat.clone());
    let mut policy = FloodPolicy { machine: m(), pending: Vec::new() };
    let report = exec.run(&runs, &mut policy).expect("flooded run must complete");

    assert_eq!(plan.stats().deaths_fired(), 1, "the worker death must fire");
    assert!(report.worker_recoveries >= 1, "patrol must replace the dead worker");
    assert!(report.patrol_ticks >= 3, "patrol must keep ticking under continuous load");
    assert_eq!(
        result_multiset(&report.results[0].rows),
        ref_selection(&cat, "fat", (i32::MIN, i32::MAX)),
        "recovered scan must still return every row exactly once"
    );
    // Detection within the patrol deadlines, not after the flood: the
    // victim (death at ~0, reaped after `grace + 1` ticks of 3 ms, then a
    // few ms of rescanning) finishes while chatty queries are still
    // completing behind it.
    let victim_done = report.results[0].finished_at;
    let flood_done = report.results.last().unwrap().finished_at;
    assert!(
        victim_done < flood_done,
        "victim finished at {victim_done:.3}s, after the whole flood ({flood_done:.3}s): \
         the patrol starved until the channel went quiet"
    );
}

/// The read ledger under shard pressure: a one-frame-per-shard pool under
/// an 8-worker join may serve reads around the pool whenever a shard's
/// only frame is pinned, and the ledger must balance regardless:
/// `hits + misses + bypasses == reads`. (Forcing a *guaranteed* bypass
/// needs a scaled service time and lives in the `io` unit tests; here the
/// invariant must hold whatever mix the timing produced.)
#[test]
fn exhausted_shards_account_every_read() {
    let cat = catalog();
    let mut cfg = ExecConfig::unthrottled();
    cfg.bufpool_pages = 4; // one frame per shard, far below pin demand
    cfg.bufpool_shards = 4;
    let exec = Executor::new(cfg, cat.clone());
    let mut policy = IntraOnly::new(m(), true);
    let report = exec.run(&[join_run(&cat)], &mut policy).expect("run failed");

    let p = report.stats.pool;
    assert_eq!(
        p.hits + p.misses + p.bypasses,
        report.stats.reads,
        "every read must be a hit, a miss, or a bypass"
    );
    // The per-shard ledgers sum to the same totals.
    let shard_sum: u64 =
        report.pool_shards.iter().map(|s| s.hits + s.misses + s.bypasses).sum();
    assert_eq!(shard_sum, report.stats.reads);
    // A bypass is not a hit: the rate must price it into the denominator.
    assert!(p.hit_rate() <= p.hits as f64 / (p.hits + p.misses).max(1) as f64);
}

/// The `metrics.json` dump parses with the crate's own parser, balances
/// its pool ledger, splits per-disk busy time by service class, and
/// carries one profile per query.
#[test]
fn metrics_json_parses_and_balances() {
    let cat = catalog();
    let path = std::env::temp_dir().join(format!("xprs-metrics-{}.json", std::process::id()));
    let cfg = ExecConfig::unthrottled().with_metrics_out(&path);
    let exec = Executor::new(cfg, cat.clone());
    let mut policy = IntraOnly::new(m(), true);
    let runs =
        vec![join_run(&cat), selection_run(&cat, "thin", (0, 49)), selection_run(&cat, "fat", (0, 9))];
    let report = exec.run(&runs, &mut policy).expect("run failed");
    let text = std::fs::read_to_string(&path).expect("metrics.json must be written");
    std::fs::remove_file(&path).ok();

    let doc = parse(&text).expect("metrics.json must parse");
    let num = |v: &JsonValue, key: &str| {
        v.get(key).and_then(JsonValue::num).unwrap_or_else(|| panic!("missing {key}"))
    };

    // The pool ledger balances against the read count.
    let pool = doc.get("pool").expect("pool section");
    let ledger = num(pool, "hits") + num(pool, "misses") + num(pool, "bypasses");
    assert_eq!(ledger as u64, num(&doc, "reads") as u64);
    assert_eq!(num(&doc, "reads") as u64, report.stats.reads);

    // Per-disk request counts and busy time, split by service class.
    let disks = doc.get("disks").and_then(JsonValue::arr).expect("disks array");
    assert_eq!(disks.len(), 4);
    let mut count = 0.0;
    let mut busy = 0.0;
    for d in disks {
        for class in ["sequential", "almost_sequential", "random"] {
            let c = d.get(class).expect("class split");
            count += num(c, "count");
            busy += num(c, "busy");
        }
    }
    assert_eq!(count as u64, report.stats.disk.total());
    assert!(busy > 0.0, "busy time must be attributed to classes");

    // Metrics were enabled, so the hot-path sections are real histograms.
    // The gate histogram records only contended acquisitions — an
    // unthrottled run may legitimately never wait, so presence (not a
    // sample count) is what metrics-on guarantees.
    let gate = doc.get("gate_wait_ns").expect("gate_wait_ns");
    assert!(!matches!(gate, JsonValue::Null), "gate histogram must be present");
    assert!(num(gate, "count") >= 0.0);

    // One profile per query; every fragment did real units and the root
    // carries the merge shape.
    let queries = doc.get("queries").and_then(JsonValue::arr).expect("queries array");
    assert_eq!(queries.len(), 3);
    for q in queries {
        let frags = q.get("fragments").and_then(JsonValue::arr).expect("fragments");
        assert!(!frags.is_empty());
        for f in frags {
            assert!(num(f, "units") >= 1.0, "fragment did no units");
            assert!(num(f, "staffed") >= 1.0, "fragment never staffed a worker");
        }
    }

    // The audit section exists and echoes the §2.3 band [Br, Bs].
    let audit = doc.get("utilization_audit").expect("audit section");
    let band = audit.get("band").and_then(JsonValue::arr).expect("band");
    assert_eq!(band[0].num().unwrap(), m().total_random_bandwidth());
    assert_eq!(band[1].num().unwrap(), m().total_bandwidth());
}

/// A hand-tampered decomposition — the optimizer's DAG disagrees with
/// what the compiler derives from the plan — is refused up front with
/// [`ExecError::PlanMismatch`] carrying both sides, instead of the
/// former master panic.
#[test]
fn mismatched_decomposition_is_a_typed_refusal() {
    let cat = catalog();
    let mut run = join_run(&cat);
    // Same fragments, but every dependency edge dropped: both fragments
    // now claim to be roots, which the compiled plan contradicts.
    let mut dag = FragmentDag::new();
    for t in run.optimized.fragments.dag.tasks() {
        dag.add(t.clone(), &[]);
    }
    run.optimized.fragments.dag = dag;

    let exec = Executor::new(ExecConfig::unthrottled(), cat.clone());
    let mut policy = IntraOnly::new(m(), true);
    let err = exec.run(&[run], &mut policy).expect_err("mismatch must be refused");
    match err {
        ExecError::PlanMismatch { query, compiled, optimized } => {
            assert_eq!(query, 0);
            assert_ne!(compiled, optimized, "both decompositions ride on the error");
            assert!(optimized.iter().all(Vec::is_empty), "tampered side must be dep-free");
        }
        other => panic!("expected PlanMismatch, got {other:?}"),
    }
}
