//! Property tests over seeded fault schedules: for any seed, (a) the run is
//! deterministic — the same seed yields the same outcome — and (b) any run
//! that completes returns exactly the fault-free result. Together these are
//! the executor's fault-tolerance contract: faults may slow a query down or
//! kill it with a typed error, but they may never silently change its
//! answer.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use xprs_disk::{FaultDomain, FaultPlan, StripedLayout};
use xprs_executor::{ExecConfig, Executor, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::MachineConfig;
use xprs_storage::{Catalog, Datum, Schema, Tuple};

const N_DISKS: u32 = 4;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

fn catalog() -> &'static Arc<Catalog> {
    static CAT: OnceLock<Arc<Catalog>> = OnceLock::new();
    CAT.get_or_init(|| {
        let mut cat = Catalog::new(StripedLayout::new(N_DISKS));
        let mut seed = 0xFA57_u64;
        for (name, n, key_mod, blen) in [("fat", 400u64, 100u64, 800usize), ("thin", 3000, 150, 16)]
        {
            cat.create(name, Schema::paper_rel());
            let rows: Vec<Tuple> = (0..n)
                .map(|_| {
                    let a = (lcg(&mut seed) % key_mod) as i32;
                    Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(blen))])
                })
                .collect();
            cat.load(name, rows);
            cat.build_index(name, false);
        }
        Arc::new(cat)
    })
}

fn join_run(cat: &Arc<Catalog>) -> QueryRun {
    let q = Query::join().rel("fat", 1.0).rel("thin", 1.0).on(0, 1).build();
    let optimized = TwoPhaseOptimizer::paper_default()
        .optimize_catalog(cat, &q, Costing::SeqCost)
        .expect("plan");
    QueryRun {
        optimized,
        bindings: vec![
            RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) },
            RelBinding { name: "thin".into(), pred: (i32::MIN, i32::MAX) },
        ],
    }
}

/// Run the join under `plan`; `Ok` carries the result rows, `Err` the
/// error's display form (the comparable part of a failure outcome).
fn run_under(plan: Option<Arc<FaultPlan>>) -> Result<Vec<(i32, Tuple)>, String> {
    let cat = catalog();
    let mut cfg = ExecConfig::unthrottled();
    if let Some(plan) = plan {
        cfg = cfg.with_faults(plan);
    }
    let exec = Executor::new(cfg, cat.clone());
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(MachineConfig::paper_default()));
    match exec.run(&[join_run(cat)], &mut policy) {
        Ok(report) => Ok(report.results[0].rows.rows.clone()),
        Err(e) => Err(e.to_string()),
    }
}

fn baseline() -> &'static Vec<(i32, Tuple)> {
    static BASE: OnceLock<Vec<(i32, Tuple)>> = OnceLock::new();
    BASE.get_or_init(|| run_under(None).expect("fault-free run must complete"))
}

fn domain() -> FaultDomain {
    let cat = catalog();
    FaultDomain {
        rels: ["fat", "thin"]
            .iter()
            .map(|n| {
                let h = &cat.get(n).unwrap().heap;
                (h.rel(), h.n_blocks())
            })
            .collect(),
        n_disks: N_DISKS as usize,
        n_fragments: 3,
        max_slots: 8,
    }
}

proptest! {
    // Each case is two full executor runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Determinism: the same seed produces the same fault schedule and
    /// the same outcome — identical rows on success, identical typed error
    /// on failure. (b) Equivalence: whenever a faulted run completes, its
    /// rows are exactly the fault-free baseline's.
    #[test]
    fn seeded_fault_schedules_are_deterministic_and_answer_preserving(seed in 0u64..1_000_000) {
        let dom = domain();
        let first = run_under(Some(Arc::new(FaultPlan::seeded(seed, &dom))));
        let second = run_under(Some(Arc::new(FaultPlan::seeded(seed, &dom))));
        prop_assert_eq!(&first, &second, "same seed must yield the same outcome");
        if let Ok(rows) = &first {
            prop_assert_eq!(rows, baseline(), "a completing run must return the clean answer");
        }
    }
}
