//! The online prediction layer, end to end: declared profiles seeded wrong
//! by 4x converge onto the realized rates after a few repetitions of the
//! same plan shape, traces containing `predict` records still replay
//! through the fluid model, and prediction stays a pure function of the
//! observation stream under randomized (seeded) streams.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use xprs_disk::StripedLayout;
use xprs_executor::{ExecConfig, ExecReport, Executor, QueryRun, RelBinding};
use xprs_optimizer::{Costing, Query, TwoPhaseOptimizer};
use xprs_scheduler::adaptive::{AdaptiveConfig, AdaptiveScheduler};
use xprs_scheduler::predict::{Observation, PredictKey, Predictor};
use xprs_scheduler::trace::{
    action_signature, action_stream, parse_jsonl, replay_through_fluid, JsonlSink, SharedSink,
    TraceRecord,
};
use xprs_scheduler::{IoKind, MachineConfig, TaskId, TaskProfile};
use xprs_storage::{Catalog, Datum, Schema, Tuple, PAGE_SIZE};

/// Wall-clock speedup of the throttled runs; observations only train the
/// model when the executor runs on a (scaled) clock. Kept low enough that
/// each rep's wall time dwarfs host-scheduler noise.
const SPEEDUP: f64 = 20.0;

/// Warm-up repetitions of the identical plan shape before measuring.
const REPS: usize = 5;

/// Measured repetitions averaged into the realized ground truth, so one
/// noisy rep cannot fail the convergence bound.
const MEASURED: usize = 3;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

/// One IO-heavy relation: few tuples per page, so the scan's cost is disk
/// time the throttled machine actually simulates.
fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    let mut seed = 0xBEEF_u64;
    cat.create("fat", Schema::paper_rel());
    let rows: Vec<Tuple> = (0..1500u64)
        .map(|_| {
            let a = (lcg(&mut seed) % 100) as i32;
            Tuple::from_values(vec![Datum::Int(a), Datum::Text("x".repeat(800))])
        })
        .collect();
    cat.load("fat", rows);
    cat.build_index("fat", false);
    Arc::new(cat)
}

/// A single processor pins the applied parallelism at 1, so the realized
/// sequential time of the scan is exactly its simulated elapsed time —
/// measurable from the report without knowing the policy's decisions.
fn machine() -> MachineConfig {
    MachineConfig { n_procs: 1, ..MachineConfig::paper_default() }
}

/// Full scan of `fat` with every declared scalar seeded wrong by 4x:
/// `T_i` four times too short, `C_i` four times too high, footprint four
/// times too small. The prior is wrong in the direction that makes the
/// scheduler over-admit and under-provision.
fn wrong_by_4x_run(cat: &Arc<Catalog>) -> QueryRun {
    let q = Query::selection("fat", 1.0);
    let mut optimized = TwoPhaseOptimizer::paper_default()
        .optimize_catalog(cat, &q, Costing::SeqCost)
        .expect("plan");
    for f in &mut optimized.fragments.fragments {
        f.profile.seq_time /= 4.0;
        f.profile.io_rate *= 4.0;
        f.profile.memory /= 4.0;
    }
    QueryRun {
        optimized,
        bindings: vec![RelBinding { name: "fat".into(), pred: (i32::MIN, i32::MAX) }],
    }
}

fn scaled_cfg(predictor: &Arc<Predictor>) -> ExecConfig {
    let mut cfg = ExecConfig::scaled(SPEEDUP).with_obs().with_predictor(predictor.clone());
    cfg.machine = machine();
    cfg
}

fn run_once(cfg: ExecConfig, cat: &Arc<Catalog>, run: &QueryRun, sink: Option<SharedSink>) -> ExecReport {
    let mut policy = AdaptiveScheduler::new(AdaptiveConfig::with_adjustment(machine()));
    let mut exec = Executor::new(cfg, cat.clone());
    if let Some(s) = sink {
        exec = exec.with_trace(s);
    }
    exec.run(std::slice::from_ref(run), &mut policy).expect("predicted run")
}

#[test]
fn wrong_by_4x_declarations_converge_onto_realized_rates() {
    let cat = catalog();
    let run = wrong_by_4x_run(&cat);
    let predictor = Arc::new(Predictor::new(PAGE_SIZE as u64));

    for _ in 0..REPS {
        run_once(scaled_cfg(&predictor), &cat, &run, None);
    }
    // Measured phase: realized ground truth is the average of several
    // reps (one processor ⇒ applied parallelism 1 ⇒ realized T_i is the
    // fragment's simulated elapsed), and the prediction under test is the
    // substitution the last rep's trace records.
    let mut realized_t_sum = 0.0;
    let mut pages = 0.0;
    let mut last_trace = String::new();
    for _ in 0..MEASURED {
        let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
        let report = run_once(scaled_cfg(&predictor), &cat, &run, Some(sink.clone()));
        let frag = &report.profiles[0].fragments[0];
        realized_t_sum += (frag.finished_at - frag.started_at) / report.scale;
        pages = frag.observed_pages as f64;
        let Ok(cell) = Arc::try_unwrap(sink) else { unreachable!("sink still shared") };
        last_trace = String::from_utf8(cell.into_inner().unwrap().into_inner()).unwrap();
    }
    let realized_t = realized_t_sum / MEASURED as f64;
    let realized_c = pages / realized_t;
    assert!(realized_t > 0.0 && realized_c.is_finite());

    let records = parse_jsonl(&last_trace).expect("well-formed trace");
    let predict = records
        .iter()
        .find_map(|r| match r {
            TraceRecord::Predict {
                declared_seq_time,
                declared_io_rate,
                predicted_seq_time,
                predicted_io_rate,
                observations,
                ..
            } => Some((
                *declared_seq_time,
                *declared_io_rate,
                *predicted_seq_time,
                *predicted_io_rate,
                *observations,
            )),
            _ => None,
        })
        .expect("a warm model must substitute by the final rep");
    let (d_t, d_c, p_t, p_c, n_obs) = predict;
    assert!(n_obs as usize >= REPS, "every clean rep must train the model");

    let rel = |pred: f64, truth: f64| (pred - truth).abs() / truth;
    assert!(
        rel(p_t, realized_t) <= 0.2,
        "predicted T_i {p_t:.3} must land within 20% of realized {realized_t:.3}"
    );
    assert!(
        rel(p_c, realized_c) <= 0.2,
        "predicted C_i {p_c:.3} must land within 20% of realized {realized_c:.3}"
    );
    // And the prediction must actually beat the seeded-wrong prior.
    assert!(rel(p_t, realized_t) < rel(d_t, realized_t));
    assert!(rel(p_c, realized_c) < rel(d_c, realized_c));
}

#[test]
fn traces_with_predict_records_replay_through_the_fluid_model() {
    let cat = catalog();
    let run = wrong_by_4x_run(&cat);
    let predictor = Arc::new(Predictor::new(PAGE_SIZE as u64));
    for _ in 0..3 {
        run_once(scaled_cfg(&predictor), &cat, &run, None);
    }
    let sink = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
    run_once(scaled_cfg(&predictor), &cat, &run, Some(sink.clone()));

    let text = {
        let Ok(cell) = Arc::try_unwrap(sink) else { unreachable!("sink still shared") };
        String::from_utf8(cell.into_inner().unwrap().into_inner()).unwrap()
    };
    let records = parse_jsonl(&text).expect("well-formed trace");
    assert!(
        records.iter().any(|r| matches!(r, TraceRecord::Predict { .. })),
        "a warm predictor must leave predict records in the trace"
    );

    // The substituted profile rides the Arrival records, so the analytic
    // replay re-derives the same whole-worker schedule from a trace that
    // interleaves predict records with decisions.
    let recorded = action_stream(&records);
    assert!(!recorded.is_empty());
    let replayed = replay_through_fluid(&records).expect("fluid replay");
    assert_eq!(
        action_signature(&recorded, machine().n_procs),
        action_signature(&replayed, machine().n_procs),
        "threaded capture and fluid replay disagree on a predicted trace"
    );
}

/// Strategy for one (possibly degenerate) observation: finite-positive
/// and junk values both appear, so the purity claim covers the guard
/// paths (discarded observations must be discarded identically).
fn observation_strategy() -> impl Strategy<Value = Observation> {
    (
        prop_oneof![0.1f64..100.0, Just(f64::NAN), Just(0.0)],
        0.1f64..100.0,
        prop_oneof![0.01f64..500.0, Just(-1.0), Just(f64::INFINITY)],
        0.0f64..2000.0,
        0u32..6,
        proptest::bool::ANY,
    )
        .prop_map(|(realized, d_t, pages, d_c, co, truncated)| Observation {
            declared_seq_time: d_t,
            declared_io_rate: d_c.max(0.01),
            realized_seq_time: realized,
            observed_pages: pages,
            co_runners: co,
            truncated,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two predictors fed the identical observation stream answer every
    /// query bit-for-bit identically: no clocks, no randomness, no
    /// map-order dependence — the replay harness depends on this.
    #[test]
    fn prediction_is_a_pure_function_of_the_observation_stream(
        stream in proptest::collection::vec((0u64..4, 0u64..4, observation_strategy()), 1..80),
    ) {
        let a = Predictor::new(PAGE_SIZE as u64);
        let b = Predictor::new(PAGE_SIZE as u64);
        let declared = TaskProfile::new(TaskId(1), 10.0, 20.0, IoKind::Sequential)
            .with_memory(64.0 * PAGE_SIZE as f64);
        for (shape, mag, obs) in &stream {
            let key = PredictKey::new(*shape, 50 << mag);
            a.observe(key, obs);
            b.observe(key, obs);
        }
        for (shape, mag, _) in &stream {
            let key = PredictKey::new(*shape, 50 << mag);
            for co in 0..6 {
                let pa = a.predict(key, &declared, co);
                let pb = b.predict(key, &declared, co);
                prop_assert_eq!(pa.profile.seq_time.to_bits(), pb.profile.seq_time.to_bits());
                prop_assert_eq!(pa.profile.io_rate.to_bits(), pb.profile.io_rate.to_bits());
                prop_assert_eq!(pa.profile.memory.to_bits(), pb.profile.memory.to_bits());
                prop_assert_eq!(pa.observations, pb.observations);
                prop_assert_eq!(pa.from_model, pb.from_model);
                // Whatever the stream contained, the scheduler never sees
                // a poisoned profile.
                prop_assert!(pa.profile.validate().is_ok());
            }
        }
    }
}
