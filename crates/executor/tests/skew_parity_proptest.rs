//! Skew parity: the heavy-hitter machinery must never change results.
//!
//! Two layers of evidence. The property layer drives seeded Zipfian inputs
//! (the `xprs_workload::zipf_keys` stream the skew bench uses) through the
//! three `Materialized` construction paths — legacy hash build, sorted-runs
//! CSR build, and the hot-key-splitting `split_runs_stats` → per-group
//! merge → concatenation path — and demands identical row vectors, key
//! extrema, digests, and probe multisets. The e2e layer runs a genuinely
//! skewed merge join through the executor on every data path (GlobalLock,
//! serial merge, forced pool-farmed merge, work-stealing with a worker
//! death mid-run) and demands identical key-sorted outputs, with the
//! observability counters proving the heavy-hitter fan-out actually
//! engaged rather than vacuously passing.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use proptest::prelude::*;
use xprs_disk::{FaultPlan, StripedLayout};
use xprs_executor::{
    DataPath, ExecConfig, ExecError, Executor, Materialized, QueryRun, RelBinding,
};
use xprs_optimizer::cost::{CostModel, RelInfo};
use xprs_optimizer::{decompose, OptimizedQuery, Plan};
use xprs_scheduler::intra::IntraOnly;
use xprs_scheduler::MachineConfig;
use xprs_storage::{merge_runs, split_runs_stats, Catalog, Datum, Schema, Tuple};
use xprs_workload::zipf_keys;

/// Order-sensitive digest over the whole row vector, payloads included.
fn digest(rows: &[(i32, Tuple)]) -> u64 {
    let mut h = DefaultHasher::new();
    for (k, t) in rows {
        k.hash(&mut h);
        format!("{t:?}").hash(&mut h);
    }
    h.finish()
}

/// Position-tagged rows: two rows with equal keys stay distinguishable, so
/// any stability violation in a merge or split surfaces as a digest diff.
fn rows_from_keys(keys: &[i32]) -> Vec<(i32, Tuple)> {
    keys.iter()
        .enumerate()
        .map(|(pos, &k)| {
            (k, Tuple::from_values(vec![Datum::Int(k), Datum::Text(format!("{pos}"))]))
        })
        .collect()
}

/// Split `rows` into consecutive worker-style runs, each stably key-sorted
/// — the shape `OutputSink::harvest_runs` hands the master.
fn into_runs(rows: Vec<(i32, Tuple)>, chunk: usize) -> Vec<Vec<(i32, Tuple)>> {
    let mut runs: Vec<Vec<(i32, Tuple)>> = Vec::new();
    let mut it = rows.into_iter().peekable();
    while it.peek().is_some() {
        let mut run: Vec<(i32, Tuple)> = it.by_ref().take(chunk.max(1)).collect();
        run.sort_by_key(|(k, _)| *k);
        runs.push(run);
    }
    runs
}

fn probe_multiset(m: &Materialized, key: i32) -> Vec<String> {
    let mut hits: Vec<String> = m.matches(key).map(|t| format!("{t:?}")).collect();
    hits.sort();
    hits
}

const THETAS: [f64; 4] = [0.0, 0.5, 1.0, 1.5];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash build, CSR build, and the hot-key-splitting merge agree on
    /// rows, extrema, digests, and every probe multiset for seeded
    /// Zipfian key streams across the θ band the bench sweeps.
    #[test]
    fn zipf_inputs_agree_across_all_three_builds(
        seed in 0u64..1u64 << 48,
        theta_idx in 0usize..THETAS.len(),
        key_domain in 1u64..60,
        n in 0u64..400,
        chunk in 1usize..48,
        ways in 2usize..9,
    ) {
        let keys = zipf_keys(seed, THETAS[theta_idx], key_domain, n);
        let rows = rows_from_keys(&keys);

        let legacy = Materialized::build(rows.clone());
        let csr = Materialized::from_runs(into_runs(rows.clone(), chunk));
        // The path the pool-farmed merge takes: split (with heavy-hitter
        // carving) into disjoint groups, merge each, concatenate.
        let (groups, stats) = split_runs_stats(into_runs(rows, chunk), ways);
        let mut split_rows = Vec::new();
        let mut group_rows_seen = Vec::new();
        for group in groups {
            let merged = merge_runs(group);
            group_rows_seen.push(merged.len());
            split_rows.extend(merged);
        }
        prop_assert_eq!(&group_rows_seen, &stats.group_rows,
            "SplitStats row accounting must match the groups");
        let split = Materialized::from_sorted_rows(split_rows);

        prop_assert_eq!(&legacy.rows, &csr.rows, "CSR build diverged");
        prop_assert_eq!(&legacy.rows, &split.rows, "hot-key split diverged");
        prop_assert_eq!(digest(&legacy.rows), digest(&split.rows));
        prop_assert_eq!(legacy.min_key(), split.min_key());
        prop_assert_eq!(legacy.max_key(), split.max_key());
        for key in -1i64..=key_domain as i64 {
            let key = key as i32;
            prop_assert_eq!(
                probe_multiset(&legacy, key),
                probe_multiset(&split, key),
                "matches({}) multisets differ", key
            );
        }
        // Every detected heavy hitter must genuinely exceed an even share.
        let total: usize = stats.group_rows.iter().sum();
        for &hk in &stats.hot_keys {
            let count = legacy.matches(hk).count();
            prop_assert!(count * ways > total / 2,
                "reported hot key {} holds only {}/{} rows", hk, count, total);
        }
    }
}

// ---------------------------------------------------------------------------
// E2e: a skewed merge join through the executor, all data paths.
// ---------------------------------------------------------------------------

/// Two relations drawing keys from Zipf(1) over a 50-key domain: the rank-0
/// key holds ~22% of each side, so its join output (~5% of pairs² mass)
/// towers over every other key. Payloads are a pure function of
/// `(relation, key)` so key-sorted outputs compare row-for-row across
/// paths that emit equal-keyed rows in different worker orders.
fn skewed_catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new(StripedLayout::new(4));
    for (name, seed, n) in [("zb", 0xB01D_u64, 400u64), ("zp", 0x50B3, 2000)] {
        cat.create(name, Schema::paper_rel());
        let rows: Vec<Tuple> = zipf_keys(seed, 1.0, 50, n)
            .into_iter()
            .map(|a| Tuple::from_values(vec![Datum::Int(a), Datum::Text(format!("{name}:{a}"))]))
            .collect();
        cat.load(name, rows);
    }
    Arc::new(cat)
}

fn optimized_merge_join(cat: &Catalog, names: &[&str]) -> OptimizedQuery {
    let rels: Vec<RelInfo> = names
        .iter()
        .map(|n| {
            let rel = cat.get(n).expect("test relation");
            let s = rel.stats();
            RelInfo {
                n_tuples: s.n_tuples as f64,
                n_blocks: s.n_blocks as f64,
                n_distinct: s.n_distinct_a as f64,
                selectivity: 1.0,
                has_index: rel.index_on_a.is_some(),
                clustered: false,
            }
        })
        .collect();
    let plan = Plan::MergeJoin {
        left: Box::new(Plan::SeqScan { rel: 0 }),
        right: Box::new(Plan::SeqScan { rel: 1 }),
    };
    let costed = CostModel::paper_default().cost_plan(&plan, &rels);
    let fragments = decompose(&plan, &costed, 0);
    OptimizedQuery { seqcost: costed.cost.total_cost, parcost: 0.0, plan, fragments }
}

struct SkewRun {
    rows: Vec<(i32, Tuple)>,
    hot_keys_counter: u64,
    root_hot_keys: u64,
    root_way_rows_max: u64,
}

fn run_skewed(
    cat: &Arc<Catalog>,
    mut cfg: ExecConfig,
    faults: Option<Arc<FaultPlan>>,
) -> Result<SkewRun, ExecError> {
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let names = ["zb", "zp"];
    let optimized = optimized_merge_join(cat, &names);
    let bindings: Vec<RelBinding> = names
        .iter()
        .map(|n| RelBinding { name: (*n).to_string(), pred: (i32::MIN, i32::MAX) })
        .collect();
    let exec = Executor::new(cfg, cat.clone());
    let mut policy = IntraOnly::new(MachineConfig::paper_default(), true);
    let report = exec.run(&[QueryRun { optimized, bindings }], &mut policy)?;
    let root = report.profiles[0]
        .fragments
        .iter()
        .find(|f| f.is_root)
        .expect("root fragment profiled");
    Ok(SkewRun {
        rows: report.results[0].rows.rows.clone(),
        hot_keys_counter: report.metrics.as_ref().map_or(0, |m| m.hot_keys.get()),
        root_hot_keys: root.merge.hot_keys,
        root_way_rows_max: root.merge.way_rows_max,
    })
}

/// Forced pool-farmed merge: engage the parallel merge (and the hot-key
/// detection gate) regardless of output size or host core count.
fn forced_cfg() -> ExecConfig {
    let mut cfg = ExecConfig::unthrottled().with_obs();
    cfg.parallel_merge_min_rows = 1;
    cfg.parallel_merge_ways = 4;
    cfg
}

#[test]
fn skewed_merge_join_agrees_across_paths_and_the_hot_path_engages() {
    let cat = skewed_catalog();
    let legacy = run_skewed(
        &cat,
        ExecConfig::unthrottled().with_data_path(DataPath::GlobalLock),
        None,
    )
    .expect("GlobalLock");
    let serial = run_skewed(&cat, ExecConfig::unthrottled().with_obs(), None).expect("serial");
    let pooled = run_skewed(&cat, forced_cfg(), None).expect("pooled");

    assert!(!legacy.rows.is_empty(), "vacuous comparison");
    assert_eq!(legacy.rows, serial.rows, "serial merge path differs");
    assert_eq!(legacy.rows, pooled.rows, "pooled hot-key path differs");

    // No vacuous pass: Zipf(1) over 50 keys concentrates the join output
    // hard enough that the forced 4-way config must detect heavy hitters
    // and fan them out — both the registry counter and the root
    // fragment's merge profile must say so.
    assert!(
        pooled.hot_keys_counter > 0,
        "hot-key counter stayed zero on a Zipf(1) join"
    );
    assert!(pooled.root_hot_keys > 0, "root merge profile saw no hot keys");
    assert!(pooled.root_way_rows_max > 0, "parallel merge recorded no way sizes");
    // The hottest way must hold less than the whole output: the hot key
    // was actually split, not parked on one way.
    assert!(
        (pooled.root_way_rows_max as usize) < legacy.rows.len(),
        "one merge way swallowed the entire output"
    );
}

#[test]
fn worker_death_mid_run_preserves_skewed_results() {
    let cat = skewed_catalog();
    let fault_free = run_skewed(&cat, forced_cfg(), None).expect("fault-free");
    let optimized = optimized_merge_join(&cat, &["zb", "zp"]);
    let root_task = optimized.fragments.fragments.len() - 1;
    // Kill a scan worker (fragment 0) and, separately, a worker of the
    // root key-domain fragment — its replacement must keep skipping the
    // withheld hot keys or they would be double-emitted.
    for frag in [0, root_task] {
        let faults = Arc::new(FaultPlan::new().with_worker_death(frag, 0, 1));
        let got = run_skewed(&cat, forced_cfg(), Some(faults.clone()))
            .unwrap_or_else(|e| panic!("death in fragment {frag}: {e}"));
        assert_eq!(faults.stats().deaths_fired(), 1, "fragment {frag}: death must fire");
        assert_eq!(
            got.rows, fault_free.rows,
            "fragment {frag}: worker death changed the skewed join output"
        );
        assert!(got.hot_keys_counter > 0, "fragment {frag}: hot path disengaged");
    }
}
