//! # xprs-executor
//!
//! A real multi-threaded shared-memory parallel query executor in the XPRS
//! architecture: one **master backend** runs the optimizer and scheduler and
//! hands plan fragments to **slave backend** threads, which communicate
//! purely through shared memory (locks and channels).
//!
//! * [`io`] — the machine throttle: every heap-page read goes through a
//!   per-disk mutex whose holder "serves" the request under the
//!   `xprs-disk` service model (optionally sleeping a scaled-down service
//!   time so wall-clock behaviour mirrors the simulated machine), and a
//!   counting semaphore limits concurrently-computing workers to the
//!   machine's `N` processors.
//! * [`program`] — fragment compilation: a sequential [`xprs_optimizer::Plan`]
//!   is cut at its blocking edges (the same rule the optimizer uses) into
//!   data-parallel pipeline programs: a partitioned *driver* (page-
//!   partitioned heap scan, range-partitioned index scan, or a key-domain
//!   merge) followed by probe/merge/nest operators over materialized inputs.
//! * [`worker`] — the slave backend loop: claim the next work unit (a
//!   morsel-claimed page or key on the stealing path, a static §2.4 share
//!   otherwise), perform the throttled I/O, evaluate the pipeline, emit
//!   result tuples; workers discover retirement and new assignments
//!   through the shared partition structures, so dynamic parallelism
//!   adjustment needs no thread cancellation.
//! * [`steal`] — the morsel-driven work-stealing layer: fragments decompose
//!   into fixed-size block-range morsels dealt into per-worker deques;
//!   idle workers steal pending morsels from seeded victims, and the
//!   heartbeat patrol reclaims only a dead worker's *unclaimed* units.
//! * [`master`] — the driver: executes one or many optimized queries under
//!   any [`xprs_scheduler::SchedulePolicy`], staffing and re-partitioning
//!   worker slots on a persistent thread [`pool`] as the policy directs.
//!   Long-running callers share one machine + pool via
//!   [`master::ExecSession`] and `run_shared`.
//! * [`cancel`] — per-query deadlines and cooperative cancellation:
//!   a [`cancel::CancelToken`] fired manually or by deadline stops a
//!   query's workers at unit/morsel boundaries and releases its grant,
//!   pins and partition shares exactly once.
//! * [`pool`] — the persistent slave-backend thread pool: parallelism
//!   adjustments park and unpark long-lived threads instead of spawning and
//!   joining OS threads per slot.
//! * [`obs`] — measured utilization: hot-path metrics (gate waits, I/O
//!   retries, merge shape), per-query fragment profiles, and the pairing-
//!   window audit that checks the measured disk bandwidth against §2.2–2.3's
//!   predictions. Rendered as `metrics.json` by `ExecReport::metrics_json`.

pub mod cancel;
pub mod io;
pub mod master;
pub mod obs;
pub mod pool;
pub mod program;
pub mod steal;
pub mod worker;

pub use cancel::CancelToken;
pub use io::{CpuGate, IoFault, Machine, MachineStats, READ_ATTEMPTS, RETRY_BACKOFF};
pub use master::{
    join_worker, DataPath, ExecConfig, ExecError, ExecReport, ExecSession, Executor, MorselMode,
    QueryResult, QueryRun, DEFAULT_MORSEL_UNITS,
};
pub use obs::{
    ExecMetrics, FragmentProfile, MergeProfile, QueryProfile, UtilSample, UtilizationAudit,
};
pub use pool::WorkerPool;
pub use program::{compile, FragmentProgram, KeyIndex, Matches, Materialized, PipelineOp, ProgramSet};
pub use steal::{NextMorsel, StealPartition, MAX_STEAL_UNITS};
pub use worker::RelBinding;
