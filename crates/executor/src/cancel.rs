//! Per-query cooperative cancellation.
//!
//! A [`CancelToken`] travels with one query through
//! [`Executor::run_with_cancel`](crate::master::Executor::run_with_cancel):
//! the client (or a service front-end) fires it, or it fires itself when
//! its deadline passes. The master polls tokens on every message and every
//! patrol tick; workers observe the resulting per-fragment flag at unit
//! and morsel boundaries — the same checkpoints the PR 3 fail-stop
//! machinery uses — so cancellation never tears a unit in half, and a
//! cancelled query's grant, pins, and partition shares are released through
//! the ordinary completion protocol exactly once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct CancelInner {
    flag: AtomicBool,
    /// Absolute instant the token self-fires (`None` = manual only).
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle for one query.
///
/// Cheap to clone (one `Arc`); every clone observes the same state. A
/// token is *fired* when [`CancelToken::cancel`] was called or its
/// deadline has passed — firing is permanent.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that fires only when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner { flag: AtomicBool::new(false), deadline: None }),
        }
    }

    /// A token that also fires itself once `deadline` (measured from now)
    /// has elapsed — the per-query deadline of a latency-bound service.
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + deadline),
            }),
        }
    }

    /// Fire the token. Idempotent.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired (manually or by deadline).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch the deadline so later polls take the fast path.
                self.inner.flag.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The absolute deadline instant, when one was set and the token has
    /// not fired yet — the master folds it into its wakeup deadline so a
    /// deadline expiring on an idle channel still cancels promptly.
    pub fn deadline_instant(&self) -> Option<Instant> {
        if self.inner.flag.load(Ordering::Acquire) {
            return None;
        }
        self.inner.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_fires_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.deadline_instant(), None);
    }

    #[test]
    fn deadline_fires_by_itself() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_cancelled(), "zero deadline is already past");
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.deadline_instant().is_some());
    }
}
