//! Fragment compilation: from a sequential [`Plan`] to data-parallel
//! pipeline programs.
//!
//! The compiler cuts the plan at the same blocking edges as
//! [`xprs_optimizer::fragment::decompose`] (hash-join build sides, nestloop
//! inner sides, merge-join inputs other than bare index scans) — the two
//! walks share their traversal order, so program index `i` corresponds to
//! fragment `i` of the optimizer's [`FragmentSet`](xprs_optimizer::FragmentSet), which the master asserts
//! at run time.
//!
//! Every query in this reproduction joins on attribute `a`, so all `a`
//! values inside a joined tuple are equal; a pipeline row is therefore a
//! `(key, tuple)` pair and every join operator matches on `key`.

use std::collections::HashMap;

use xprs_optimizer::Plan;
use xprs_storage::Tuple;

/// A materialized fragment output: rows sorted by key plus a hash index.
#[derive(Debug, Clone, Default)]
pub struct Materialized {
    /// `(key, tuple)` rows in ascending key order.
    pub rows: Vec<(i32, Tuple)>,
    /// key → indices into `rows`.
    pub hash: HashMap<i32, Vec<usize>>,
}

impl Materialized {
    /// Build from unordered fragment output.
    pub fn build(mut out: Vec<(i32, Tuple)>) -> Self {
        out.sort_by_key(|(k, _)| *k);
        let mut hash: HashMap<i32, Vec<usize>> = HashMap::new();
        for (i, (k, _)) in out.iter().enumerate() {
            hash.entry(*k).or_default().push(i);
        }
        Materialized { rows: out, hash }
    }

    /// Smallest key present (None if empty).
    pub fn min_key(&self) -> Option<i32> {
        self.rows.first().map(|(k, _)| *k)
    }

    /// Largest key present.
    pub fn max_key(&self) -> Option<i32> {
        self.rows.last().map(|(k, _)| *k)
    }

    /// Rows bearing `key`.
    pub fn matches(&self, key: i32) -> impl Iterator<Item = &Tuple> {
        self.hash
            .get(&key)
            .into_iter()
            .flatten()
            .map(move |&i| &self.rows[i].1)
    }
}

/// One operator applied to the pipeline stream, bottom-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineOp {
    /// Probe the hash table of materialized fragment `dep`.
    ProbeHash {
        /// Fragment index of the build side.
        dep: usize,
    },
    /// Merge-join with the sorted rows of materialized fragment `dep`.
    MergeWith {
        /// Fragment index of the sorted side.
        dep: usize,
    },
    /// Nested-loop against the materialized rows of fragment `dep`
    /// (deliberately a linear scan per probe row — that is the operator).
    NestInner {
        /// Fragment index of the inner side.
        dep: usize,
    },
    /// Merge-join with a base index scan: per stream key, look up the
    /// relation's index and fetch the matching heap tuples (random I/O).
    MergeIndexed {
        /// Query relation index.
        rel: usize,
    },
}

impl PipelineOp {
    /// The fragment this op depends on, if any.
    pub fn dep(&self) -> Option<usize> {
        match self {
            PipelineOp::ProbeHash { dep }
            | PipelineOp::MergeWith { dep }
            | PipelineOp::NestInner { dep } => Some(*dep),
            PipelineOp::MergeIndexed { .. } => None,
        }
    }
}

/// What drives a fragment's data parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Driver {
    /// Page-partitioned heap scan of a relation.
    PageScan {
        /// Query relation index.
        rel: usize,
    },
    /// Range-partitioned index scan of a relation.
    KeyScan {
        /// Query relation index.
        rel: usize,
    },
    /// Range-partitioned walk of a key domain (merge join whose inputs are
    /// all materialized); the domain is the intersection of the inputs'
    /// key ranges, resolved when the fragment starts.
    KeyDomain,
}

/// A compiled fragment.
#[derive(Debug, Clone)]
pub struct FragmentProgram {
    /// The partitioned driver.
    pub driver: Driver,
    /// Operators applied to each driver row, in order.
    pub ops: Vec<PipelineOp>,
    /// Fragments whose materialized output this fragment consumes.
    pub deps: Vec<usize>,
}

/// All programs of one plan, index-aligned with the optimizer's fragments.
#[derive(Debug, Clone)]
pub struct ProgramSet {
    /// Programs in dependency (topological) order.
    pub programs: Vec<FragmentProgram>,
}

struct Compiler {
    programs: Vec<Option<FragmentProgram>>,
    deps: Vec<Vec<usize>>,
}

impl Compiler {
    fn fresh(&mut self) -> usize {
        self.programs.push(None);
        self.deps.push(Vec::new());
        self.programs.len() - 1
    }

    /// Compile `plan` into fragment `frag`, returning its driver and ops.
    fn pipe(&mut self, plan: &Plan, frag: usize) -> (Driver, Vec<PipelineOp>) {
        match plan {
            Plan::SeqScan { rel } => (Driver::PageScan { rel: *rel }, Vec::new()),
            Plan::IndexScan { rel } => (Driver::KeyScan { rel: *rel }, Vec::new()),
            Plan::HashJoin { build, probe } => {
                let b = self.block(build);
                self.deps[frag].push(b);
                let (d, mut ops) = self.pipe(probe, frag);
                ops.push(PipelineOp::ProbeHash { dep: b });
                (d, ops)
            }
            Plan::NestLoop { outer, inner } => {
                let i = self.block(inner);
                self.deps[frag].push(i);
                let (d, mut ops) = self.pipe(outer, frag);
                ops.push(PipelineOp::NestInner { dep: i });
                (d, ops)
            }
            Plan::MergeJoin { left, right } => {
                match (is_index_scan(left), is_index_scan(right)) {
                    (Some(_), Some(rr)) => {
                        let (d, mut ops) = self.pipe(left, frag);
                        ops.push(PipelineOp::MergeIndexed { rel: rr });
                        (d, ops)
                    }
                    (Some(_), None) => {
                        let (d, mut ops) = self.pipe(left, frag);
                        let r = self.block(right);
                        self.deps[frag].push(r);
                        ops.push(PipelineOp::MergeWith { dep: r });
                        (d, ops)
                    }
                    (None, Some(_)) => {
                        let l = self.block(left);
                        self.deps[frag].push(l);
                        let (d, mut ops) = self.pipe(right, frag);
                        ops.push(PipelineOp::MergeWith { dep: l });
                        (d, ops)
                    }
                    (None, None) => {
                        let l = self.block(left);
                        let r = self.block(right);
                        self.deps[frag].push(l);
                        self.deps[frag].push(r);
                        (
                            Driver::KeyDomain,
                            vec![PipelineOp::MergeWith { dep: l }, PipelineOp::MergeWith { dep: r }],
                        )
                    }
                }
            }
        }
    }

    fn block(&mut self, plan: &Plan) -> usize {
        let frag = self.fresh();
        let (driver, ops) = self.pipe(plan, frag);
        let deps = self.deps[frag].clone();
        self.programs[frag] = Some(FragmentProgram { driver, ops, deps });
        frag
    }
}

fn is_index_scan(p: &Plan) -> Option<usize> {
    match p {
        Plan::IndexScan { rel } => Some(*rel),
        _ => None,
    }
}

/// Compile `plan` into data-parallel fragment programs, emitted in the same
/// topological order as the optimizer's fragment decomposition.
pub fn compile(plan: &Plan) -> ProgramSet {
    let mut c = Compiler { programs: Vec::new(), deps: Vec::new() };
    let root = c.fresh();
    let (driver, ops) = c.pipe(plan, root);
    let deps = c.deps[root].clone();
    c.programs[root] = Some(FragmentProgram { driver, ops, deps });

    // Same topological re-ordering as the optimizer's decompose().
    let n = c.programs.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    fn visit(i: usize, deps: &[Vec<usize>], visited: &mut [bool], order: &mut Vec<usize>) {
        if visited[i] {
            return;
        }
        visited[i] = true;
        for &d in &deps[i] {
            visit(d, deps, visited, order);
        }
        order.push(i);
    }
    for i in 0..n {
        visit(i, &c.deps, &mut visited, &mut order);
    }
    let mut new_index = vec![0usize; n];
    for (new_i, &old_i) in order.iter().enumerate() {
        new_index[old_i] = new_i;
    }
    let programs = order
        .iter()
        .map(|&old_i| {
            let mut p = c.programs[old_i].take().expect("every fragment compiled");
            for d in &mut p.deps {
                *d = new_index[*d];
            }
            for op in &mut p.ops {
                match op {
                    PipelineOp::ProbeHash { dep }
                    | PipelineOp::MergeWith { dep }
                    | PipelineOp::NestInner { dep } => *dep = new_index[*dep],
                    PipelineOp::MergeIndexed { .. } => {}
                }
            }
            p
        })
        .collect();
    ProgramSet { programs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xprs_optimizer::cost::{CostModel, RelInfo};
    use xprs_optimizer::fragment::decompose;

    fn scan(rel: usize) -> Box<Plan> {
        Box::new(Plan::SeqScan { rel })
    }

    fn iscan(rel: usize) -> Box<Plan> {
        Box::new(Plan::IndexScan { rel })
    }

    fn rels(n: usize) -> Vec<RelInfo> {
        (0..n)
            .map(|_| RelInfo {
                n_tuples: 1000.0,
                n_blocks: 100.0,
                n_distinct: 100.0,
                selectivity: 1.0,
                has_index: true,
                clustered: false,
            })
            .collect()
    }

    /// The compiler must agree with the optimizer's decomposition.
    fn assert_aligned(plan: &Plan, n_rels: usize) -> ProgramSet {
        let ps = compile(plan);
        let m = CostModel::paper_default();
        let costed = m.cost_plan(plan, &rels(n_rels));
        let fs = decompose(plan, &costed, 0);
        assert_eq!(ps.programs.len(), fs.fragments.len(), "fragment counts differ");
        for i in 0..ps.programs.len() {
            let mut a = ps.programs[i].deps.clone();
            let mut b = fs.dag.deps_of(i).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "deps of fragment {i} differ");
        }
        ps
    }

    #[test]
    fn scan_compiles_to_a_bare_driver() {
        let ps = assert_aligned(&Plan::SeqScan { rel: 0 }, 1);
        assert_eq!(ps.programs.len(), 1);
        assert_eq!(ps.programs[0].driver, Driver::PageScan { rel: 0 });
        assert!(ps.programs[0].ops.is_empty());
    }

    #[test]
    fn hash_join_compiles_probe_pipeline() {
        let p = Plan::HashJoin { build: scan(0), probe: scan(1) };
        let ps = assert_aligned(&p, 2);
        assert_eq!(ps.programs.len(), 2);
        // Program 0 is the build scan, program 1 probes it.
        assert_eq!(ps.programs[1].ops, vec![PipelineOp::ProbeHash { dep: 0 }]);
        assert_eq!(ps.programs[1].driver, Driver::PageScan { rel: 1 });
    }

    #[test]
    fn merge_of_index_scans_stays_in_one_fragment() {
        let p = Plan::MergeJoin { left: iscan(0), right: iscan(1) };
        let ps = assert_aligned(&p, 2);
        assert_eq!(ps.programs.len(), 1);
        assert_eq!(ps.programs[0].driver, Driver::KeyScan { rel: 0 });
        assert_eq!(ps.programs[0].ops, vec![PipelineOp::MergeIndexed { rel: 1 }]);
    }

    #[test]
    fn merge_of_seq_scans_uses_a_key_domain_driver() {
        let p = Plan::MergeJoin { left: scan(0), right: scan(1) };
        let ps = assert_aligned(&p, 2);
        assert_eq!(ps.programs.len(), 3);
        let root = &ps.programs[2];
        assert_eq!(root.driver, Driver::KeyDomain);
        assert_eq!(root.ops.len(), 2);
    }

    #[test]
    fn deep_pipeline_chains_probe_in_order() {
        // HJ(build=s0, probe=HJ(build=s1, probe=s2)): the probe pipeline
        // scans rel 2, probes the inner build then the outer build.
        let p = Plan::HashJoin {
            build: scan(0),
            probe: Box::new(Plan::HashJoin { build: scan(1), probe: scan(2) }),
        };
        let ps = assert_aligned(&p, 3);
        let root = ps.programs.last().unwrap();
        assert_eq!(root.driver, Driver::PageScan { rel: 2 });
        assert_eq!(root.ops.len(), 2);
        // Inner probe happens before the outer probe.
        let dep_order: Vec<usize> = root.ops.iter().filter_map(|o| o.dep()).collect();
        assert_eq!(dep_order.len(), 2);
        assert_ne!(dep_order[0], dep_order[1]);
    }

    #[test]
    fn nestloop_materializes_inner() {
        let p = Plan::NestLoop { outer: scan(0), inner: iscan(1) };
        let ps = assert_aligned(&p, 2);
        assert_eq!(ps.programs.len(), 2);
        let root = &ps.programs[1];
        assert_eq!(root.ops, vec![PipelineOp::NestInner { dep: 0 }]);
        // Inner was an index scan fragment.
        assert_eq!(ps.programs[0].driver, Driver::KeyScan { rel: 1 });
    }

    #[test]
    fn bushy_tree_alignment() {
        let p = Plan::HashJoin {
            build: Box::new(Plan::HashJoin { build: scan(0), probe: scan(1) }),
            probe: Box::new(Plan::MergeJoin { left: iscan(2), right: iscan(3) }),
        };
        assert_aligned(&p, 4);
    }

    #[test]
    fn materialized_build_and_lookup() {
        let rows = vec![
            (5, Tuple::from_values(vec![])),
            (1, Tuple::from_values(vec![])),
            (5, Tuple::from_values(vec![])),
        ];
        let m = Materialized::build(rows);
        assert_eq!(m.min_key(), Some(1));
        assert_eq!(m.max_key(), Some(5));
        assert_eq!(m.matches(5).count(), 2);
        assert_eq!(m.matches(2).count(), 0);
        assert!(m.rows.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
