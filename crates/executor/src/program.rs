//! Fragment compilation: from a sequential [`Plan`] to data-parallel
//! pipeline programs.
//!
//! The compiler cuts the plan at the same blocking edges as
//! [`xprs_optimizer::fragment::decompose`] (hash-join build sides, nestloop
//! inner sides, merge-join inputs other than bare index scans) — the two
//! walks share their traversal order, so program index `i` corresponds to
//! fragment `i` of the optimizer's [`FragmentSet`](xprs_optimizer::FragmentSet), which the master asserts
//! at run time.
//!
//! Every query in this reproduction joins on attribute `a`, so all `a`
//! values inside a joined tuple are equal; a pipeline row is therefore a
//! `(key, tuple)` pair and every join operator matches on `key`.

use std::collections::HashMap;

use xprs_optimizer::Plan;
use xprs_storage::runs::{merge_runs, CsrIndex};
use xprs_storage::Tuple;

/// How a [`Materialized`]'s rows are indexed by key.
///
/// [`KeyIndex::Csr`] is the production index: sorted unique keys + CSR
/// offsets + positions, built by one counting pass over the already-sorted
/// rows; a probe is a binary search (or cursor seek) plus a slice borrow,
/// with zero heap allocation. [`KeyIndex::Hash`] is the seed's
/// `HashMap<key, Vec<pos>>`, kept selectable (via
/// [`DataPath::GlobalLock`](crate::master::DataPath)) for A/B benchmarking.
#[derive(Debug, Clone)]
pub enum KeyIndex {
    /// Seed path: key → indices into `rows`, one heap `Vec` per key.
    Hash(HashMap<i32, Vec<usize>>),
    /// Allocation-lean CSR over the sorted rows.
    Csr(CsrIndex),
}

impl Default for KeyIndex {
    fn default() -> Self {
        KeyIndex::Csr(CsrIndex::default())
    }
}

/// A materialized fragment output: rows sorted by key plus a key index.
#[derive(Debug, Clone, Default)]
pub struct Materialized {
    /// `(key, tuple)` rows in ascending key order.
    pub rows: Vec<(i32, Tuple)>,
    /// key → positions into `rows`.
    index: KeyIndex,
}

/// Iterator over the rows bearing one key (see [`Materialized::matches`]).
pub struct Matches<'a> {
    rows: &'a [(i32, Tuple)],
    idx: MatchIdx<'a>,
}

enum MatchIdx<'a> {
    Hash(std::slice::Iter<'a, usize>),
    Csr(std::slice::Iter<'a, u32>),
}

impl<'a> Iterator for Matches<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        let pos = match &mut self.idx {
            MatchIdx::Hash(it) => it.next().copied()?,
            MatchIdx::Csr(it) => it.next().copied()? as usize,
        };
        Some(&self.rows[pos].1)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.idx {
            MatchIdx::Hash(it) => it.size_hint(),
            MatchIdx::Csr(it) => it.size_hint(),
        }
    }
}

const NO_HASH_MATCH: &[usize] = &[];

impl Materialized {
    /// Build from unordered fragment output with the seed's hash index
    /// (the legacy path, selected by `DataPath::GlobalLock`): full stable
    /// re-sort, then one hash-map entry per key with a growing `Vec` of
    /// positions.
    pub fn build(mut out: Vec<(i32, Tuple)>) -> Self {
        out.sort_by_key(|(k, _)| *k);
        let mut hash: HashMap<i32, Vec<usize>> = HashMap::new();
        for (i, (k, _)) in out.iter().enumerate() {
            hash.entry(*k).or_default().push(i);
        }
        Materialized { rows: out, index: KeyIndex::Hash(hash) }
    }

    /// Build from rows already sorted by key: one counting pass erects the
    /// CSR index, no re-sort, no per-key allocation.
    pub fn from_sorted_rows(rows: Vec<(i32, Tuple)>) -> Self {
        let index = KeyIndex::Csr(CsrIndex::from_sorted(&rows));
        Materialized { rows, index }
    }

    /// Build from locally sorted worker runs by stable k-way merge
    /// (O(n log k)) plus the CSR counting pass. Equal keys keep run order,
    /// so merging consecutive stably-sorted chunks of a vector reproduces
    /// [`Materialized::build`]'s row order exactly.
    pub fn from_runs(runs: Vec<Vec<(i32, Tuple)>>) -> Self {
        Materialized::from_sorted_rows(merge_runs(runs))
    }

    /// Smallest key present (None if empty).
    pub fn min_key(&self) -> Option<i32> {
        self.rows.first().map(|(k, _)| *k)
    }

    /// Largest key present.
    pub fn max_key(&self) -> Option<i32> {
        self.rows.last().map(|(k, _)| *k)
    }

    /// Is this backed by the allocation-lean CSR index?
    pub fn is_csr(&self) -> bool {
        matches!(self.index, KeyIndex::Csr(_))
    }

    /// Rows bearing `key`: a hash lookup on the legacy index, a binary
    /// search + slice borrow (zero allocation) on the CSR index.
    pub fn matches(&self, key: i32) -> Matches<'_> {
        let idx = match &self.index {
            KeyIndex::Hash(h) => {
                MatchIdx::Hash(h.get(&key).map_or(NO_HASH_MATCH, Vec::as_slice).iter())
            }
            KeyIndex::Csr(c) => MatchIdx::Csr(c.lookup(key).iter()),
        };
        Matches { rows: &self.rows, idx }
    }

    /// Cursor-based variant of [`Materialized::matches`] for merge joins:
    /// over an ascending probe-key stream the CSR cursor only moves
    /// forward (amortized O(1) per probe), falling back to a binary
    /// re-seek when the stream regresses (e.g. after an interval
    /// re-partitioning). The legacy hash index ignores the cursor.
    pub fn matches_from(&self, key: i32, cursor: &mut usize) -> Matches<'_> {
        let idx = match &self.index {
            KeyIndex::Hash(h) => {
                MatchIdx::Hash(h.get(&key).map_or(NO_HASH_MATCH, Vec::as_slice).iter())
            }
            KeyIndex::Csr(c) => MatchIdx::Csr(c.seek(key, cursor).iter()),
        };
        Matches { rows: &self.rows, idx }
    }
}

/// One operator applied to the pipeline stream, bottom-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineOp {
    /// Probe the hash table of materialized fragment `dep`.
    ProbeHash {
        /// Fragment index of the build side.
        dep: usize,
    },
    /// Merge-join with the sorted rows of materialized fragment `dep`.
    MergeWith {
        /// Fragment index of the sorted side.
        dep: usize,
    },
    /// Nested-loop against the materialized rows of fragment `dep`
    /// (deliberately a linear scan per probe row — that is the operator).
    NestInner {
        /// Fragment index of the inner side.
        dep: usize,
    },
    /// Merge-join with a base index scan: per stream key, look up the
    /// relation's index and fetch the matching heap tuples (random I/O).
    MergeIndexed {
        /// Query relation index.
        rel: usize,
    },
}

impl PipelineOp {
    /// The fragment this op depends on, if any.
    pub fn dep(&self) -> Option<usize> {
        match self {
            PipelineOp::ProbeHash { dep }
            | PipelineOp::MergeWith { dep }
            | PipelineOp::NestInner { dep } => Some(*dep),
            PipelineOp::MergeIndexed { .. } => None,
        }
    }
}

/// What drives a fragment's data parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Driver {
    /// Page-partitioned heap scan of a relation.
    PageScan {
        /// Query relation index.
        rel: usize,
    },
    /// Range-partitioned index scan of a relation.
    KeyScan {
        /// Query relation index.
        rel: usize,
    },
    /// Range-partitioned walk of a key domain (merge join whose inputs are
    /// all materialized); the domain is the intersection of the inputs'
    /// key ranges, resolved when the fragment starts.
    KeyDomain,
}

/// A compiled fragment.
#[derive(Debug, Clone)]
pub struct FragmentProgram {
    /// The partitioned driver.
    pub driver: Driver,
    /// Operators applied to each driver row, in order.
    pub ops: Vec<PipelineOp>,
    /// Fragments whose materialized output this fragment consumes.
    pub deps: Vec<usize>,
}

/// All programs of one plan, index-aligned with the optimizer's fragments.
#[derive(Debug, Clone)]
pub struct ProgramSet {
    /// Programs in dependency (topological) order.
    pub programs: Vec<FragmentProgram>,
}

struct Compiler {
    programs: Vec<Option<FragmentProgram>>,
    deps: Vec<Vec<usize>>,
}

impl Compiler {
    fn fresh(&mut self) -> usize {
        self.programs.push(None);
        self.deps.push(Vec::new());
        self.programs.len() - 1
    }

    /// Compile `plan` into fragment `frag`, returning its driver and ops.
    fn pipe(&mut self, plan: &Plan, frag: usize) -> (Driver, Vec<PipelineOp>) {
        match plan {
            Plan::SeqScan { rel } => (Driver::PageScan { rel: *rel }, Vec::new()),
            Plan::IndexScan { rel } => (Driver::KeyScan { rel: *rel }, Vec::new()),
            Plan::HashJoin { build, probe } => {
                let b = self.block(build);
                self.deps[frag].push(b);
                let (d, mut ops) = self.pipe(probe, frag);
                ops.push(PipelineOp::ProbeHash { dep: b });
                (d, ops)
            }
            Plan::NestLoop { outer, inner } => {
                let i = self.block(inner);
                self.deps[frag].push(i);
                let (d, mut ops) = self.pipe(outer, frag);
                ops.push(PipelineOp::NestInner { dep: i });
                (d, ops)
            }
            Plan::MergeJoin { left, right } => {
                match (is_index_scan(left), is_index_scan(right)) {
                    (Some(_), Some(rr)) => {
                        let (d, mut ops) = self.pipe(left, frag);
                        ops.push(PipelineOp::MergeIndexed { rel: rr });
                        (d, ops)
                    }
                    (Some(_), None) => {
                        let (d, mut ops) = self.pipe(left, frag);
                        let r = self.block(right);
                        self.deps[frag].push(r);
                        ops.push(PipelineOp::MergeWith { dep: r });
                        (d, ops)
                    }
                    (None, Some(_)) => {
                        let l = self.block(left);
                        self.deps[frag].push(l);
                        let (d, mut ops) = self.pipe(right, frag);
                        ops.push(PipelineOp::MergeWith { dep: l });
                        (d, ops)
                    }
                    (None, None) => {
                        let l = self.block(left);
                        let r = self.block(right);
                        self.deps[frag].push(l);
                        self.deps[frag].push(r);
                        (
                            Driver::KeyDomain,
                            vec![PipelineOp::MergeWith { dep: l }, PipelineOp::MergeWith { dep: r }],
                        )
                    }
                }
            }
        }
    }

    fn block(&mut self, plan: &Plan) -> usize {
        let frag = self.fresh();
        let (driver, ops) = self.pipe(plan, frag);
        let deps = self.deps[frag].clone();
        self.programs[frag] = Some(FragmentProgram { driver, ops, deps });
        frag
    }
}

fn is_index_scan(p: &Plan) -> Option<usize> {
    match p {
        Plan::IndexScan { rel } => Some(*rel),
        _ => None,
    }
}

/// Compile `plan` into data-parallel fragment programs, emitted in the same
/// topological order as the optimizer's fragment decomposition.
pub fn compile(plan: &Plan) -> ProgramSet {
    let mut c = Compiler { programs: Vec::new(), deps: Vec::new() };
    let root = c.fresh();
    let (driver, ops) = c.pipe(plan, root);
    let deps = c.deps[root].clone();
    c.programs[root] = Some(FragmentProgram { driver, ops, deps });

    // Same topological re-ordering as the optimizer's decompose().
    let n = c.programs.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    fn visit(i: usize, deps: &[Vec<usize>], visited: &mut [bool], order: &mut Vec<usize>) {
        if visited[i] {
            return;
        }
        visited[i] = true;
        for &d in &deps[i] {
            visit(d, deps, visited, order);
        }
        order.push(i);
    }
    for i in 0..n {
        visit(i, &c.deps, &mut visited, &mut order);
    }
    let mut new_index = vec![0usize; n];
    for (new_i, &old_i) in order.iter().enumerate() {
        new_index[old_i] = new_i;
    }
    let programs = order
        .iter()
        .map(|&old_i| {
            let mut p = c.programs[old_i].take().expect("every fragment compiled");
            for d in &mut p.deps {
                *d = new_index[*d];
            }
            for op in &mut p.ops {
                match op {
                    PipelineOp::ProbeHash { dep }
                    | PipelineOp::MergeWith { dep }
                    | PipelineOp::NestInner { dep } => *dep = new_index[*dep],
                    PipelineOp::MergeIndexed { .. } => {}
                }
            }
            p
        })
        .collect();
    ProgramSet { programs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xprs_optimizer::cost::{CostModel, RelInfo};
    use xprs_optimizer::fragment::decompose;

    fn scan(rel: usize) -> Box<Plan> {
        Box::new(Plan::SeqScan { rel })
    }

    fn iscan(rel: usize) -> Box<Plan> {
        Box::new(Plan::IndexScan { rel })
    }

    fn rels(n: usize) -> Vec<RelInfo> {
        (0..n)
            .map(|_| RelInfo {
                n_tuples: 1000.0,
                n_blocks: 100.0,
                n_distinct: 100.0,
                selectivity: 1.0,
                has_index: true,
                clustered: false,
            })
            .collect()
    }

    /// The compiler must agree with the optimizer's decomposition.
    fn assert_aligned(plan: &Plan, n_rels: usize) -> ProgramSet {
        let ps = compile(plan);
        let m = CostModel::paper_default();
        let costed = m.cost_plan(plan, &rels(n_rels));
        let fs = decompose(plan, &costed, 0);
        assert_eq!(ps.programs.len(), fs.fragments.len(), "fragment counts differ");
        for i in 0..ps.programs.len() {
            let mut a = ps.programs[i].deps.clone();
            let mut b = fs.dag.deps_of(i).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "deps of fragment {i} differ");
        }
        ps
    }

    #[test]
    fn scan_compiles_to_a_bare_driver() {
        let ps = assert_aligned(&Plan::SeqScan { rel: 0 }, 1);
        assert_eq!(ps.programs.len(), 1);
        assert_eq!(ps.programs[0].driver, Driver::PageScan { rel: 0 });
        assert!(ps.programs[0].ops.is_empty());
    }

    #[test]
    fn hash_join_compiles_probe_pipeline() {
        let p = Plan::HashJoin { build: scan(0), probe: scan(1) };
        let ps = assert_aligned(&p, 2);
        assert_eq!(ps.programs.len(), 2);
        // Program 0 is the build scan, program 1 probes it.
        assert_eq!(ps.programs[1].ops, vec![PipelineOp::ProbeHash { dep: 0 }]);
        assert_eq!(ps.programs[1].driver, Driver::PageScan { rel: 1 });
    }

    #[test]
    fn merge_of_index_scans_stays_in_one_fragment() {
        let p = Plan::MergeJoin { left: iscan(0), right: iscan(1) };
        let ps = assert_aligned(&p, 2);
        assert_eq!(ps.programs.len(), 1);
        assert_eq!(ps.programs[0].driver, Driver::KeyScan { rel: 0 });
        assert_eq!(ps.programs[0].ops, vec![PipelineOp::MergeIndexed { rel: 1 }]);
    }

    #[test]
    fn merge_of_seq_scans_uses_a_key_domain_driver() {
        let p = Plan::MergeJoin { left: scan(0), right: scan(1) };
        let ps = assert_aligned(&p, 2);
        assert_eq!(ps.programs.len(), 3);
        let root = &ps.programs[2];
        assert_eq!(root.driver, Driver::KeyDomain);
        assert_eq!(root.ops.len(), 2);
    }

    #[test]
    fn deep_pipeline_chains_probe_in_order() {
        // HJ(build=s0, probe=HJ(build=s1, probe=s2)): the probe pipeline
        // scans rel 2, probes the inner build then the outer build.
        let p = Plan::HashJoin {
            build: scan(0),
            probe: Box::new(Plan::HashJoin { build: scan(1), probe: scan(2) }),
        };
        let ps = assert_aligned(&p, 3);
        let root = ps.programs.last().unwrap();
        assert_eq!(root.driver, Driver::PageScan { rel: 2 });
        assert_eq!(root.ops.len(), 2);
        // Inner probe happens before the outer probe.
        let dep_order: Vec<usize> = root.ops.iter().filter_map(|o| o.dep()).collect();
        assert_eq!(dep_order.len(), 2);
        assert_ne!(dep_order[0], dep_order[1]);
    }

    #[test]
    fn nestloop_materializes_inner() {
        let p = Plan::NestLoop { outer: scan(0), inner: iscan(1) };
        let ps = assert_aligned(&p, 2);
        assert_eq!(ps.programs.len(), 2);
        let root = &ps.programs[1];
        assert_eq!(root.ops, vec![PipelineOp::NestInner { dep: 0 }]);
        // Inner was an index scan fragment.
        assert_eq!(ps.programs[0].driver, Driver::KeyScan { rel: 1 });
    }

    #[test]
    fn bushy_tree_alignment() {
        let p = Plan::HashJoin {
            build: Box::new(Plan::HashJoin { build: scan(0), probe: scan(1) }),
            probe: Box::new(Plan::MergeJoin { left: iscan(2), right: iscan(3) }),
        };
        assert_aligned(&p, 4);
    }

    #[test]
    fn materialized_build_and_lookup() {
        let rows = vec![
            (5, Tuple::from_values(vec![])),
            (1, Tuple::from_values(vec![])),
            (5, Tuple::from_values(vec![])),
        ];
        let m = Materialized::build(rows);
        assert!(!m.is_csr());
        assert_eq!(m.min_key(), Some(1));
        assert_eq!(m.max_key(), Some(5));
        assert_eq!(m.matches(5).count(), 2);
        assert_eq!(m.matches(2).count(), 0);
        assert!(m.rows.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    fn tagged(key: i32, tag: i32) -> (i32, Tuple) {
        (key, Tuple::from_values(vec![xprs_storage::Datum::Int(tag)]))
    }

    #[test]
    fn csr_build_from_runs_equals_legacy_build() {
        let rows = vec![
            tagged(5, 0),
            tagged(-1, 1),
            tagged(5, 2),
            tagged(3, 3),
            tagged(-1, 4),
            tagged(5, 5),
            tagged(7, 6),
        ];
        let legacy = Materialized::build(rows.clone());
        // Worker emulation: consecutive chunks, each stably sorted locally.
        let mut runs: Vec<Vec<(i32, Tuple)>> = rows.chunks(3).map(|c| c.to_vec()).collect();
        for r in &mut runs {
            r.sort_by_key(|(k, _)| *k);
        }
        let csr = Materialized::from_runs(runs);
        assert!(csr.is_csr());
        assert_eq!(csr.rows, legacy.rows, "stable merge must reproduce the stable sort");
        assert_eq!(csr.min_key(), legacy.min_key());
        assert_eq!(csr.max_key(), legacy.max_key());
        for key in -2..9 {
            let a: Vec<&Tuple> = legacy.matches(key).collect();
            let b: Vec<&Tuple> = csr.matches(key).collect();
            assert_eq!(a, b, "matches({key})");
        }
    }

    #[test]
    fn csr_cursor_matches_agree_with_plain_matches() {
        let mut rows: Vec<(i32, Tuple)> = (0..200).map(|i| tagged(i % 17, i)).collect();
        rows.sort_by_key(|(k, _)| *k);
        let m = Materialized::from_sorted_rows(rows);
        let mut cursor = 0usize;
        // Ascending probes, then a regression, then ascent again.
        for key in [-3, 0, 0, 4, 4, 5, 16, 20, 2, 11, 11, 16] {
            let a: Vec<&Tuple> = m.matches(key).collect();
            let b: Vec<&Tuple> = m.matches_from(key, &mut cursor).collect();
            assert_eq!(a, b, "probe {key}");
        }
    }

    #[test]
    fn empty_materialized_probes_cleanly_on_both_indexes() {
        for m in [Materialized::build(Vec::new()), Materialized::from_runs(Vec::new())] {
            assert_eq!(m.min_key(), None);
            assert_eq!(m.max_key(), None);
            assert_eq!(m.matches(0).count(), 0);
            let mut cur = 0;
            assert_eq!(m.matches_from(0, &mut cur).count(), 0);
        }
    }
}
