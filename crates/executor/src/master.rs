//! The master backend: runs queries under a scheduling policy.
//!
//! The master owns the clock and the policy. For every optimized query it
//! compiles the plan into fragment programs, announces runnable fragments to
//! the policy as they become ready (roots first, consumers as their
//! producers finish), applies `Start` actions by spawning slave-backend
//! threads, and applies `Adjust` actions by running the Section 2.4
//! protocols on the shared partition state and staffing any newly created
//! worker slots.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use xprs_optimizer::OptimizedQuery;
use xprs_scheduler::policy::{Action, RunningTask, SchedulePolicy};
use xprs_scheduler::{MachineConfig, TaskId, TaskProfile};
use xprs_storage::partition::{PagePartition, RangePartition};
use xprs_storage::Catalog;

use crate::io::{Machine, MachineStats};
use crate::program::{compile, Driver, Materialized};
use crate::worker::{run_worker, FragCtx, PartitionState, RelBinding};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Machine model (processors, disks, service rates).
    pub machine: MachineConfig,
    /// Wall seconds per simulated second; `0.0` = run at full speed.
    pub scale: f64,
    /// CPU seconds charged per tuple examined.
    pub cpu_tuple: f64,
    /// Shared buffer-pool frames (0 disables buffering). The paper's
    /// workloads scan relations far larger than memory, so the default is a
    /// modest pool that cannot cache a whole scan.
    pub bufpool_pages: usize,
}

impl ExecConfig {
    /// Functional-testing configuration: paper machine, no throttling.
    pub fn unthrottled() -> Self {
        ExecConfig {
            machine: MachineConfig::paper_default(),
            scale: 0.0,
            cpu_tuple: 0.25e-3,
            bufpool_pages: 512,
        }
    }

    /// Demonstration configuration running `speedup`× faster than real time.
    pub fn scaled(speedup: f64) -> Self {
        assert!(speedup > 0.0);
        ExecConfig {
            machine: MachineConfig::paper_default(),
            scale: 1.0 / speedup,
            cpu_tuple: 0.25e-3,
            bufpool_pages: 512,
        }
    }
}

/// One query to execute: the optimizer's output plus concrete selection
/// ranges for each of the query's relations.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Optimized plan with fragment estimates.
    pub optimized: OptimizedQuery,
    /// Per-relation inclusive selection range on `a` (aligned with the
    /// query's relation list).
    pub bindings: Vec<RelBinding>,
}

/// Result of one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The root fragment's output, sorted by key.
    pub rows: Arc<Materialized>,
    /// Wall-clock seconds from run start to query completion.
    pub finished_at: f64,
}

/// Result of a whole run.
#[derive(Debug)]
pub struct ExecReport {
    /// Per-query results, in submission order.
    pub results: Vec<QueryResult>,
    /// Machine statistics (I/O class mix).
    pub stats: MachineStats,
    /// Total wall-clock seconds.
    pub wall: f64,
    /// Per-fragment `(task, start, finish)` wall times.
    pub fragment_times: Vec<(TaskId, f64, f64)>,
}

enum FragStatus {
    Blocked,
    Ready,
    Running(Arc<FragCtx>),
    Done,
}

struct FragSlot {
    profile: TaskProfile,
    program: crate::program::FragmentProgram,
    bindings: Vec<RelBinding>,
    /// Global indices of producer fragments.
    deps: Vec<usize>,
    /// Per-query-local index of each producer (pipeline ops refer to these).
    local_deps: Vec<usize>,
    query: usize,
    is_root: bool,
    status: FragStatus,
    output: Option<Arc<Materialized>>,
    started_at: f64,
    finished_at: f64,
}

/// The multi-threaded XPRS executor.
pub struct Executor {
    cfg: ExecConfig,
    catalog: Arc<Catalog>,
}

impl Executor {
    /// An executor over `catalog` with configuration `cfg`.
    pub fn new(cfg: ExecConfig, catalog: Arc<Catalog>) -> Self {
        Executor { cfg, catalog }
    }

    /// Execute `queries` under `policy`; blocks until all are complete.
    ///
    /// # Panics
    /// Panics if a compiled program disagrees with the optimizer's fragment
    /// decomposition, or if the policy wedges.
    pub fn run(&self, queries: &[QueryRun], policy: &mut dyn SchedulePolicy) -> ExecReport {
        let machine = Arc::new(Machine::with_pool(&self.cfg.machine, self.cfg.scale, self.cfg.bufpool_pages));
        let (tx, rx) = unbounded::<usize>();
        let t0 = Instant::now();

        // Build the global fragment table.
        let mut frags: Vec<FragSlot> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let ps = compile(&q.optimized.plan);
            let fs = &q.optimized.fragments;
            assert_eq!(
                ps.programs.len(),
                fs.fragments.len(),
                "query {qi}: compiled programs disagree with the fragment decomposition"
            );
            let base = frags.len();
            let n = ps.programs.len();
            for (fi, program) in ps.programs.into_iter().enumerate() {
                let mut a = program.deps.clone();
                let mut b = fs.dag.deps_of(fi).to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "query {qi} fragment {fi}: dependency mismatch");
                let mut profile = fs.fragments[fi].profile.clone();
                profile.id = TaskId((qi as u64) << 32 | fi as u64);
                frags.push(FragSlot {
                    profile,
                    local_deps: program.deps.clone(),
                    deps: program.deps.iter().map(|d| base + d).collect(),
                    program,
                    bindings: q.bindings.clone(),
                    query: qi,
                    is_root: fi == n - 1,
                    status: FragStatus::Blocked,
                    output: None,
                    started_at: 0.0,
                    finished_at: 0.0,
                });
            }
        }

        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut done_count = 0usize;

        // Announce the roots of every query.
        let now = |t0: Instant| t0.elapsed().as_secs_f64();
        for f in frags.iter_mut().filter(|f| f.deps.is_empty()) {
            f.status = FragStatus::Ready;
            policy.on_arrival(now(t0), f.profile.clone());
        }
        self.decide(policy, &mut frags, &machine, &tx, &mut handles, t0);

        while done_count < frags.len() {
            let gid = rx.recv().expect("worker channel closed prematurely");
            let t_done = now(t0);
            // Finalize: harvest the output, free the context.
            let ctx = match std::mem::replace(&mut frags[gid].status, FragStatus::Done) {
                FragStatus::Running(ctx) => ctx,
                other => {
                    frags[gid].status = other;
                    panic!("completion message for non-running fragment {gid}");
                }
            };
            let rows = std::mem::take(&mut *ctx.out.lock());
            frags[gid].output = Some(Arc::new(Materialized::build(rows)));
            frags[gid].finished_at = t_done;
            done_count += 1;
            policy.on_finish(t_done, frags[gid].profile.id);

            // Promote consumers whose producers are now all done.
            for i in 0..frags.len() {
                if matches!(frags[i].status, FragStatus::Blocked)
                    && frags[i].deps.iter().all(|&d| matches!(frags[d].status, FragStatus::Done))
                {
                    frags[i].status = FragStatus::Ready;
                    policy.on_arrival(t_done, frags[i].profile.clone());
                }
            }
            self.decide(policy, &mut frags, &machine, &tx, &mut handles, t0);
        }

        for h in handles {
            h.join().expect("worker panicked");
        }

        let wall = now(t0);
        let results = queries
            .iter()
            .enumerate()
            .map(|(qi, _)| {
                let root = frags
                    .iter()
                    .find(|f| f.query == qi && f.is_root)
                    .expect("every query has a root fragment");
                QueryResult {
                    rows: root.output.clone().expect("root finished"),
                    finished_at: root.finished_at,
                }
            })
            .collect();
        ExecReport {
            results,
            stats: machine.stats(),
            wall,
            fragment_times: frags
                .iter()
                .map(|f| (f.profile.id, f.started_at, f.finished_at))
                .collect(),
        }
    }

    fn decide(
        &self,
        policy: &mut dyn SchedulePolicy,
        frags: &mut [FragSlot],
        machine: &Arc<Machine>,
        tx: &Sender<usize>,
        handles: &mut Vec<std::thread::JoinHandle<()>>,
        t0: Instant,
    ) {
        let now = t0.elapsed().as_secs_f64();
        for _round in 0..32 {
            let snapshot: Vec<RunningTask> = frags
                .iter()
                .filter_map(|f| match &f.status {
                    FragStatus::Running(ctx) => {
                        let total = ctx.total_units.max(1) as f64;
                        let done = ctx.units_done.load(Ordering::Relaxed) as f64;
                        Some(RunningTask {
                            profile: f.profile.clone(),
                            parallelism: ctx.target_parallelism.load(Ordering::Relaxed) as f64,
                            remaining_seq_time: f.profile.seq_time * (1.0 - done / total).max(0.0),
                        })
                    }
                    _ => None,
                })
                .collect();
            let actions = policy.decide(now, &snapshot);
            if actions.is_empty() {
                return;
            }
            for a in actions {
                let gid = frags
                    .iter()
                    .position(|f| f.profile.id == a.task())
                    .unwrap_or_else(|| panic!("policy referenced unknown task {}", a.task()));
                match a {
                    Action::Start { parallelism, .. } => {
                        self.start_fragment(frags, gid, parallelism, machine, tx, handles, t0)
                    }
                    Action::Adjust { parallelism, .. } => {
                        self.adjust_fragment(frags, gid, parallelism, machine, handles)
                    }
                }
            }
        }
        panic!("policy {} did not reach a fixpoint in 32 rounds", policy.name());
    }

    #[allow(clippy::too_many_arguments)]
    fn start_fragment(
        &self,
        frags: &mut [FragSlot],
        gid: usize,
        parallelism: f64,
        machine: &Arc<Machine>,
        tx: &Sender<usize>,
        handles: &mut Vec<std::thread::JoinHandle<()>>,
        t0: Instant,
    ) {
        assert!(
            matches!(frags[gid].status, FragStatus::Ready),
            "policy started fragment {gid} in the wrong state"
        );
        let x = to_workers(parallelism, self.cfg.machine.n_procs);

        // Materialized inputs, keyed by query-local fragment index.
        let inputs: HashMap<usize, Arc<Materialized>> = frags[gid]
            .local_deps
            .iter()
            .zip(frags[gid].deps.iter())
            .map(|(&local, &dep)| {
                (local, frags[dep].output.clone().expect("producer finished before consumer"))
            })
            .collect();

        // Partition state + work-unit count per driver.
        let (partition, total_units) = match frags[gid].program.driver {
            Driver::PageScan { rel } => {
                let relation = self
                    .catalog
                    .get(&frags[gid].bindings[rel].name)
                    .unwrap_or_else(|| panic!("unknown relation {}", frags[gid].bindings[rel].name));
                let n = relation.heap.n_blocks();
                (PartitionState::Page(PagePartition::new(n, x)), n)
            }
            Driver::KeyScan { rel } => {
                let binding = &frags[gid].bindings[rel];
                let relation = self
                    .catalog
                    .get(&binding.name)
                    .unwrap_or_else(|| panic!("unknown relation {}", binding.name));
                let s = relation.stats();
                let lo = binding.pred.0.max(s.min_a) as i64;
                let hi = binding.pred.1.min(s.max_a) as i64;
                range_partition(lo, hi, x)
            }
            Driver::KeyDomain => {
                // Intersection of the materialized inputs' key ranges.
                let mut lo = i64::MIN;
                let mut hi = i64::MAX;
                for op in &frags[gid].program.ops {
                    if let Some(dep) = op.dep() {
                        let m = &inputs[&dep];
                        lo = lo.max(m.min_key().map_or(i64::MAX, |k| k as i64));
                        hi = hi.min(m.max_key().map_or(i64::MIN, |k| k as i64));
                    }
                }
                range_partition(lo, hi, x)
            }
        };

        let ctx = Arc::new(FragCtx {
            gid,
            program: frags[gid].program.clone(),
            rels: frags[gid].bindings.clone(),
            inputs,
            partition: Mutex::new(partition),
            exited_slots: Mutex::new(Vec::new()),
            units_done: AtomicU64::new(0),
            total_units,
            out: Mutex::new(Vec::new()),
            target_parallelism: AtomicU32::new(x),
            done: AtomicBool::new(false),
            done_tx: tx.clone(),
            cpu_tuple: self.cfg.cpu_tuple,
        });
        frags[gid].started_at = t0.elapsed().as_secs_f64();
        frags[gid].status = FragStatus::Running(ctx.clone());

        if total_units == 0 {
            // Nothing to scan (empty relation or empty key intersection):
            // complete immediately through the normal channel.
            if !ctx.done.swap(true, Ordering::SeqCst) {
                let _ = tx.send(gid);
            }
            return;
        }
        for slot in 0..x as usize {
            handles.push(spawn_worker(ctx.clone(), slot, machine, &self.catalog));
        }
    }

    fn adjust_fragment(
        &self,
        frags: &mut [FragSlot],
        gid: usize,
        parallelism: f64,
        machine: &Arc<Machine>,
        handles: &mut Vec<std::thread::JoinHandle<()>>,
    ) {
        let FragStatus::Running(ctx) = &frags[gid].status else {
            // The fragment finished in the window between the snapshot and
            // this action; the adjustment is moot.
            return;
        };
        let x = to_workers(parallelism, self.cfg.machine.n_procs);
        ctx.target_parallelism.store(x, Ordering::Relaxed);
        let (info, active) = {
            let mut p = ctx.partition.lock();
            match &mut *p {
                PartitionState::Page(pp) => (pp.adjust(x), pp.active_slots()),
                PartitionState::Range(rp) => (rp.adjust(x), rp.active_slots()),
            }
        };
        for slot in info.new_slots {
            handles.push(spawn_worker(ctx.clone(), slot, machine, &self.catalog));
        }
        // Re-staff previously drained slots that the new assignment handed
        // fresh work (the idle-worker hazard).
        let mut exited = ctx.exited_slots.lock();
        let respawn: Vec<usize> = exited
            .iter()
            .copied()
            .filter(|s| active.contains(s))
            .collect();
        exited.retain(|s| !respawn.contains(s));
        drop(exited);
        for slot in respawn {
            handles.push(spawn_worker(ctx.clone(), slot, machine, &self.catalog));
        }
    }
}

fn spawn_worker(
    ctx: Arc<FragCtx>,
    slot: usize,
    machine: &Arc<Machine>,
    catalog: &Arc<Catalog>,
) -> std::thread::JoinHandle<()> {
    let machine = machine.clone();
    let catalog = catalog.clone();
    std::thread::spawn(move || run_worker(ctx, slot, machine, catalog))
}

fn range_partition(lo: i64, hi: i64, x: u32) -> (PartitionState, u64) {
    if lo > hi {
        // Empty domain; a trivial partition that yields nothing.
        (PartitionState::Range(RangePartition::new(0, 0, 1)), 0)
    } else {
        let total = (hi - lo + 1) as u64;
        (PartitionState::Range(RangePartition::new(lo, hi, x)), total)
    }
}

fn to_workers(x: f64, n_procs: u32) -> u32 {
    (x.round() as i64).clamp(1, n_procs as i64) as u32
}
