//! The master backend: runs queries under a scheduling policy.
//!
//! The master owns the clock and the policy. For every optimized query it
//! compiles the plan into fragment programs, announces runnable fragments to
//! the policy as they become ready (roots first, consumers as their
//! producers finish), applies `Start` actions by staffing slave-backend
//! worker slots on the persistent [`WorkerPool`], and applies `Adjust`
//! actions by running the Section 2.4 protocols on the shared partition
//! state and staffing any newly created worker slots. Staffing is a queue
//! push that unparks a long-lived pool thread — no OS thread is spawned or
//! joined per slot.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xprs_disk::{ClassStats, FaultPlan};
use xprs_optimizer::OptimizedQuery;
use xprs_scheduler::error::SchedError;
use xprs_scheduler::fluid::FIXPOINT_ROUNDS;
use xprs_scheduler::policy::{Action, RunningTask, SchedulePolicy};
use xprs_scheduler::predict::{Observation, PredictKey, Predictor};
use xprs_scheduler::trace::{emit, RunningSnap, SharedSink, TraceRecord};
use xprs_scheduler::{MachineConfig, TaskId, TaskProfile};
use xprs_storage::partition::{PagePartition, RangePartition};
use xprs_storage::runs::{merge_runs, split_runs_stats};
use xprs_storage::{Catalog, Tuple, PAGE_SIZE};

use crate::cancel::CancelToken;
use crate::io::{lock, IoFault, Machine, MachineStats};
use crate::obs::{ExecMetrics, FragmentProfile, MergeProfile, QueryProfile, RunningInfo, UtilSample};
use crate::pool::WorkerPool;
use crate::program::{compile, Driver, FragmentProgram, Materialized, PipelineOp};
use crate::steal::{StealPartition, MAX_STEAL_UNITS};
use crate::worker::{run_worker, FragCtx, OutputSink, PartitionState, RelBinding, SpillSpec};

/// One pool-merge task: merges a disjoint key sub-range of the runs.
type MergeTask = Box<dyn FnOnce() -> Vec<(i32, Tuple)> + Send>;

/// Which executor data path to run.
///
/// [`DataPath::Decontended`] is the production path: per-worker batched
/// output, batched CPU-gate accounting, the sharded buffer pool, and
/// worker slots staffed on the persistent [`WorkerPool`].
/// [`DataPath::GlobalLock`] reproduces the seed's contended *data path* —
/// one lock round per result tuple, one gate acquisition per compute call,
/// one buffer-pool latch, static partition shares — and exists so benches
/// can measure the difference. Worker slots are staffed on the persistent
/// pool under both paths, so the A/B measures contention, not the seed's
/// per-slot thread churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPath {
    /// Batched per-worker output, batched CPU charging, sharded pool.
    Decontended,
    /// The seed's contended hot path (baseline for comparison).
    GlobalLock,
}

/// How a fragment's work units reach its workers.
///
/// [`MorselMode::Stealing`] is the production path: units are grouped into
/// fixed-size morsels dealt into per-worker deques, a worker claims its
/// morsel's units on a private atomic (no lock round per unit), and idle
/// workers steal whole pending morsels from seeded victims — so a worker
/// stuck behind a slow disk or a cold page no longer strands its whole
/// static share. [`MorselMode::StaticShares`] keeps the §2.4
/// residue-class/interval shares selectable for A/B measurement, mirroring
/// the [`DataPath::GlobalLock`] precedent. Under `GlobalLock` the static
/// shares are always used (that path reproduces the seed exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorselMode {
    /// §2.4 static partition shares (one partition-mutex round per unit).
    StaticShares,
    /// Morsel-driven work stealing.
    Stealing {
        /// Work units (pages or keys) per morsel; clamped to ≥ 1.
        morsel_units: u64,
    },
}

impl MorselMode {
    /// The production stealing configuration ([`DEFAULT_MORSEL_UNITS`]).
    pub fn stealing() -> Self {
        MorselMode::Stealing { morsel_units: DEFAULT_MORSEL_UNITS }
    }
}

/// Default units per morsel: big enough to amortize the deque latch and
/// the completion report, small enough that an 8-worker fragment over a
/// few hundred pages still has morsels worth stealing.
pub const DEFAULT_MORSEL_UNITS: u64 = 16;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Machine model (processors, disks, service rates).
    pub machine: MachineConfig,
    /// Wall seconds per simulated second; `0.0` = run at full speed.
    pub scale: f64,
    /// CPU seconds charged per tuple examined.
    pub cpu_tuple: f64,
    /// Shared buffer-pool frames (0 disables buffering). The paper's
    /// workloads scan relations far larger than memory, so the default is a
    /// modest pool that cannot cache a whole scan.
    pub bufpool_pages: usize,
    /// Buffer-pool shards (page-hashed, independently latched). Ignored —
    /// forced to 1 — under [`DataPath::GlobalLock`].
    pub bufpool_shards: usize,
    /// Result tuples a worker buffers locally before one flush into the
    /// fragment sink.
    pub out_batch_tuples: usize,
    /// Simulated CPU seconds a worker accumulates before one CPU-gate
    /// acquisition.
    pub cpu_batch_seconds: f64,
    /// Which data path to run.
    pub data_path: DataPath,
    /// How work units reach workers: morsel-driven stealing (production)
    /// or the §2.4 static shares (A/B baseline). Forced to
    /// [`MorselMode::StaticShares`] under [`DataPath::GlobalLock`].
    pub morsel_mode: MorselMode,
    /// Injected fault schedule (`None` = fault-free operation).
    pub faults: Option<Arc<FaultPlan>>,
    /// Heartbeat-patrol interval in wall milliseconds. `0` disables the
    /// patrol — and with it dead-worker recovery and recalibration.
    pub patrol_ms: u64,
    /// Patrol ticks a slot's heartbeat may stay frozen (while the fragment
    /// still has work and the slot never exited) before it is declared dead
    /// and its partition share reclaimed.
    pub patrol_grace: u32,
    /// Relative drift between observed and modeled I/O service rate
    /// tolerated before the policy is recalibrated. `0.0` disables
    /// recalibration.
    pub recal_band: f64,
    /// I/O requests that must land in a patrol window before its rate
    /// estimate is trusted for recalibration.
    pub recal_min_requests: u64,
    /// Fragment outputs at least this many rows long have their sorted
    /// worker runs merged **in parallel** on the worker pool (split into
    /// disjoint key sub-ranges, one merge task per processor); smaller
    /// outputs are merged serially on the master. Only meaningful under
    /// [`DataPath::Decontended`].
    pub parallel_merge_min_rows: usize,
    /// Parallel-merge fan-out (key sub-ranges merged concurrently). `0` ⇒
    /// auto: the simulated machine's processor count, capped by the host's
    /// available parallelism — on a single-core host the merge stays
    /// serial, since splitting would be pure copy overhead with no
    /// concurrency to buy. Tests set an explicit fan-out to exercise the
    /// pool-farmed path deterministically on any host.
    pub parallel_merge_ways: usize,
    /// Collect detailed hot-path metrics ([`ExecMetrics`]: gate-wait
    /// histogram, I/O retry/fault counters, merge shape). Off by default;
    /// the cold-path profile (pool shards, per-disk class stats, fragment
    /// profiles, the utilization audit) is collected regardless.
    pub obs: bool,
    /// Write [`ExecReport::metrics_json`] to this path after a successful
    /// run. Implies `obs`.
    pub metrics_out: Option<PathBuf>,
    /// Treat buffer-pool capacity as a scheduled resource: before a
    /// fragment is staffed the master reserves shard capacity for its
    /// estimated footprint ([`TaskProfile::memory`]), queues the fragment
    /// FIFO when the pool is over-committed, and releases the grant at
    /// completion. Off by default — grants change admission order, so the
    /// throughput benches opt in explicitly.
    pub memory_grants: bool,
    /// Under `memory_grants`, let a fragment whose footprint exceeds its
    /// grant cut sorted spill runs to disk instead of failing admission.
    /// With spill disabled, a fragment whose demand exceeds the whole pool
    /// is refused with [`ExecError::MemoryGrantExceeded`].
    pub spill: bool,
    /// Attempts a page read is given (initial issue + retries) before it
    /// escalates to [`ExecError::IoFault`]. The default
    /// ([`crate::io::READ_ATTEMPTS`]) is tuned for batch runs; a
    /// latency-bound service trades retries for faster typed failure.
    pub read_attempts: u32,
    /// Simulated seconds of backoff before the first read retry, doubling
    /// per retry ([`crate::io::RETRY_BACKOFF`] default).
    pub retry_backoff: f64,
    /// Online profile predictor. When attached, the master substitutes
    /// predicted `seq_time`/`io_rate`/memory for the optimizer's declared
    /// values at every fragment announcement (cold keys fall back to the
    /// declared prior), emits each substitution as
    /// [`TraceRecord::Predict`], and feeds finished fragments' measured
    /// profiles back into the model. Share one `Arc` across repeated runs
    /// so the model warms; `None` (the default) schedules purely on
    /// declared profiles — the A/B baseline.
    pub predictor: Option<Arc<Predictor>>,
}

impl ExecConfig {
    /// Functional-testing configuration: paper machine, no throttling,
    /// de-contended data path.
    pub fn unthrottled() -> Self {
        ExecConfig {
            machine: MachineConfig::paper_default(),
            scale: 0.0,
            cpu_tuple: 0.25e-3,
            bufpool_pages: 512,
            bufpool_shards: 8,
            out_batch_tuples: 256,
            cpu_batch_seconds: 0.01,
            data_path: DataPath::Decontended,
            morsel_mode: MorselMode::stealing(),
            faults: None,
            patrol_ms: 0,
            patrol_grace: 3,
            recal_band: 0.2,
            recal_min_requests: 64,
            parallel_merge_min_rows: 4096,
            parallel_merge_ways: 0,
            obs: false,
            metrics_out: None,
            memory_grants: false,
            spill: true,
            read_attempts: crate::io::READ_ATTEMPTS,
            retry_backoff: crate::io::RETRY_BACKOFF,
            predictor: None,
        }
    }

    /// Demonstration configuration running `speedup`× faster than real time.
    pub fn scaled(speedup: f64) -> Self {
        assert!(speedup > 0.0);
        ExecConfig { scale: 1.0 / speedup, ..ExecConfig::unthrottled() }
    }

    /// This configuration switched to the seed's global-lock data path.
    pub fn with_data_path(mut self, path: DataPath) -> Self {
        self.data_path = path;
        self
    }

    /// This configuration switched to the given work-distribution mode.
    pub fn with_morsel_mode(mut self, mode: MorselMode) -> Self {
        self.morsel_mode = mode;
        self
    }

    /// Attach an injected fault schedule, enabling the heartbeat patrol
    /// (at a 5 ms interval unless one is already configured) so dead
    /// workers are actually recovered.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        if self.patrol_ms == 0 {
            self.patrol_ms = 5;
        }
        self
    }

    /// Enable detailed hot-path metrics collection.
    pub fn with_obs(mut self) -> Self {
        self.obs = true;
        self
    }

    /// Write `metrics.json` to `path` after each successful run (enables
    /// detailed metrics).
    pub fn with_metrics_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_out = Some(path.into());
        self.obs = true;
        self
    }

    /// Enable memory-grant admission: fragments reserve buffer-pool shard
    /// capacity for their estimated footprint before staffing, wait FIFO
    /// when the pool is over-committed, and spill past their grant.
    pub fn with_memory_grants(mut self) -> Self {
        self.memory_grants = true;
        self
    }

    /// Disable spill-to-disk under memory grants: an over-pool demand then
    /// surfaces as [`ExecError::MemoryGrantExceeded`] instead of running
    /// degraded. Exists for the spill-parity A/B and for callers that
    /// prefer a typed refusal over extra I/O.
    pub fn without_spill(mut self) -> Self {
        self.spill = false;
        self
    }

    /// Override the bounded-I/O-retry envelope: `attempts` reads per page
    /// (≥ 1, initial issue included) and `backoff` simulated seconds before
    /// the first retry (doubling per retry). The defaults reproduce the
    /// constants batch runs have always used.
    pub fn with_retry(mut self, attempts: u32, backoff: f64) -> Self {
        assert!(attempts >= 1, "a read needs at least one attempt");
        assert!(backoff >= 0.0 && backoff.is_finite(), "invalid retry backoff {backoff}");
        self.read_attempts = attempts;
        self.retry_backoff = backoff;
        self
    }

    /// Attach an online profile predictor: announcements consume predicted
    /// rather than declared profiles once the predictor has observations
    /// for the fragment's (plan-shape, size-bucket) key, and completions
    /// train it. Pass the same `Arc` to successive executors so repeated
    /// plan shapes converge.
    pub fn with_predictor(mut self, predictor: Arc<Predictor>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Configure the heartbeat patrol explicitly: `ms` between patrol
    /// sweeps (0 disables the patrol) and `grace` consecutive frozen ticks
    /// before a worker slot is declared dead. A continuous service tightens
    /// both so a dead worker inflates one tenant's latency for
    /// milliseconds, not a whole batch run.
    pub fn with_patrol(mut self, ms: u64, grace: u32) -> Self {
        self.patrol_ms = ms;
        self.patrol_grace = grace.max(1);
        self
    }

    /// Enable degradation-aware recalibration with tolerance `band`
    /// (e.g. `0.2` = recalibrate when the observed I/O rate drifts more
    /// than 20% from the model), turning the patrol on if it is off.
    pub fn with_recalibration(mut self, band: f64) -> Self {
        assert!(band > 0.0 && band.is_finite(), "invalid recalibration band {band}");
        self.recal_band = band;
        if self.patrol_ms == 0 {
            self.patrol_ms = 5;
        }
        self
    }

    fn effective_shards(&self) -> usize {
        match self.data_path {
            DataPath::Decontended => self.bufpool_shards.max(1),
            DataPath::GlobalLock => 1,
        }
    }

    fn effective_morsel_mode(&self) -> MorselMode {
        match self.data_path {
            DataPath::Decontended => self.morsel_mode,
            DataPath::GlobalLock => MorselMode::StaticShares,
        }
    }

    fn effective_out_batch(&self) -> usize {
        match self.data_path {
            DataPath::Decontended => self.out_batch_tuples.max(1),
            DataPath::GlobalLock => 0, // one lock round per tuple
        }
    }

    fn effective_cpu_batch(&self) -> f64 {
        match self.data_path {
            DataPath::Decontended => self.cpu_batch_seconds.max(0.0),
            DataPath::GlobalLock => 0.0, // one gate acquisition per compute
        }
    }
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A worker thread panicked; the run was drained and abandoned.
    WorkerPanicked {
        /// Global fragment index the worker was staffing.
        fragment: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// The completion channel closed with fragments still outstanding.
    ChannelClosed {
        /// Fragments that had completed when the channel died.
        completed: usize,
        /// Total fragments in the run.
        total: usize,
    },
    /// The scheduling policy misbehaved (diverged, wedged, referenced an
    /// unknown task, double-started or double-completed a fragment). The
    /// run was drained and abandoned.
    Sched {
        /// The typed scheduler error.
        source: SchedError,
        /// Fragments that had completed at the failure instant.
        completed: usize,
        /// Total fragments in the run.
        total: usize,
    },
    /// A fragment program referenced a relation the catalog does not hold.
    UnknownRelation {
        /// Global fragment index.
        fragment: usize,
        /// The missing relation's name.
        name: String,
    },
    /// A disk read failed unrecoverably (every bounded retry exhausted);
    /// the run was drained and abandoned.
    IoFault {
        /// Global fragment index whose worker hit the fault.
        fragment: usize,
        /// The underlying fault.
        fault: IoFault,
    },
    /// A merge-indexed probe needed an index on `a` that the relation does
    /// not have (a planning/catalog mismatch); the run was drained and
    /// abandoned.
    IndexMissing {
        /// Global fragment index whose worker hit the probe.
        fragment: usize,
        /// The unindexed relation's name.
        name: String,
    },
    /// A query's fragment table holds no root fragment (a compiler
    /// invariant violation surfaced as a typed error, not a panic).
    RootMissing {
        /// Query index in the submitted batch.
        query: usize,
    },
    /// A query's root fragment completed without materializing output.
    OutputMissing {
        /// Query index in the submitted batch.
        query: usize,
    },
    /// A fragment was started before one of its producers materialized —
    /// the readiness protocol was violated.
    ProducerNotMaterialized {
        /// The consumer fragment being started.
        fragment: usize,
        /// The producer whose output is missing.
        producer: usize,
    },
    /// The compiler's fragment decomposition disagrees with the
    /// optimizer's — different fragment counts or different dependency
    /// edges. Formerly a documented panic; now the run refuses to start
    /// and hands back both sides' per-fragment dependency lists.
    PlanMismatch {
        /// Query index in the submitted batch.
        query: usize,
        /// Sorted producer indices per compiled fragment program.
        compiled: Vec<Vec<usize>>,
        /// Sorted producer indices per optimizer DAG fragment.
        optimized: Vec<Vec<usize>>,
    },
    /// Under [`ExecConfig::memory_grants`] with spill disabled, a fragment
    /// demanded more buffer-pool capacity than the whole pool holds. The
    /// demand can never be admitted, so the run refuses it up front — a
    /// typed, recoverable signal where the seed died later with an
    /// unrecoverable `PoolExhausted` deep in a worker's read path.
    MemoryGrantExceeded {
        /// Global fragment index whose demand cannot fit.
        fragment: usize,
        /// Pages the fragment's estimated footprint requires.
        demand_pages: u64,
        /// Total pool capacity in pages.
        capacity_pages: u64,
    },
    /// `ExecConfig::metrics_out` was set but `metrics.json` could not be
    /// written. The run itself completed.
    MetricsDump {
        /// Destination path.
        path: String,
        /// Rendered I/O error.
        error: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::WorkerPanicked { fragment, message } => {
                write!(f, "worker staffing fragment {fragment} panicked: {message}")
            }
            ExecError::ChannelClosed { completed, total } => {
                write!(f, "worker channel closed with {completed}/{total} fragments complete")
            }
            ExecError::Sched { source, completed, total } => {
                write!(f, "scheduling failed with {completed}/{total} fragments complete: {source}")
            }
            ExecError::UnknownRelation { fragment, name } => {
                write!(f, "fragment {fragment} references unknown relation {name:?}")
            }
            ExecError::IoFault { fragment, fault } => {
                write!(f, "fragment {fragment}: {fault}")
            }
            ExecError::IndexMissing { fragment, name } => {
                write!(f, "fragment {fragment}: merge-indexed probe over unindexed {name:?}")
            }
            ExecError::RootMissing { query } => {
                write!(f, "query {query} has no root fragment")
            }
            ExecError::OutputMissing { query } => {
                write!(f, "query {query}'s root fragment finished without output")
            }
            ExecError::ProducerNotMaterialized { fragment, producer } => {
                write!(
                    f,
                    "fragment {fragment} started before producer {producer} materialized"
                )
            }
            ExecError::PlanMismatch { query, compiled, optimized } => {
                write!(
                    f,
                    "query {query}: compiled fragment dependencies {compiled:?} disagree with \
                     the optimizer's decomposition {optimized:?}"
                )
            }
            ExecError::MemoryGrantExceeded { fragment, demand_pages, capacity_pages } => {
                write!(
                    f,
                    "fragment {fragment} demands {demand_pages} pages but the pool holds \
                     {capacity_pages} and spill is disabled"
                )
            }
            ExecError::MetricsDump { path, error } => {
                write!(f, "could not write metrics to {path}: {error}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Sched { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Internal: a control-path failure from the decide path, before it is
/// annotated with the run's completion progress.
enum ControlFail {
    Sched(SchedError),
    Relation { fragment: usize, name: String },
    Producer { fragment: usize, producer: usize },
    Memory { fragment: usize, demand_pages: u64, capacity_pages: u64 },
}

impl From<SchedError> for ControlFail {
    fn from(e: SchedError) -> Self {
        ControlFail::Sched(e)
    }
}

impl ControlFail {
    fn into_exec(self, completed: usize, total: usize) -> ExecError {
        match self {
            ControlFail::Sched(source) => ExecError::Sched { source, completed, total },
            ControlFail::Relation { fragment, name } => {
                ExecError::UnknownRelation { fragment, name }
            }
            ControlFail::Producer { fragment, producer } => {
                ExecError::ProducerNotMaterialized { fragment, producer }
            }
            ControlFail::Memory { fragment, demand_pages, capacity_pages } => {
                ExecError::MemoryGrantExceeded { fragment, demand_pages, capacity_pages }
            }
        }
    }
}

/// Messages workers (and their pool wrappers) send the master.
#[derive(Debug)]
pub(crate) enum MasterMsg {
    /// All units of the fragment are done and every worker has flushed.
    FragmentDone(usize),
    /// A worker staffing the fragment panicked.
    WorkerPanicked {
        /// Global fragment index.
        gid: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// A worker's read failed after every bounded retry.
    IoFault {
        /// Global fragment index.
        gid: usize,
        /// The underlying fault.
        fault: IoFault,
    },
    /// A merge-indexed probe found no index on the relation.
    IndexMissing {
        /// Global fragment index.
        gid: usize,
        /// The unindexed relation's name.
        name: String,
    },
}

/// One query to execute: the optimizer's output plus concrete selection
/// ranges for each of the query's relations.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Optimized plan with fragment estimates.
    pub optimized: OptimizedQuery,
    /// Per-relation inclusive selection range on `a` (aligned with the
    /// query's relation list).
    pub bindings: Vec<RelBinding>,
}

/// Result of one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The root fragment's output, sorted by key.
    pub rows: Arc<Materialized>,
    /// Wall-clock seconds from run start to query completion.
    pub finished_at: f64,
}

/// Result of a whole run.
#[derive(Debug)]
pub struct ExecReport {
    /// Per-query results, in submission order.
    pub results: Vec<QueryResult>,
    /// Machine statistics (I/O class mix).
    pub stats: MachineStats,
    /// Per-shard buffer-pool counters (empty when buffering is disabled).
    pub pool_shards: Vec<xprs_storage::PoolStats>,
    /// Buffer-pool pins still outstanding when the run finished. Any value
    /// above zero is a pin leak: some reader fetched a page and never
    /// released it, permanently shrinking the pool.
    pub pool_pinned_at_exit: u64,
    /// Total wall-clock seconds.
    pub wall: f64,
    /// Per-fragment `(task, start, finish)` wall times.
    pub fragment_times: Vec<(TaskId, f64, f64)>,
    /// OS threads the worker pool created over the whole run.
    pub pool_threads: u64,
    /// Worker-slot staffing jobs submitted over the whole run.
    pub pool_jobs: u64,
    /// Worker slots declared dead by the heartbeat patrol and replaced.
    pub worker_recoveries: u64,
    /// Times the observed I/O rate drifted outside the tolerance band and
    /// the policy was re-entered with a corrected machine model.
    pub recalibrations: u64,
    /// The machine model the run was configured with.
    pub machine: MachineConfig,
    /// Wall seconds per simulated second the run was throttled to.
    pub scale: f64,
    /// Per-disk per-class request counts and busy time, indexed by disk.
    pub disk_classes: Vec<ClassStats>,
    /// Simulated CPU seconds consumed across all workers.
    pub cpu_busy: f64,
    /// Per-query fragment profiles, in submission order.
    pub profiles: Vec<QueryProfile>,
    /// Cumulative machine counters sampled at every scheduling decision;
    /// consecutive samples bracket the pairing windows the utilization
    /// audit measures.
    pub samples: Vec<UtilSample>,
    /// Parallelism adjustments applied across all fragments.
    pub adjusts: u64,
    /// Heartbeat ticks recorded across all fragments.
    pub heartbeats: u64,
    /// Quiet patrol ticks the master ran (dead-worker sweep + drift check).
    pub patrol_ticks: u64,
    /// Buffer-pool pages granted to fragments at admission, summed over the
    /// run. Zero unless [`ExecConfig::memory_grants`] is on.
    pub mem_granted_pages: u64,
    /// Pages released back as fragments completed. Equal to
    /// `mem_granted_pages` on any successful run — a gap is a grant leak.
    pub mem_released_pages: u64,
    /// Fragments that had to wait in the admission queue because the pool
    /// was over-committed when their start was decided.
    pub mem_grant_waits: u64,
    /// Sorted spill runs cut by workers whose buffered output crossed the
    /// fragment's grant.
    pub spill_chunks: u64,
    /// Rows written to (and read back from) spill runs.
    pub spill_rows: u64,
    /// The hot-path metric registry, when `ExecConfig::obs` was on.
    pub metrics: Option<Arc<ExecMetrics>>,
    /// Per-query cancellation outcome, in submission order: `true` means
    /// the query's token fired before its root completed, and its result
    /// is an empty [`Materialized`]. A query whose token fired *after* the
    /// root finished keeps its real rows and stays `true` here — the
    /// caller learns the work was not wasted.
    pub cancelled: Vec<bool>,
    /// Fragments whose observed page footprint exceeded the pages their
    /// [`TaskProfile::memory`] declared (detection only — the run is never
    /// failed for it; disk-resident scans re-reading evicted pages land
    /// here routinely).
    pub footprint_overruns: u64,
    /// One human-readable line per footprint overrun.
    pub footprint_warnings: Vec<String>,
}

enum FragStatus {
    Blocked,
    Ready,
    Running(Arc<FragCtx>),
    Done,
}

struct FragSlot {
    profile: TaskProfile,
    program: crate::program::FragmentProgram,
    bindings: Vec<RelBinding>,
    /// Global indices of producer fragments.
    deps: Vec<usize>,
    /// Per-query-local index of each producer (pipeline ops refer to these).
    local_deps: Vec<usize>,
    query: usize,
    is_root: bool,
    status: FragStatus,
    output: Option<Arc<Materialized>>,
    started_at: f64,
    finished_at: f64,
    /// Completion-time captures for the fragment's profile.
    units: u64,
    staffed: u64,
    heartbeats: u64,
    adjusts: u64,
    merge: MergeProfile,
    /// The admission grant held while the fragment runs (memory-grant mode
    /// only); released — returning exactly the pages it took — at
    /// completion.
    grant: Option<xprs_storage::ShardReservation>,
    /// Running but parked in the admission FIFO: no slots are staffed yet,
    /// so parallelism adjustments must not staff any either — the fragment
    /// is staffed exactly once, by [`Executor::retry_admission`].
    queued: bool,
    /// Completion-time spill captures.
    spill_chunks: u64,
    spill_rows: u64,
    /// Pages the fragment's workers actually read (buffer-pool hits
    /// included, re-reads after eviction included) — the observed
    /// footprint compared against the declared one at completion.
    observed_pages: u64,
    /// The optimizer's profile as declared, before any predictor
    /// substitution — the cold-start prior and the baseline every
    /// observation is normalized against. `profile` above is what the
    /// policy and admission actually consume (predicted, when a warm
    /// model exists).
    declared: TaskProfile,
    /// Fragments running when this one was announced — the interference
    /// regressor, captured at the same point the prediction was queried so
    /// training and inference see the same covariate.
    co_runners: u32,
    /// Patrol recovery count when the fragment was announced; a delta at
    /// completion means a worker died mid-run and the measured profile is
    /// truncated/distorted — it must not train the predictor.
    recoveries_at_start: u64,
}

/// The master's admission ledger: the FIFO of fragments decided-but-waiting
/// for pool capacity, plus the cumulative grant counters the report and the
/// CI memory gate audit (`granted == released` on every successful run).
struct Admission {
    /// `(gid, demand_pages)` of fragments whose reservation failed; retried
    /// strictly FIFO as completions release capacity, so a large demand is
    /// never starved by a stream of small ones.
    queue: std::collections::VecDeque<(usize, u64)>,
    granted_pages: u64,
    released_pages: u64,
    waits: u64,
}

impl Admission {
    fn new() -> Self {
        Admission {
            queue: std::collections::VecDeque::new(),
            granted_pages: 0,
            released_pages: 0,
            waits: 0,
        }
    }
}

/// The multi-threaded XPRS executor.
pub struct Executor {
    cfg: ExecConfig,
    catalog: Arc<Catalog>,
    sink: Option<SharedSink>,
}

impl Executor {
    /// An executor over `catalog` with configuration `cfg`.
    pub fn new(cfg: ExecConfig, catalog: Arc<Catalog>) -> Self {
        Executor { cfg, catalog, sink: None }
    }

    /// Record every arrival, decision and applied action into `sink`.
    pub fn with_trace(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Execute `queries` under `policy`; blocks until all are complete.
    ///
    /// # Errors
    /// Returns [`ExecError`] if a worker panics, the completion channel
    /// dies, a fragment references an unknown relation, a compiled program
    /// disagrees with the optimizer's fragment decomposition
    /// ([`ExecError::PlanMismatch`] — the run refuses to start), or the
    /// policy misbehaves (wedges, diverges, double-starts or
    /// double-completes a fragment, references an unknown task). Remaining
    /// workers are drained (not abandoned) first, and the report fields
    /// that survive — the completion counts — ride along on the error.
    pub fn run(
        &self,
        queries: &[QueryRun],
        policy: &mut dyn SchedulePolicy,
    ) -> Result<ExecReport, ExecError> {
        self.run_inner(queries, policy, &[], None)
    }

    /// [`Executor::run`] with per-query cancellation: `tokens[i]` governs
    /// `queries[i]` (an empty slice means no query is cancellable). The
    /// master polls the tokens between messages and folds pending
    /// deadlines into its wakeup deadline; a fired token's fragments stop
    /// at the next unit boundary, release their grant, pins and partition
    /// shares exactly once through the ordinary completion protocol, and
    /// the query reports an empty result with `report.cancelled[i]` set.
    ///
    /// # Errors
    /// As [`Executor::run`] — cancellation itself is never an error.
    pub fn run_with_cancel(
        &self,
        queries: &[QueryRun],
        policy: &mut dyn SchedulePolicy,
        tokens: &[CancelToken],
    ) -> Result<ExecReport, ExecError> {
        self.run_inner(queries, policy, tokens, None)
    }

    /// Run against a shared [`ExecSession`] instead of a private machine:
    /// concurrent callers draw admission grants from one buffer pool and
    /// staff worker slots onto one pool of threads — the substrate of a
    /// continuous query service. The session's threads survive the run;
    /// only this run's fragments are quiesced on exit.
    ///
    /// # Errors
    /// As [`Executor::run_with_cancel`].
    pub fn run_shared(
        &self,
        session: &ExecSession,
        queries: &[QueryRun],
        policy: &mut dyn SchedulePolicy,
        tokens: &[CancelToken],
    ) -> Result<ExecReport, ExecError> {
        self.run_inner(queries, policy, tokens, Some(session))
    }

    /// Build the simulated machine this executor's config describes:
    /// sharded buffer pool, fault plan, bounded-retry envelope, metric
    /// registry.
    fn build_machine(&self) -> (Machine, Option<Arc<ExecMetrics>>) {
        let mut machine = Machine::with_sharded_pool(
            &self.cfg.machine,
            self.cfg.scale,
            self.cfg.bufpool_pages,
            self.cfg.effective_shards(),
        )
        .with_retry(self.cfg.read_attempts, self.cfg.retry_backoff);
        if let Some(plan) = &self.cfg.faults {
            machine = machine.with_faults(plan.clone());
        }
        let metrics = (self.cfg.obs || self.cfg.metrics_out.is_some())
            .then(|| Arc::new(ExecMetrics::default()));
        if let Some(m) = &metrics {
            machine = machine.with_metrics(m.clone());
        }
        (machine, metrics)
    }

    /// A long-lived machine + worker pool for [`Executor::run_shared`].
    pub fn session(&self) -> ExecSession {
        let (machine, metrics) = self.build_machine();
        ExecSession {
            machine: Arc::new(machine),
            pool: WorkerPool::new(match self.cfg.data_path {
                DataPath::Decontended => self.cfg.machine.n_procs as usize,
                DataPath::GlobalLock => 0,
            }),
            metrics,
        }
    }

    fn run_inner(
        &self,
        queries: &[QueryRun],
        policy: &mut dyn SchedulePolicy,
        tokens: &[CancelToken],
        session: Option<&ExecSession>,
    ) -> Result<ExecReport, ExecError> {
        assert!(
            tokens.is_empty() || tokens.len() == queries.len(),
            "one cancel token per query (or none at all): {} tokens for {} queries",
            tokens.len(),
            queries.len()
        );
        // Private runs build their own machine and thread pool; shared
        // runs borrow the session's, so one buffer pool arbitrates grants
        // across every concurrent run.
        let owned: Option<(Arc<Machine>, WorkerPool, Option<Arc<ExecMetrics>>)> = match session {
            Some(_) => None,
            None => {
                let (machine, metrics) = self.build_machine();
                Some((
                    Arc::new(machine),
                    WorkerPool::new(match self.cfg.data_path {
                        DataPath::Decontended => self.cfg.machine.n_procs as usize,
                        // The baseline pool starts empty and grows to peak
                        // concurrent demand — capped reuse instead of the
                        // seed's spawn-per-slot.
                        DataPath::GlobalLock => 0,
                    }),
                    metrics,
                ))
            }
        };
        let (machine, pool, metrics, shared) = match (&owned, session) {
            (Some((m, p, met)), _) => (m.clone(), p, met.clone(), false),
            (None, Some(s)) => (s.machine.clone(), &s.pool, s.metrics.clone(), true),
            (None, None) => unreachable!("owned machine xor session"),
        };
        let backends = Backends::new(pool, shared);
        // Count this run against the machine for the patrol's cross-run
        // contention attribution; the guard decrements on *every* exit
        // path (a leak would permanently inflate the shared session's
        // interference factor).
        struct RunGuard<'a>(&'a Machine);
        impl Drop for RunGuard<'_> {
            fn drop(&mut self) {
                self.0.run_finished();
            }
        }
        machine.run_started();
        let _run_guard = RunGuard(&machine);
        let (tx, rx) = channel::<MasterMsg>();
        let t0 = Instant::now();

        // Build the global fragment table.
        let mut frags: Vec<FragSlot> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let ps = compile(&q.optimized.plan);
            let fs = &q.optimized.fragments;
            // Compiler/optimizer agreement is checked up front: the same
            // sorted per-fragment dependency lists on both sides. Formerly
            // an assert — but a mismatched plan arrives from outside this
            // crate (hand-built OptimizedQuery, version skew), so it is a
            // typed refusal, not a master panic.
            let sorted = |mut d: Vec<usize>| {
                d.sort_unstable();
                d
            };
            let compiled: Vec<Vec<usize>> =
                ps.programs.iter().map(|p| sorted(p.deps.clone())).collect();
            let optimized: Vec<Vec<usize>> = (0..fs.fragments.len())
                .map(|fi| sorted(fs.dag.deps_of(fi).to_vec()))
                .collect();
            if compiled != optimized {
                let err = ExecError::PlanMismatch { query: qi, compiled, optimized };
                emit(&self.sink, || TraceRecord::Error { now: 0.0, message: err.to_string() });
                backends.shutdown(&frags);
                return Err(err);
            }
            let base = frags.len();
            let n = ps.programs.len();
            for (fi, program) in ps.programs.into_iter().enumerate() {
                let mut profile = fs.fragments[fi].profile.clone();
                profile.id = TaskId((qi as u64) << 32 | fi as u64);
                frags.push(FragSlot {
                    declared: profile.clone(),
                    profile,
                    local_deps: program.deps.clone(),
                    deps: program.deps.iter().map(|d| base + d).collect(),
                    program,
                    bindings: q.bindings.clone(),
                    query: qi,
                    is_root: fi == n - 1,
                    status: FragStatus::Blocked,
                    output: None,
                    started_at: 0.0,
                    finished_at: 0.0,
                    units: 0,
                    staffed: 0,
                    heartbeats: 0,
                    adjusts: 0,
                    merge: MergeProfile::default(),
                    grant: None,
                    queued: false,
                    spill_chunks: 0,
                    spill_rows: 0,
                    observed_pages: 0,
                    co_runners: 0,
                    recoveries_at_start: 0,
                });
            }
        }

        let mut done_count = 0usize;
        let total = frags.len();
        let mut cancelled_q = vec![false; queries.len()];
        // A token is "spent" once observed fired; it is polled no further.
        let mut token_spent = vec![false; tokens.len()];
        let mut footprint_overruns = 0u64;
        let mut footprint_warnings: Vec<String> = Vec::new();

        emit(&self.sink, || TraceRecord::RunStart {
            driver: "executor".to_string(),
            policy: policy.name().to_string(),
            machine: self.cfg.machine.clone(),
        });

        // A control-path failure: record it, drain every worker, release
        // every held grant, and hand back the typed error with the
        // completion progress attached.
        let fail = |e: ControlFail,
                    done: usize,
                    now: f64,
                    frags: &mut [FragSlot],
                    admission: &mut Admission,
                    b: &Backends<'_>| {
            let exec = e.into_exec(done, total);
            emit(&self.sink, || TraceRecord::Error { now, message: exec.to_string() });
            drain(frags, b, &machine, admission);
            exec
        };

        // Announce the roots of every query. Nothing is running yet, so
        // the prediction's interference covariate is zero for every root.
        let now = |t0: Instant| t0.elapsed().as_secs_f64();
        for i in 0..frags.len() {
            if !frags[i].deps.is_empty() {
                continue;
            }
            frags[i].status = FragStatus::Ready;
            let t = now(t0);
            self.apply_prediction(&mut frags, i, t, 0, &metrics);
            let profile = frags[i].profile.clone();
            emit(&self.sink, || TraceRecord::Arrival { now: t, profile: profile.clone() });
            policy.on_arrival(t, frags[i].profile.clone());
        }
        // Utilization samples bracket every window during which the set of
        // running fragments — the pairing — was constant: one sample after
        // each applied decision, one at run end.
        let mut samples: Vec<UtilSample> = Vec::new();
        let mut admission = Admission::new();
        if let Err(e) = self
            .decide(policy, &mut frags, &mut admission, &cancelled_q, &machine, &tx, &backends, t0)
        {
            return Err(fail(e, done_count, now(t0), &mut frags, &mut admission, &backends));
        }
        if let Err(e) = wedge_check(policy, &frags, done_count) {
            return Err(fail(e.into(), done_count, now(t0), &mut frags, &mut admission, &backends));
        }
        samples.push(util_sample(now(t0), &frags, &machine));

        let mut patrol = Patrol::new(&self.cfg, machine.observed_service());
        // The patrol runs on a *deadline*, not only on quiet ticks: under a
        // continuous message stream `recv_timeout` never times out, and the
        // old quiet-tick-only patrol starved — a dead worker stayed dead as
        // long as chatty sibling fragments kept the channel busy.
        let patrol_interval =
            (self.cfg.patrol_ms > 0).then(|| Duration::from_millis(self.cfg.patrol_ms));
        let mut patrol_deadline = patrol_interval.map(|d| Instant::now() + d);
        let mut patrol_ticks = 0u64;

        while done_count < frags.len() {
            // Poll cancellation tokens: each fired token cancels every
            // fragment of its query exactly once, then the admission FIFO
            // is retried (a cancelled entry may have been blocking its
            // head).
            let mut any_fired = false;
            for (qi, tok) in tokens.iter().enumerate() {
                if !token_spent[qi] && tok.is_cancelled() {
                    token_spent[qi] = true;
                    // A token that fires after its query already finished
                    // changes nothing: the results stand and the query is
                    // not reported cancelled.
                    if self.cancel_query(
                        qi,
                        &mut frags,
                        &mut admission,
                        policy,
                        &tx,
                        &mut done_count,
                        now(t0),
                    ) {
                        cancelled_q[qi] = true;
                        any_fired = true;
                    }
                }
            }
            if any_fired {
                self.retry_admission(&mut frags, &mut admission, &machine, &backends, t0);
                if done_count >= frags.len() {
                    break;
                }
            }
            // Sleep until the next message, the patrol deadline, or the
            // earliest pending per-query deadline — whichever comes first.
            let token_deadline = tokens
                .iter()
                .enumerate()
                .filter(|&(qi, _)| !token_spent[qi])
                .filter_map(|(_, t)| t.deadline_instant())
                .min();
            let wake = match (patrol_deadline, token_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let msg = match next_msg(&rx, wake) {
                Ok(Some(msg)) => msg,
                Ok(None) => {
                    // Woken by a deadline. Fired tokens are picked up at
                    // the top of the loop; the patrol runs only when its
                    // own deadline has actually passed (the wake may have
                    // been a token's).
                    if patrol_deadline.is_some_and(|d| Instant::now() >= d) {
                        // Patrol tick: reap dead workers, then check
                        // whether the observed I/O rate has drifted out of
                        // the model's band.
                        patrol_deadline = patrol_interval.map(|d| Instant::now() + d);
                        patrol_ticks += 1;
                        patrol.reap(&frags, &backends, &machine, &self.catalog);
                        // With a shared session, capacity freed by *other*
                        // runs sends this run no completion message: retry
                        // the admission FIFO on every tick so a queued
                        // fragment is never stranded.
                        self.retry_admission(&mut frags, &mut admission, &machine, &backends, t0);
                        if let Some(corrected) = patrol.recalibrate(&machine) {
                            let t = now(t0);
                            emit(&self.sink, || TraceRecord::Recalibrate {
                                now: t,
                                observed_b: corrected.total_bandwidth(),
                                modeled_b: patrol.model.total_bandwidth(),
                                machine: corrected.clone(),
                            });
                            patrol.model = corrected.clone();
                            patrol.recalibrations += 1;
                            policy.recalibrate(t, corrected);
                            // The corrected rates may change the balance
                            // point: re-enter the policy so running
                            // fragments can be adjusted and queued work
                            // re-planned.
                            if let Err(e) = self.decide(
                                policy,
                                &mut frags,
                                &mut admission,
                                &cancelled_q,
                                &machine,
                                &tx,
                                &backends,
                                t0,
                            ) {
                                return Err(fail(
                                    e,
                                    done_count,
                                    now(t0),
                                    &mut frags,
                                    &mut admission,
                                    &backends,
                                ));
                            }
                            if let Err(e) = wedge_check(policy, &frags, done_count) {
                                return Err(fail(
                                    e.into(),
                                    done_count,
                                    now(t0),
                                    &mut frags,
                                    &mut admission,
                                    &backends,
                                ));
                            }
                            samples.push(util_sample(now(t0), &frags, &machine));
                        }
                    }
                    continue;
                }
                Err(_) => {
                    drain(&mut frags, &backends, &machine, &mut admission);
                    return Err(ExecError::ChannelClosed {
                        completed: done_count,
                        total: frags.len(),
                    });
                }
            };
            let gid = match msg {
                MasterMsg::FragmentDone(gid) => gid,
                MasterMsg::WorkerPanicked { gid, message } => {
                    drain(&mut frags, &backends, &machine, &mut admission);
                    return Err(ExecError::WorkerPanicked { fragment: gid, message });
                }
                MasterMsg::IoFault { gid, fault } => {
                    drain(&mut frags, &backends, &machine, &mut admission);
                    return Err(ExecError::IoFault { fragment: gid, fault });
                }
                MasterMsg::IndexMissing { gid, name } => {
                    drain(&mut frags, &backends, &machine, &mut admission);
                    return Err(ExecError::IndexMissing { fragment: gid, name });
                }
            };
            let t_done = now(t0);
            // Finalize: harvest the output, free the context.
            let finished = frags[gid].profile.id;
            let ctx = match take_running(&mut frags[gid].status, finished) {
                Ok(ctx) => ctx,
                Err(e) => {
                    return Err(fail(
                        e.into(),
                        done_count,
                        t_done,
                        &mut frags,
                        &mut admission,
                        &backends,
                    ));
                }
            };
            let was_cancelled = ctx.cancelled.load(Ordering::SeqCst);
            frags[gid].units = ctx.units_done.load(Ordering::SeqCst);
            frags[gid].staffed = ctx.staffed.load(Ordering::Relaxed);
            frags[gid].heartbeats =
                lock(&ctx.heartbeats).iter().map(|b| b.load(Ordering::Relaxed)).sum();
            if let Some(spec) = &ctx.spill {
                frags[gid].spill_chunks = spec.chunks.load(Ordering::Relaxed);
                frags[gid].spill_rows = spec.rows.load(Ordering::Relaxed);
            }
            frags[gid].observed_pages = ctx.pages_read.load(Ordering::Relaxed);
            // Train the predictor on the measured profile. Wall seconds
            // convert to simulated seconds through the time scale, so
            // realized quantities are in the same units the optimizer
            // declares; unthrottled runs (`scale == 0`) carry no timing
            // signal and are skipped. Cancelled or worker-death-truncated
            // runs are reported truncated so they never train the model.
            if let Some(pred) = &self.cfg.predictor {
                if self.cfg.scale > 0.0 {
                    let sim_elapsed = (t_done - frags[gid].started_at) / self.cfg.scale;
                    let x = ctx.target_parallelism.load(Ordering::Relaxed).max(1) as f64;
                    pred.observe(
                        self.predict_key(&frags[gid]),
                        &Observation {
                            declared_seq_time: frags[gid].declared.seq_time,
                            declared_io_rate: frags[gid].declared.io_rate,
                            realized_seq_time: sim_elapsed * x,
                            observed_pages: frags[gid].observed_pages as f64,
                            co_runners: frags[gid].co_runners,
                            truncated: was_cancelled
                                || patrol.recoveries > frags[gid].recoveries_at_start,
                        },
                    );
                }
            }
            // Observed-vs-declared footprint: detection only. The observed
            // count includes pool hits and re-reads after eviction, so it
            // is an upper bound that disk-resident scans overrun
            // routinely; the counter and warning make the drift visible
            // without failing anyone's run.
            let declared =
                (frags[gid].profile.memory / PAGE_SIZE as f64).ceil() as u64;
            if declared > 0 && frags[gid].observed_pages > declared {
                footprint_overruns += 1;
                if let Some(m) = &metrics {
                    m.mem_overruns.inc();
                }
                footprint_warnings.push(format!(
                    "fragment {}: observed {} pages exceeds declared {} pages",
                    frags[gid].profile.id.0,
                    frags[gid].observed_pages,
                    declared
                ));
            }
            // Release the completed fragment's grant, then hand the freed
            // capacity to the admission queue — the deferred fragments are
            // already Running in the policy's eyes, they only lack workers.
            if let Some(grant) = frags[gid].grant.take() {
                admission.released_pages += grant.pages();
                if let Some(pool) = machine.pool() {
                    pool.release(grant);
                }
            }
            self.retry_admission(&mut frags, &mut admission, &machine, &backends, t0);
            // A cancelled fragment's partial output is never observable:
            // the query's contract is all rows or none.
            let (rows, merge) = if was_cancelled {
                (Materialized::build(Vec::new()), MergeProfile::default())
            } else {
                self.materialize(&ctx, &backends, &machine)
            };
            frags[gid].merge = merge;
            frags[gid].output = Some(Arc::new(rows));
            frags[gid].finished_at = t_done;
            done_count += 1;
            emit(&self.sink, || TraceRecord::Finish { now: t_done, task: finished });
            policy.on_finish(t_done, finished);

            // Promote consumers whose producers are now all done.
            let running_now =
                frags.iter().filter(|f| matches!(f.status, FragStatus::Running(_))).count() as u32;
            for i in 0..frags.len() {
                if matches!(frags[i].status, FragStatus::Blocked)
                    && frags[i].deps.iter().all(|&d| matches!(frags[d].status, FragStatus::Done))
                {
                    frags[i].status = FragStatus::Ready;
                    frags[i].recoveries_at_start = patrol.recoveries;
                    self.apply_prediction(&mut frags, i, t_done, running_now, &metrics);
                    let profile = frags[i].profile.clone();
                    emit(&self.sink, || TraceRecord::Arrival {
                        now: t_done,
                        profile: profile.clone(),
                    });
                    policy.on_arrival(t_done, frags[i].profile.clone());
                }
            }
            if let Err(e) = self
                .decide(policy, &mut frags, &mut admission, &cancelled_q, &machine, &tx, &backends, t0)
            {
                return Err(fail(e, done_count, now(t0), &mut frags, &mut admission, &backends));
            }
            if let Err(e) = wedge_check(policy, &frags, done_count) {
                return Err(fail(e.into(), done_count, now(t0), &mut frags, &mut admission, &backends));
            }
            samples.push(util_sample(now(t0), &frags, &machine));
        }

        backends.shutdown(&frags);

        let wall = now(t0);
        samples.push(util_sample(wall, &frags, &machine));
        let mut results = Vec::with_capacity(queries.len());
        for (qi, &was_cancelled) in cancelled_q.iter().enumerate() {
            let root = frags
                .iter()
                .find(|f| f.query == qi && f.is_root)
                .ok_or(ExecError::RootMissing { query: qi })?;
            let rows = match root.output.clone() {
                Some(rows) => rows,
                // A cancelled root retired from Blocked/Ready never
                // materialized anything; its contracted result is empty.
                None if was_cancelled => Arc::new(Materialized::build(Vec::new())),
                None => return Err(ExecError::OutputMissing { query: qi }),
            };
            results.push(QueryResult { rows, finished_at: root.finished_at });
        }
        let profiles: Vec<QueryProfile> = results
            .iter()
            .enumerate()
            .map(|(qi, r)| QueryProfile {
                query: qi,
                finished_at: r.finished_at,
                rows: r.rows.rows.len() as u64,
                cancelled: cancelled_q[qi],
                fragments: frags
                    .iter()
                    .filter(|f| f.query == qi)
                    .map(|f| FragmentProfile {
                        task: f.profile.id,
                        query: qi,
                        is_root: f.is_root,
                        started_at: f.started_at,
                        finished_at: f.finished_at,
                        units: f.units,
                        staffed: f.staffed,
                        adjusts: f.adjusts,
                        heartbeats: f.heartbeats,
                        merge: f.merge,
                        observed_pages: f.observed_pages,
                        declared_pages: (f.profile.memory / PAGE_SIZE as f64).ceil() as u64,
                    })
                    .collect(),
            })
            .collect();
        let report = ExecReport {
            results,
            stats: machine.stats(),
            pool_shards: machine.pool_shard_stats(),
            pool_pinned_at_exit: machine.pool_pinned(),
            wall,
            fragment_times: frags
                .iter()
                .map(|f| (f.profile.id, f.started_at, f.finished_at))
                .collect(),
            pool_threads: backends.threads_spawned(),
            pool_jobs: backends.staffed.load(Ordering::Relaxed),
            worker_recoveries: patrol.recoveries,
            recalibrations: patrol.recalibrations,
            machine: self.cfg.machine.clone(),
            scale: self.cfg.scale,
            disk_classes: machine.disk_class_stats(),
            cpu_busy: machine.cpu_busy_secs(),
            adjusts: frags.iter().map(|f| f.adjusts).sum(),
            heartbeats: frags.iter().map(|f| f.heartbeats).sum(),
            patrol_ticks,
            mem_granted_pages: admission.granted_pages,
            mem_released_pages: admission.released_pages,
            mem_grant_waits: admission.waits,
            spill_chunks: frags.iter().map(|f| f.spill_chunks).sum(),
            spill_rows: frags.iter().map(|f| f.spill_rows).sum(),
            profiles,
            samples,
            metrics,
            cancelled: cancelled_q,
            footprint_overruns,
            footprint_warnings,
        };
        if let Some(path) = &self.cfg.metrics_out {
            std::fs::write(path, report.metrics_json()).map_err(|e| {
                ExecError::MetricsDump { path: path.display().to_string(), error: e.to_string() }
            })?;
        }
        Ok(report)
    }

    /// Fragment-barrier materialization.
    ///
    /// On [`DataPath::Decontended`] the sink holds the workers' locally
    /// sorted runs: a stable k-way merge (O(n log k), no re-sort) produces
    /// the key-ordered rows, and for outputs past
    /// `parallel_merge_min_rows` the merge itself is farmed to the
    /// persistent worker pool — the runs are split at key boundaries into
    /// one disjoint sub-range per processor, merged concurrently, and
    /// concatenated. A single counting pass then erects the CSR index.
    /// [`DataPath::GlobalLock`] reproduces the seed: flat harvest, full
    /// O(n log n) re-sort, and a per-key `HashMap<i32, Vec<usize>>` built
    /// one entry at a time.
    fn materialize(
        &self,
        ctx: &FragCtx,
        backends: &Backends<'_>,
        machine: &Machine,
    ) -> (Materialized, MergeProfile) {
        match self.cfg.data_path {
            DataPath::GlobalLock => {
                let rows = ctx.out.harvest();
                let profile = MergeProfile {
                    runs: 1,
                    rows: rows.len() as u64,
                    ways: 1,
                    parallel: false,
                    ..MergeProfile::default()
                };
                (Materialized::build(rows), profile)
            }
            DataPath::Decontended => {
                let mut runs = ctx.out.harvest_runs();
                let ways = self.merge_ways();
                if !ctx.hot_keys.is_empty() {
                    // The hot keys' output was withheld from the workers;
                    // compute it now, fanned across the pool with the
                    // small side replicated, and inject the ordered
                    // chunks as extra runs. Only these runs carry hot
                    // keys, so the stable merge concatenates them in
                    // chunk order — byte-identical to the single-worker
                    // emission order on every other path.
                    runs.extend(hot_key_fanout(ctx, backends, ways));
                }
                let total: usize = runs.iter().map(Vec::len).sum();
                if let Some(m) = machine.metrics() {
                    m.merge_runs.observe(runs.len() as u64);
                    for r in &runs {
                        m.merge_run_rows.observe(r.len() as u64);
                    }
                }
                let mut profile = MergeProfile {
                    runs: runs.len() as u64,
                    rows: total as u64,
                    ways: 1,
                    parallel: false,
                    hot_keys: ctx.hot_keys.len() as u64,
                    way_rows_max: 0,
                    way_rows_mean: 0,
                };
                if ways <= 1
                    || runs.len() <= 1
                    || total < self.cfg.parallel_merge_min_rows.max(1)
                {
                    // ≤ 1 run needs no merge at all — splitting it across
                    // the pool would be pure copy overhead.
                    if let Some(m) = machine.metrics() {
                        m.merge_fanout.observe(1);
                        if profile.hot_keys > 0 {
                            m.hot_keys.add(profile.hot_keys);
                        }
                    }
                    return (Materialized::from_runs(runs), profile);
                }
                profile.ways = ways as u64;
                profile.parallel = true;
                let (groups, stats) = split_runs_stats(runs, ways);
                let mut hot = ctx.hot_keys.clone();
                hot.extend(&stats.hot_keys);
                hot.sort_unstable();
                hot.dedup();
                profile.hot_keys = hot.len() as u64;
                profile.way_rows_max =
                    stats.group_rows.iter().copied().max().unwrap_or(0) as u64;
                profile.way_rows_mean = stats.group_rows.iter().map(|&r| r as u64).sum::<u64>()
                    / stats.group_rows.len().max(1) as u64;
                if let Some(m) = machine.metrics() {
                    m.merge_fanout.observe(ways as u64);
                    if profile.hot_keys > 0 {
                        m.hot_keys.add(profile.hot_keys);
                    }
                    for &r in &stats.group_rows {
                        m.merge_way_rows.observe(r as u64);
                    }
                }
                let tasks: Vec<MergeTask> = groups
                    .into_iter()
                    .map(|group| Box::new(move || merge_runs(group)) as MergeTask)
                    .collect();
                let mut rows = Vec::with_capacity(total);
                for part in backends.pool.scatter_gather(tasks) {
                    rows.extend(part);
                }
                (Materialized::from_sorted_rows(rows), profile)
            }
        }
    }

    /// The merge fan-out this configuration targets: the explicit
    /// `parallel_merge_ways`, or (auto) the machine's processor count
    /// clamped to the host's real parallelism.
    fn merge_ways(&self) -> usize {
        if self.cfg.parallel_merge_ways == 0 {
            (self.cfg.machine.n_procs as usize)
                .min(std::thread::available_parallelism().map_or(1, |n| n.get()))
        } else {
            self.cfg.parallel_merge_ways
        }
    }

    /// Heavy-hitter detection for a key-domain merge fragment, run before
    /// its workers are staffed (the Afrati et al. playbook: detect, then
    /// replicate the small side and split the hot key's *output*).
    ///
    /// A key's output size is the product of its match counts across the
    /// materialized inputs; a key is hot when that product strictly
    /// exceeds an even `1/ways` share of the total output — the same
    /// threshold `split_runs_stats` applies to sample mass. Keys found hot
    /// are *withheld from the workers* (see `scan_key`) and computed by
    /// the master at materialization, fanned across the pool.
    ///
    /// Scope: production data path only (the seed path stays bit-for-bit
    /// the seed), key-domain drivers whose ops are all `MergeWith` (every
    /// side materialized, so the product is known up front), outputs past
    /// `parallel_merge_min_rows`, and fan-outs worth more than one way.
    fn hot_join_keys(
        &self,
        program: &FragmentProgram,
        inputs: &HashMap<usize, Arc<Materialized>>,
        units: &UnitSpace,
    ) -> Vec<i32> {
        if self.cfg.data_path != DataPath::Decontended
            || program.driver != Driver::KeyDomain
            || program.ops.is_empty()
            || !program.ops.iter().all(|op| matches!(op, PipelineOp::MergeWith { .. }))
        {
            return Vec::new();
        }
        let ways = self.merge_ways() as u64;
        let UnitSpace::Keys { lo, hi } = *units else { return Vec::new() };
        if ways <= 1 || lo > hi {
            return Vec::new();
        }
        let deps: Vec<&Arc<Materialized>> = program
            .ops
            .iter()
            .map(|op| &inputs[&op.dep().expect("MergeWith always has a dep")])
            .collect();
        // Walk the first input's distinct keys (rows are key-sorted on
        // both index kinds) and take the match-count product per key.
        let rows = &deps[0].rows;
        let mut products: Vec<(i32, u64)> = Vec::new();
        let mut total = 0u64;
        let mut i = 0usize;
        while i < rows.len() {
            let k = rows[i].0;
            let mut j = i + 1;
            while j < rows.len() && rows[j].0 == k {
                j += 1;
            }
            if (k as i64) >= lo && (k as i64) <= hi {
                let mut prod = (j - i) as u64;
                for d in &deps[1..] {
                    prod = prod.saturating_mul(d.matches(k).count() as u64);
                    if prod == 0 {
                        break;
                    }
                }
                if prod > 0 {
                    total = total.saturating_add(prod);
                    products.push((k, prod));
                }
            }
            i = j;
        }
        if total < self.cfg.parallel_merge_min_rows.max(1) as u64 {
            return Vec::new();
        }
        products.retain(|&(_, p)| p > 1 && p.saturating_mul(ways) > total);
        products.into_iter().map(|(k, _)| k).collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        policy: &mut dyn SchedulePolicy,
        frags: &mut [FragSlot],
        admission: &mut Admission,
        cancelled_q: &[bool],
        machine: &Arc<Machine>,
        tx: &Sender<MasterMsg>,
        backends: &Backends<'_>,
        t0: Instant,
    ) -> Result<(), ControlFail> {
        let now = t0.elapsed().as_secs_f64();
        for _round in 0..FIXPOINT_ROUNDS {
            let snapshot: Vec<RunningTask> = frags
                .iter()
                .filter_map(|f| match &f.status {
                    FragStatus::Running(ctx) => {
                        let total = ctx.total_units.max(1) as f64;
                        let done = ctx.units_done.load(Ordering::Relaxed) as f64;
                        Some(RunningTask {
                            profile: f.profile.clone(),
                            parallelism: ctx.target_parallelism.load(Ordering::Relaxed) as f64,
                            remaining_seq_time: f.profile.seq_time * (1.0 - done / total).max(0.0),
                        })
                    }
                    _ => None,
                })
                .collect();
            let actions = policy.decide(now, &snapshot);
            if actions.is_empty() {
                return Ok(());
            }
            emit(&self.sink, || TraceRecord::Decide {
                now,
                running: snapshot.iter().map(RunningSnap::of).collect(),
                actions: actions.clone(),
            });
            for a in actions {
                let (id, parallelism) = (a.task(), a.parallelism());
                if !(parallelism > 0.0 && parallelism.is_finite()) {
                    return Err(SchedError::InvalidParallelism { task: id, parallelism }.into());
                }
                let gid = frags
                    .iter()
                    .position(|f| f.profile.id == id)
                    .ok_or(SchedError::UnknownTask { task: id })?;
                // Actions aimed at a cancelled query are stale by
                // construction — the policy decided before digesting its
                // finish events — so they are dropped, not indicted.
                if cancelled_q[frags[gid].query] {
                    continue;
                }
                match a {
                    Action::Start { .. } => self.start_fragment(
                        frags,
                        gid,
                        parallelism,
                        admission,
                        machine,
                        tx,
                        backends,
                        t0,
                    )?,
                    Action::Adjust { .. } => {
                        self.adjust_fragment(frags, gid, parallelism, machine, backends)
                    }
                }
                emit(&self.sink, || TraceRecord::Applied { now, action: a });
            }
        }
        Err(SchedError::FixpointDiverged { policy: policy.name(), rounds: FIXPOINT_ROUNDS }.into())
    }

    #[allow(clippy::too_many_arguments)]
    /// The predictor key of a fragment: a process-stable hash of its
    /// operator shape (driver, pipeline ops, producer count, root flag)
    /// plus a log2 bucket of the heap pages its driver reads — so a model
    /// trained on a 100-page scan is never applied to a 100k-page one,
    /// while repetitions of the same plan shape over same-magnitude
    /// relations share their history.
    fn predict_key(&self, f: &FragSlot) -> PredictKey {
        // FNV-1a over explicit shape codes. `mem::discriminant` hashes are
        // not guaranteed stable across builds; these codes are.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let (driver_code, driver_rel) = match f.program.driver {
            Driver::PageScan { rel } => (1u64, Some(rel)),
            Driver::KeyScan { rel } => (2, Some(rel)),
            Driver::KeyDomain => (3, None),
        };
        mix(driver_code);
        for op in &f.program.ops {
            mix(match op {
                PipelineOp::ProbeHash { .. } => 11,
                PipelineOp::MergeWith { .. } => 12,
                PipelineOp::NestInner { .. } => 13,
                PipelineOp::MergeIndexed { .. } => 14,
            });
        }
        mix(f.deps.len() as u64);
        mix(u64::from(f.is_root));
        // Pages behind the driver: the scanned relation for page/key
        // scans; for a key-domain walk (inputs all materialized) the
        // query's whole heap footprint stands in as the scale proxy.
        let heap_pages = |rel: usize| {
            f.bindings
                .get(rel)
                .and_then(|b| self.catalog.get(&b.name))
                .map_or(0, |r| r.heap.n_blocks())
        };
        let total_pages = match driver_rel {
            Some(rel) => heap_pages(rel),
            None => (0..f.bindings.len()).map(heap_pages).sum(),
        };
        PredictKey::new(h, total_pages)
    }

    /// Substitute the predicted profile for the declared one before
    /// `frags[i]` is announced to the policy, when a predictor is attached
    /// and its model for the fragment's key is warm. `co_runners` — the
    /// fragments running at announcement — is the interference covariate,
    /// and is remembered on the slot so the completion-time observation
    /// trains the regression at the same point it was queried.
    fn apply_prediction(
        &self,
        frags: &mut [FragSlot],
        i: usize,
        now: f64,
        co_runners: u32,
        metrics: &Option<Arc<ExecMetrics>>,
    ) {
        frags[i].co_runners = co_runners;
        let Some(pred) = &self.cfg.predictor else { return };
        let p = pred.predict(self.predict_key(&frags[i]), &frags[i].declared, co_runners);
        if let Some(m) = metrics {
            if p.from_model {
                m.predictions.inc();
            } else {
                m.prediction_fallbacks.inc();
            }
        }
        if !p.from_model {
            return; // cold start / degenerate model: declared prior stands
        }
        let d = &frags[i].declared;
        let prof = &p.profile;
        emit(&self.sink, || TraceRecord::Predict {
            now,
            task: d.id,
            declared_seq_time: d.seq_time,
            declared_io_rate: d.io_rate,
            declared_memory: d.memory,
            predicted_seq_time: prof.seq_time,
            predicted_io_rate: prof.io_rate,
            predicted_memory: prof.memory,
            co_runners,
            observations: p.observations,
        });
        frags[i].profile = p.profile;
    }

    #[allow(clippy::too_many_arguments)]
    fn start_fragment(
        &self,
        frags: &mut [FragSlot],
        gid: usize,
        parallelism: f64,
        admission: &mut Admission,
        machine: &Arc<Machine>,
        tx: &Sender<MasterMsg>,
        backends: &Backends<'_>,
        t0: Instant,
    ) -> Result<(), ControlFail> {
        match frags[gid].status {
            FragStatus::Ready => {}
            // The policy was never told about a Blocked fragment (arrival
            // happens at the Ready transition), so a premature start is a
            // reference to a task outside its announced universe.
            FragStatus::Blocked => {
                return Err(SchedError::UnknownTask { task: frags[gid].profile.id }.into());
            }
            FragStatus::Running(_) | FragStatus::Done => {
                return Err(SchedError::AlreadyRunning { task: frags[gid].profile.id }.into());
            }
        }
        let x = to_workers(parallelism, self.cfg.machine.n_procs);

        // Materialized inputs, keyed by query-local fragment index. A
        // missing producer output is a readiness-protocol violation,
        // surfaced as a typed error rather than a panic.
        let mut inputs: HashMap<usize, Arc<Materialized>> = HashMap::new();
        for (&local, &dep) in frags[gid].local_deps.iter().zip(frags[gid].deps.iter()) {
            let out = frags[dep]
                .output
                .clone()
                .ok_or(ControlFail::Producer { fragment: gid, producer: dep })?;
            inputs.insert(local, out);
        }

        // The fragment's unit space per driver: pages for a sequential
        // scan, a key interval for index scans and key-domain walks.
        let missing = |name: &str| ControlFail::Relation { fragment: gid, name: name.to_string() };
        let units = match frags[gid].program.driver {
            Driver::PageScan { rel } => {
                let name = &frags[gid].bindings[rel].name;
                let relation = self.catalog.get(name).ok_or_else(|| missing(name))?;
                UnitSpace::Pages(relation.heap.n_blocks())
            }
            Driver::KeyScan { rel } => {
                let binding = &frags[gid].bindings[rel];
                let relation =
                    self.catalog.get(&binding.name).ok_or_else(|| missing(&binding.name))?;
                let s = relation.stats();
                UnitSpace::Keys {
                    lo: binding.pred.0.max(s.min_a) as i64,
                    hi: binding.pred.1.min(s.max_a) as i64,
                }
            }
            Driver::KeyDomain => {
                // Intersection of the materialized inputs' key ranges.
                let mut lo = i64::MIN;
                let mut hi = i64::MAX;
                for op in &frags[gid].program.ops {
                    if let Some(dep) = op.dep() {
                        let m = &inputs[&dep];
                        lo = lo.max(m.min_key().map_or(i64::MAX, |k| k as i64));
                        hi = hi.min(m.max_key().map_or(i64::MIN, |k| k as i64));
                    }
                }
                UnitSpace::Keys { lo, hi }
            }
        };
        let total = units.total();
        // Heavy hitters of a key-domain merge are decided before staffing:
        // the workers are born knowing which keys to skip, and the master
        // owes their output at materialization.
        let hot_keys = self.hot_join_keys(&frags[gid].program, &inputs, &units);
        let (partition, total_units) = match self.cfg.effective_morsel_mode() {
            // The packed claim word addresses 31 bits of units; a larger
            // fragment (never seen in practice) falls back to static shares.
            MorselMode::Stealing { morsel_units } if total > 0 && total < MAX_STEAL_UNITS => {
                let mut part = StealPartition::new(total, morsel_units, x, gid as u64);
                // Page-scan units are striped blocks (`unit % n_disks` =
                // home disk): steal disk-affine so a rescue steal doesn't
                // degrade two disks' service class. Key-space fragments
                // have no unit→disk mapping, so they steal blind.
                if matches!(frags[gid].program.driver, Driver::PageScan { .. }) {
                    part = part.with_disks(self.cfg.machine.n_disks);
                }
                let part = Arc::new(part);
                (PartitionState::Morsel { part, key_base: units.base() }, total)
            }
            _ => match units {
                UnitSpace::Pages(n) => (PartitionState::Page(PagePartition::new(n, x)), n),
                UnitSpace::Keys { lo, hi } => range_partition(lo, hi, x),
            },
        };

        // Memory admission: the fragment's estimated footprint, clamped to
        // the whole pool, becomes its page demand; the clamp also fixes the
        // spill bound, so the budget is decided before the context exists
        // and the workers are born knowing it. A demand no clamp can fit
        // (spill disabled) is refused up front with a typed error — the
        // seed admitted it and died later on `PoolExhausted`.
        let mut demand_pages = 0u64;
        let mut spill = None;
        if self.cfg.memory_grants && total > 0 {
            if let Some(pool) = machine.pool() {
                let capacity = pool.capacity() as u64;
                let raw = (frags[gid].profile.memory / PAGE_SIZE as f64).ceil() as u64;
                if raw > capacity && !self.cfg.spill {
                    return Err(ControlFail::Memory {
                        fragment: gid,
                        demand_pages: raw,
                        capacity_pages: capacity,
                    });
                }
                demand_pages = raw.min(capacity);
                if self.cfg.spill && demand_pages > 0 {
                    let row_bytes = self.row_bytes_estimate(&frags[gid].bindings);
                    let grant_bytes = demand_pages * PAGE_SIZE as u64;
                    let threshold_rows =
                        (grant_bytes / (u64::from(x) * row_bytes as u64)).max(1) as usize;
                    spill = Some(SpillSpec {
                        threshold_rows,
                        row_bytes,
                        chunks: AtomicU64::new(0),
                        rows: AtomicU64::new(0),
                    });
                }
            }
        }

        let ctx = Arc::new(FragCtx {
            gid,
            program: frags[gid].program.clone(),
            rels: frags[gid].bindings.clone(),
            inputs,
            partition: std::sync::Mutex::new(partition),
            exited_slots: std::sync::Mutex::new(Vec::new()),
            heartbeats: std::sync::Mutex::new(Vec::new()),
            units_done: AtomicU64::new(0),
            total_units,
            outstanding: AtomicU32::new(0),
            staffed: AtomicU64::new(0),
            out: OutputSink::default(),
            target_parallelism: AtomicU32::new(x),
            done: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            pages_read: AtomicU64::new(0),
            done_tx: tx.clone(),
            cpu_tuple: self.cfg.cpu_tuple,
            out_batch_tuples: self.cfg.effective_out_batch(),
            cpu_batch_seconds: self.cfg.effective_cpu_batch(),
            spill,
            hot_keys,
        });
        frags[gid].started_at = t0.elapsed().as_secs_f64();
        frags[gid].status = FragStatus::Running(ctx.clone());

        if total_units == 0 {
            // Nothing to scan (empty relation or empty key intersection):
            // complete immediately through the normal channel.
            if !ctx.done.swap(true, Ordering::SeqCst) {
                let _ = tx.send(MasterMsg::FragmentDone(gid));
            }
            return Ok(());
        }
        if demand_pages > 0 {
            let pool = machine.pool().expect("demand computed only with a pool");
            match pool.try_reserve(demand_pages) {
                Some(grant) => {
                    admission.granted_pages += grant.pages();
                    frags[gid].grant = Some(grant);
                }
                None => {
                    // Over-committed: the fragment is admitted to the
                    // schedule (Running, so the policy and the wedge
                    // detector account for it) but staffing waits in the
                    // FIFO until a completion releases capacity. A lone
                    // fragment always fits (demand is clamped to the pool),
                    // so the queue can never deadlock.
                    admission.waits += 1;
                    admission.queue.push_back((gid, demand_pages));
                    frags[gid].queued = true;
                    return Ok(());
                }
            }
        }
        for slot in 0..x as usize {
            backends.staff(&ctx, slot, machine, &self.catalog);
        }
        Ok(())
    }

    /// Retry the admission FIFO after a grant release: staff every queued
    /// fragment whose reservation now fits, stopping at the first that
    /// still does not. Strict FIFO — later small demands never overtake an
    /// earlier large one, so a big build cannot be starved.
    fn retry_admission(
        &self,
        frags: &mut [FragSlot],
        admission: &mut Admission,
        machine: &Arc<Machine>,
        backends: &Backends<'_>,
        t0: Instant,
    ) {
        let Some(pool) = machine.pool() else { return };
        while let Some(&(gid, demand)) = admission.queue.front() {
            let ctx = match &frags[gid].status {
                FragStatus::Running(ctx) => ctx.clone(),
                // Finalized while waiting (abort paths only): nothing to
                // staff, and no grant was ever held.
                _ => {
                    admission.queue.pop_front();
                    continue;
                }
            };
            let Some(grant) = pool.try_reserve(demand) else { return };
            admission.queue.pop_front();
            admission.granted_pages += grant.pages();
            frags[gid].grant = Some(grant);
            frags[gid].queued = false;
            // The profile clock starts at staffing: the queue wait is
            // admission latency (counted in `mem_grant_waits`), not run
            // time.
            frags[gid].started_at = t0.elapsed().as_secs_f64();
            let x = ctx.target_parallelism.load(Ordering::Relaxed);
            for slot in 0..x as usize {
                backends.staff(&ctx, slot, machine, &self.catalog);
            }
        }
    }

    /// Estimated bytes per output row for a fragment's spill accounting:
    /// the widest stored tuple among the query's relations (heap pages over
    /// tuple count), defaulting to 64 when no relation has stats. An
    /// estimate is enough — it sizes simulated spill blocks; it does not
    /// place data.
    fn row_bytes_estimate(&self, bindings: &[RelBinding]) -> usize {
        bindings
            .iter()
            .filter_map(|b| {
                let rel = self.catalog.get(&b.name)?;
                let s = rel.stats();
                (s.n_tuples > 0)
                    .then(|| ((s.n_blocks * PAGE_SIZE as u64) / s.n_tuples).max(1) as usize)
            })
            .max()
            .unwrap_or(64)
    }

    fn adjust_fragment(
        &self,
        frags: &mut [FragSlot],
        gid: usize,
        parallelism: f64,
        machine: &Arc<Machine>,
        backends: &Backends<'_>,
    ) {
        let ctx = match &frags[gid].status {
            FragStatus::Running(ctx) => ctx.clone(),
            // The fragment finished in the window between the snapshot and
            // this action; the adjustment is moot.
            _ => return,
        };
        // Parked in the admission FIFO: nothing is staffed, and staffing
        // `new_slots` here would run the fragment without a grant (and then
        // a second time when its reservation lands). Drop the adjustment;
        // the policy re-decides once the fragment actually runs.
        if frags[gid].queued {
            return;
        }
        let ctx = &ctx;
        frags[gid].adjusts += 1;
        let x = to_workers(parallelism, self.cfg.machine.n_procs);
        ctx.target_parallelism.store(x, Ordering::Relaxed);
        let (info, active) = {
            let mut p = lock(&ctx.partition);
            match &mut *p {
                PartitionState::Page(pp) => (pp.adjust(x), pp.active_slots()),
                PartitionState::Range(rp) => (rp.adjust(x), rp.active_slots()),
                PartitionState::Morsel { part, .. } => (part.adjust(x), part.active_slots()),
            }
        };
        for slot in info.new_slots {
            backends.staff(ctx, slot, machine, &self.catalog);
        }
        // Re-staff previously drained slots that the new assignment handed
        // fresh work (the idle-worker hazard).
        let respawn: Vec<usize> = {
            let mut exited = lock(&ctx.exited_slots);
            let respawn: Vec<usize> =
                exited.iter().copied().filter(|s| active.contains(s)).collect();
            exited.retain(|s| !respawn.contains(s));
            respawn
        };
        for slot in respawn {
            backends.staff(ctx, slot, machine, &self.catalog);
        }
    }

    /// Cancel every fragment of query `qi`.
    ///
    /// Fragments retire according to how far they got: `Blocked` ones were
    /// never announced to the policy and disappear silently; `Ready` and
    /// admission-queued ones retire through the policy's finish protocol
    /// (so it never waits on them); staffed ones have their workers
    /// stopped cooperatively — the flag is observed at unit and morsel
    /// boundaries, every steal slot is revoked so mid-morsel remainders
    /// are never redealt, and the ordinary completion protocol then
    /// releases the grant, pins and partition shares exactly once.
    ///
    /// Returns whether any fragment was actually cut short — `false`
    /// means the query had already finished and its results stand.
    #[allow(clippy::too_many_arguments)]
    fn cancel_query(
        &self,
        qi: usize,
        frags: &mut [FragSlot],
        admission: &mut Admission,
        policy: &mut dyn SchedulePolicy,
        tx: &Sender<MasterMsg>,
        done_count: &mut usize,
        t: f64,
    ) -> bool {
        enum Plan {
            Skip,
            Retire { announce: bool },
            Stop(Arc<FragCtx>),
        }
        // Whether the cancel found anything left to cut short. A token
        // firing after every fragment finished is a no-op: the query
        // completed, its results stand.
        let mut affected = false;
        for (gid, frag) in frags.iter_mut().enumerate() {
            if frag.query != qi {
                continue;
            }
            let plan = match &frag.status {
                FragStatus::Done => Plan::Skip,
                FragStatus::Blocked => Plan::Retire { announce: false },
                FragStatus::Ready => Plan::Retire { announce: true },
                FragStatus::Running(ctx) => {
                    if frag.queued {
                        // Parked in the admission FIFO: Running in the
                        // policy's eyes but no workers are staffed and no
                        // grant is held — retire it directly.
                        Plan::Retire { announce: true }
                    } else {
                        Plan::Stop(ctx.clone())
                    }
                }
            };
            match plan {
                Plan::Skip => {}
                Plan::Retire { announce } => {
                    affected = true;
                    if frag.queued {
                        admission.queue.retain(|&(g, _)| g != gid);
                        frag.queued = false;
                    }
                    frag.status = FragStatus::Done;
                    frag.finished_at = t;
                    *done_count += 1;
                    if announce {
                        let finished = frag.profile.id;
                        emit(&self.sink, || TraceRecord::Finish { now: t, task: finished });
                        policy.on_finish(t, finished);
                    }
                }
                Plan::Stop(ctx) => {
                    affected = true;
                    // Workers observe the flag at the next unit or morsel
                    // boundary; revoking every steal slot stops mid-morsel
                    // claims too (the forfeited remainder is never
                    // redealt). Finalization then arrives through the
                    // ordinary FragmentDone.
                    ctx.cancelled.store(true, Ordering::SeqCst);
                    {
                        let p = lock(&ctx.partition);
                        if let PartitionState::Morsel { part, .. } = &*p {
                            part.revoke_all();
                        }
                    }
                    // The death window: between a worker death and the
                    // patrol's replacement, `outstanding` can be 0 with
                    // units unfinished — no worker is left to fire the
                    // completion. Fire it from here through the same
                    // `done` latch; whichever side swaps first sends, so
                    // it is exactly-once.
                    if ctx.outstanding.load(Ordering::SeqCst) == 0
                        && !ctx.done.swap(true, Ordering::SeqCst)
                    {
                        let _ = tx.send(MasterMsg::FragmentDone(gid));
                    }
                }
            }
        }
        affected
    }
}

/// A long-lived machine + worker pool shared by concurrent
/// [`Executor::run_shared`] calls — the substrate of a continuous query
/// service. Every admission grant comes from the one buffer pool (so
/// memory admission arbitrates *across* runs) and every worker slot is
/// staffed onto the one pool of threads. The ledger accessors exist for
/// exactly-once audits: after all runs have quiesced,
/// [`ExecSession::reserved_pages`] and [`ExecSession::pinned_pages`] must
/// both be zero or something leaked.
pub struct ExecSession {
    machine: Arc<Machine>,
    pool: WorkerPool,
    metrics: Option<Arc<ExecMetrics>>,
}

impl ExecSession {
    /// The shared simulated machine (its buffer pool backs every grant).
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The shared metric registry, when the config enabled one.
    pub fn metrics(&self) -> Option<&Arc<ExecMetrics>> {
        self.metrics.as_ref()
    }

    /// Buffer-pool pages currently reserved by admission grants across
    /// every run on this session. Zero once all runs have finished —
    /// anything else is a grant leak.
    pub fn reserved_pages(&self) -> u64 {
        self.machine.pool().map_or(0, |p| p.reserved())
    }

    /// Pages currently pinned across the session. Zero at quiesce —
    /// anything else is a pin leak.
    pub fn pinned_pages(&self) -> u64 {
        self.machine.pool_pinned()
    }

    /// OS threads the shared worker pool has created so far.
    pub fn threads_spawned(&self) -> u64 {
        self.pool.threads_spawned()
    }

    /// Run the shared worker pool down and join every thread. Idempotent;
    /// also invoked when the session is dropped.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }
}

/// How worker slots become running threads: always the persistent
/// [`WorkerPool`]. The seed spawned one fresh OS thread per slot under
/// [`DataPath::GlobalLock`], which at 8 workers × dozens of queries meant
/// hundreds of thread spawns per bench run — the A/B baseline was
/// measuring thread churn, not lock contention. Both paths now staff
/// through the pool (a queue push that unparks a long-lived thread); the
/// pool grows on demand to the *peak concurrent* slot count and no
/// further, so GlobalLock keeps its contended data path but sheds the
/// spawn storm.
struct Backends<'a> {
    pool: &'a WorkerPool,
    staffed: AtomicU64,
    /// The pool is borrowed from a long-lived [`ExecSession`]: shutdown
    /// quiesces this run's workers instead of running the threads down.
    shared: bool,
}

impl<'a> Backends<'a> {
    fn new(pool: &'a WorkerPool, shared: bool) -> Self {
        Backends { pool, staffed: AtomicU64::new(0), shared }
    }

    /// Staff worker slot `slot` of `ctx`: accounts the worker in the
    /// fragment's completion protocol **before** it can run, wraps the run
    /// in a panic report, and always balances with [`FragCtx::worker_exit`].
    fn staff(&self, ctx: &Arc<FragCtx>, slot: usize, machine: &Arc<Machine>, catalog: &Arc<Catalog>) {
        self.staffed.fetch_add(1, Ordering::Relaxed);
        ctx.staffed.fetch_add(1, Ordering::Relaxed);
        // Register the slot's heartbeat before the worker can run, so the
        // patrol tracks it from staffing time (a job stuck in the pool
        // queue is indistinguishable from a dead worker — reclaiming it is
        // a safe false positive).
        {
            let mut beats = lock(&ctx.heartbeats);
            while beats.len() <= slot {
                beats.push(Arc::new(AtomicU64::new(0)));
            }
        }
        ctx.outstanding.fetch_add(1, Ordering::SeqCst);
        let ctx = ctx.clone();
        let machine = machine.clone();
        let catalog = catalog.clone();
        let job = move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_worker(&ctx, slot, &machine, &catalog);
            }));
            if let Err(payload) = outcome {
                let message = panic_message(payload.as_ref());
                let _ = ctx.done_tx.send(MasterMsg::WorkerPanicked { gid: ctx.gid, message });
            }
            ctx.worker_exit();
        };
        self.pool.submit(Box::new(job));
    }

    /// OS threads created so far.
    fn threads_spawned(&self) -> u64 {
        self.pool.threads_spawned()
    }

    /// Run this run's workers down. A private pool is shut down outright
    /// (every thread joined); a shared session's pool stays alive for
    /// concurrent runs, so instead this waits for the run's own
    /// outstanding workers to drain — they observe `aborted`/`cancelled`
    /// at the next unit boundary. The hard cap turns a wedged worker into
    /// a leaked thread instead of a hung service.
    fn shutdown(&self, frags: &[FragSlot]) {
        if !self.shared {
            self.pool.shutdown();
            return;
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let busy = frags.iter().any(|f| match &f.status {
                FragStatus::Running(ctx) => ctx.outstanding.load(Ordering::SeqCst) > 0,
                _ => false,
            });
            if !busy || Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Receive the next worker message. With a patrol interval configured,
/// `Ok(None)` marks a patrol tick; without one this blocks exactly like
/// the fault-free master always did.
///
/// The patrol is **deadline-based**, not quiet-tick-based: the caller
/// passes the absolute instant the next patrol is due, and once
/// `Instant::now()` passes it this returns `Ok(None)` even when messages
/// keep arriving. The earlier `recv_timeout(patrol_ms)` form restarted
/// its timer on every message, so a chatty fragment flooding the master
/// channel could starve the patrol forever and a dead sibling's worker
/// was never reaped.
fn next_msg(rx: &Receiver<MasterMsg>, deadline: Option<Instant>) -> Result<Option<MasterMsg>, ()> {
    let Some(deadline) = deadline else {
        return rx.recv().map(Some).map_err(|_| ());
    };
    let now = Instant::now();
    if now >= deadline {
        return Ok(None);
    }
    match rx.recv_timeout(deadline - now) {
        Ok(msg) => Ok(Some(msg)),
        Err(RecvTimeoutError::Timeout) => Ok(None),
        Err(RecvTimeoutError::Disconnected) => Err(()),
    }
}

/// Largest fractional change one recalibration window may apply to the
/// machine model's bandwidths. A real sustained slowdown converges over a
/// few windows; a single noisy window cannot slam the model far enough to
/// destabilise the balance-point fixpoint.
const MAX_RECAL_STEP: f64 = 0.3;

/// The master's self-healing patrol: dead-worker detection plus
/// degradation-aware recalibration, run on quiet ticks of the message loop.
struct Patrol {
    grace: u32,
    band: f64,
    min_requests: u64,
    /// The machine model the policy currently believes; rebased on every
    /// recalibration (the configured model is only the starting point).
    model: MachineConfig,
    /// Last seen heartbeat and consecutive-stale tick count per
    /// `(fragment, slot)`.
    beats: HashMap<(usize, usize), (u64, u32)>,
    /// Slots already declared dead (never declared twice).
    dead: HashSet<(usize, usize)>,
    /// Per-class `(requests, busy)` at the start of the current window.
    io_baseline: [(u64, f64); 3],
    recoveries: u64,
    recalibrations: u64,
}

impl Patrol {
    fn new(cfg: &ExecConfig, io_baseline: [(u64, f64); 3]) -> Self {
        Patrol {
            grace: cfg.patrol_grace.max(1),
            band: cfg.recal_band,
            min_requests: cfg.recal_min_requests.max(1),
            model: cfg.machine.clone(),
            beats: HashMap::new(),
            dead: HashSet::new(),
            io_baseline,
            recoveries: 0,
            recalibrations: 0,
        }
    }

    /// Declare dead every slot whose heartbeat has been frozen for `grace`
    /// consecutive ticks while its fragment still has unfinished units and
    /// the slot never registered a voluntary exit. Each dead slot's
    /// remaining share is revoked under the partition mutex (the §2.4
    /// protocols' failure analogue) and a replacement slot is staffed.
    ///
    /// A false positive — a live worker stalled mid-unit — is safe: its
    /// revoked slot hands out no further units, so it completes the one
    /// unit it holds and retires; the replacement's cursor already sits
    /// past that unit, keeping every unit exactly-once.
    fn reap(
        &mut self,
        frags: &[FragSlot],
        backends: &Backends<'_>,
        machine: &Arc<Machine>,
        catalog: &Arc<Catalog>,
    ) {
        for (gid, f) in frags.iter().enumerate() {
            let FragStatus::Running(ctx) = &f.status else { continue };
            if ctx.units_done.load(Ordering::SeqCst) >= ctx.total_units
                || ctx.aborted.load(Ordering::Relaxed)
                // Cancelled workers exit voluntarily at the next unit
                // boundary; their frozen heartbeats must not read as
                // deaths (a "replacement" would immediately exit, but the
                // staffing churn would distort the recovery counters).
                || ctx.cancelled.load(Ordering::Relaxed)
            {
                continue;
            }
            let snapshot: Vec<u64> =
                lock(&ctx.heartbeats).iter().map(|b| b.load(Ordering::Relaxed)).collect();
            let exited: Vec<usize> = lock(&ctx.exited_slots).clone();
            for (slot, &beat) in snapshot.iter().enumerate() {
                let key = (gid, slot);
                if self.dead.contains(&key) || exited.contains(&slot) {
                    self.beats.remove(&key);
                    continue;
                }
                let entry = self.beats.entry(key).or_insert((beat, 0));
                if entry.0 == beat {
                    entry.1 += 1;
                } else {
                    *entry = (beat, 0);
                }
                if entry.1 >= self.grace {
                    self.dead.insert(key);
                    let replacement = {
                        let mut p = lock(&ctx.partition);
                        match &mut *p {
                            PartitionState::Page(pp) => pp.fail_slot(slot),
                            PartitionState::Range(rp) => rp.fail_slot(slot),
                            PartitionState::Morsel { part, .. } => part.fail_slot(slot),
                        }
                    };
                    backends.staff(ctx, replacement, machine, catalog);
                    self.recoveries += 1;
                }
            }
        }
    }

    /// Compare the window's observed I/O service rate against the current
    /// model. When the dominant class has drifted outside the tolerance
    /// band, return a corrected machine model with every rate rescaled by
    /// the observed ratio; the caller rebases the policy on it.
    fn recalibrate(&mut self, machine: &Machine) -> Option<MachineConfig> {
        if self.band <= 0.0 {
            return None;
        }
        let obs = machine.observed_service();
        let window: Vec<(u64, f64)> = (0..3)
            .map(|i| (obs[i].0 - self.io_baseline[i].0, obs[i].1 - self.io_baseline[i].1))
            .collect();
        if window.iter().map(|w| w.0).sum::<u64>() < self.min_requests {
            return None; // too little traffic to trust; keep accumulating
        }
        self.io_baseline = obs;
        let (class, (count, busy)) =
            window.into_iter().enumerate().max_by_key(|(_, (c, _))| *c)?;
        if count == 0 || busy <= 0.0 {
            return None;
        }
        let observed = count as f64 / busy;
        let nominal = [self.model.seq_bw, self.model.almost_seq_bw, self.model.random_bw][class];
        let raw = observed / nominal;
        if !raw.is_finite() {
            return None;
        }
        // Attribute cross-run contention before testing for drift: with k
        // runs interleaving their streams on the shared disks, each
        // request's busy time can stretch by up to the interference
        // factor, so the true machine rate lies in `[raw, raw·k]`.
        // Contention only ever *slows* a run, so the attribution is
        // one-sided: blame co-runners for as much of a shortfall as the
        // factor can explain (never pushing past nominal, and never
        // inflating a healthy reading) and treat only the unexplained
        // remainder as drift. Without this, every tenant of a shared
        // session "measures" a slow machine, rescales the model downward,
        // and the next window swings it back — the §15.4 wedge.
        let runs = machine.active_runs().min(u32::MAX as u64) as u32;
        let factor = xprs_scheduler::estimate::interference_factor(runs.max(1));
        let ratio = if raw < 1.0 { (raw * factor).min(1.0) } else { raw };
        if (ratio - 1.0).abs() <= self.band {
            return None;
        }
        // Clamp the per-step correction: a sustained real slowdown still
        // converges (each window moves the model up to MAX_RECAL_STEP
        // closer), but one noisy window can no longer slam the rates by an
        // order of magnitude — which is what drove the balance-point
        // fixpoint into `SchedError::FixpointDiverged` when consecutive
        // windows disagreed.
        let step = ratio.clamp(1.0 - MAX_RECAL_STEP, 1.0 + MAX_RECAL_STEP);
        let mut corrected = self.model.clone();
        corrected.seq_bw *= step;
        corrected.almost_seq_bw *= step;
        corrected.random_bw *= step;
        Some(corrected)
    }
}

/// Join a thread, surfacing a panic as the typed
/// [`ExecError::WorkerPanicked`] instead of a propagated unwind.
///
/// # Errors
/// Returns the panic payload rendered into `WorkerPanicked` for `fragment`.
pub fn join_worker(
    handle: std::thread::JoinHandle<()>,
    fragment: usize,
) -> Result<(), ExecError> {
    handle.join().map_err(|payload| ExecError::WorkerPanicked {
        fragment,
        message: panic_message(payload.as_ref()),
    })
}

/// Transition a fragment to `Done` and hand back its running context.
///
/// A completion message for a fragment that is not running is a protocol
/// violation: `Done` means a duplicate completion (the same fragment
/// finished twice), anything else means a completion for a fragment that
/// never started. The status is left untouched on error.
fn take_running(status: &mut FragStatus, task: TaskId) -> Result<Arc<FragCtx>, SchedError> {
    match std::mem::replace(status, FragStatus::Done) {
        FragStatus::Running(ctx) => Ok(ctx),
        FragStatus::Done => Err(SchedError::DuplicateCompletion { task }),
        other => {
            *status = other;
            Err(SchedError::NotRunning { task })
        }
    }
}

/// A run with unfinished fragments but nothing running will never receive
/// another completion message: the policy has wedged, and blocking on the
/// channel would hang forever. Detect it right after each decision round.
fn wedge_check(
    policy: &dyn SchedulePolicy,
    frags: &[FragSlot],
    completed: usize,
) -> Result<(), SchedError> {
    if completed < frags.len()
        && !frags.iter().any(|f| matches!(f.status, FragStatus::Running(_)))
    {
        return Err(SchedError::Wedged {
            policy: policy.name(),
            unfinished: frags.len() - completed,
        });
    }
    Ok(())
}

/// Snapshot the machine's cumulative counters plus the set of running
/// fragments at a scheduling decision. Consecutive samples bracket a
/// *pairing window* — the interval over which a fixed task mix ran — so
/// the [`crate::obs`] auditor can compare measured disk bandwidth and
/// utilization against the §2.2–2.3 predictions for that mix.
fn util_sample(now: f64, frags: &[FragSlot], machine: &Machine) -> UtilSample {
    let running = frags
        .iter()
        .filter_map(|f| match &f.status {
            FragStatus::Running(ctx) => Some(RunningInfo {
                task: f.profile.id,
                workers: ctx.target_parallelism.load(Ordering::Relaxed),
                profile: f.profile.clone(),
            }),
            _ => None,
        })
        .collect();
    UtilSample {
        now,
        running,
        disk: machine.disk_class_total(),
        cpu_busy: machine.cpu_busy_secs(),
        reads: machine.reads(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Stop the run: tell every running fragment's workers to drain, release
/// every grant still held, then run the backends down so no thread
/// outlives the error.
///
/// Grant release here is load-bearing: a [`xprs_storage::ShardReservation`]
/// has no `Drop`, so an error path that abandoned the slot would shrink
/// the — possibly shared, possibly service-lifetime — pool forever.
fn drain(
    frags: &mut [FragSlot],
    backends: &Backends<'_>,
    machine: &Machine,
    admission: &mut Admission,
) {
    for f in frags.iter_mut() {
        if let FragStatus::Running(ctx) = &f.status {
            ctx.aborted.store(true, Ordering::Relaxed);
        }
        if let Some(grant) = f.grant.take() {
            admission.released_pages += grant.pages();
            if let Some(pool) = machine.pool() {
                pool.release(grant);
            }
        }
    }
    backends.shutdown(frags);
}

/// A fragment's unit space before it is wrapped in a partition: heap pages
/// or an inclusive key interval.
enum UnitSpace {
    Pages(u64),
    Keys { lo: i64, hi: i64 },
}

impl UnitSpace {
    fn total(&self) -> u64 {
        match *self {
            UnitSpace::Pages(n) => n,
            UnitSpace::Keys { lo, hi } => {
                if hi < lo {
                    0
                } else {
                    (hi - lo + 1) as u64
                }
            }
        }
    }

    /// Key that unit offset 0 maps to (0 for page scans).
    fn base(&self) -> i64 {
        match *self {
            UnitSpace::Pages(_) => 0,
            UnitSpace::Keys { lo, .. } => lo,
        }
    }
}

fn range_partition(lo: i64, hi: i64, x: u32) -> (PartitionState, u64) {
    if lo > hi {
        // Empty domain; a trivial partition that yields nothing.
        (PartitionState::Range(RangePartition::new(0, 0, 1)), 0)
    } else {
        let total = (hi - lo + 1) as u64;
        (PartitionState::Range(RangePartition::new(lo, hi, x)), total)
    }
}

fn to_workers(x: f64, n_procs: u32) -> u32 {
    (x.round() as i64).clamp(1, n_procs as i64) as u32
}

/// Compute the withheld heavy-hitter output of a key-domain merge fragment
/// on the worker pool.
///
/// For each hot key the *outer* (first `MergeWith`) side's matching rows
/// split into up to `ways` contiguous chunks; every chunk becomes one
/// scatter-gather task that crosses its rows with the replicated inner
/// sides (shared `Arc`s — replication in shared memory, no copy). A task
/// emits rows in exactly the worker pipeline's nesting order (outer
/// position, then inner positions), and chunks are returned in (key, chunk)
/// order, so concatenating them reproduces byte-for-byte what the single
/// worker owning the key's unit would have emitted.
fn hot_key_fanout(
    ctx: &FragCtx,
    backends: &Backends<'_>,
    ways: usize,
) -> Vec<Vec<(i32, Tuple)>> {
    let deps: Vec<Arc<Materialized>> = ctx
        .program
        .ops
        .iter()
        .map(|op| ctx.inputs[&op.dep().expect("hot fan-out over MergeWith ops")].clone())
        .collect();
    let (outer, inners) = deps.split_first().expect("hot fan-out needs at least one dep");
    let mut tasks: Vec<MergeTask> = Vec::new();
    for &key in &ctx.hot_keys {
        let rows: Vec<Tuple> = outer.matches(key).cloned().collect();
        if rows.is_empty() {
            continue;
        }
        let chunk_rows = rows.len().div_ceil(ways.max(1));
        let mut rows = rows.into_iter().peekable();
        while rows.peek().is_some() {
            let chunk: Vec<Tuple> = rows.by_ref().take(chunk_rows).collect();
            let inners = inners.to_vec();
            tasks.push(Box::new(move || {
                let mut out = Vec::new();
                for t in &chunk {
                    hot_cross(key, Tuple::from_values(vec![]).join(t), &inners, &mut out);
                }
                out
            }) as MergeTask);
        }
    }
    if tasks.is_empty() {
        return Vec::new();
    }
    backends.pool.scatter_gather(tasks)
}

/// Inner loops of the hot-key cross product, mirroring the worker
/// pipeline's `MergeWith` recursion: one nested loop per remaining input,
/// joining in input order, emitting at the leaves.
fn hot_cross(key: i32, row: Tuple, inners: &[Arc<Materialized>], out: &mut Vec<(i32, Tuple)>) {
    match inners.split_first() {
        None => out.push((key, row)),
        Some((next, rest)) => {
            for m in next.matches(key) {
                hot_cross(key, row.join(m), rest, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The patrol-starvation regression: a sender flooding the channel
    /// faster than the patrol interval must NOT postpone the patrol tick.
    /// The old `recv_timeout(patrol_ms)` restarted its timer on every
    /// message, so `Ok(None)` never surfaced under continuous load; the
    /// deadline form returns it as soon as the deadline passes.
    #[test]
    fn patrol_deadline_fires_under_a_continuous_message_flood() {
        let (tx, rx) = channel::<MasterMsg>();
        let stop = Arc::new(AtomicU32::new(0));
        let flooder = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    if tx.send(MasterMsg::FragmentDone(usize::MAX)).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };
        let deadline = Some(Instant::now() + Duration::from_millis(20));
        let mut messages = 0u64;
        let mut patrolled = false;
        // Far more iterations than messages can arrive in 20ms; the loop
        // exits via the deadline, not by draining the flood.
        for _ in 0..200_000 {
            match next_msg(&rx, deadline) {
                Ok(Some(_)) => messages += 1,
                Ok(None) => {
                    patrolled = true;
                    break;
                }
                Err(()) => panic!("flooder hung up early"),
            }
        }
        stop.store(1, Ordering::Relaxed);
        flooder.join().unwrap();
        assert!(patrolled, "patrol deadline starved by a chatty channel");
        assert!(messages >= 1, "flood never actually reached the master");
    }

    #[test]
    fn duplicate_completion_is_a_typed_error_not_a_panic() {
        // A second FragmentDone for an already-finalized fragment used to
        // panic the master; now it is SchedError::DuplicateCompletion.
        let mut status = FragStatus::Done;
        let err = take_running(&mut status, TaskId(3)).err().expect("dup must surface");
        assert_eq!(err, SchedError::DuplicateCompletion { task: TaskId(3) });
        assert!(matches!(status, FragStatus::Done), "status must stay Done");
    }

    #[test]
    fn completion_for_a_never_started_fragment_is_not_running() {
        let mut status = FragStatus::Ready;
        let err = take_running(&mut status, TaskId(4)).err().expect("must surface");
        assert_eq!(err, SchedError::NotRunning { task: TaskId(4) });
        assert!(matches!(status, FragStatus::Ready), "status must be restored");
    }

    #[test]
    fn sched_exec_error_exposes_its_source() {
        use std::error::Error;
        let e = ExecError::Sched {
            source: SchedError::DuplicateCompletion { task: TaskId(1) },
            completed: 2,
            total: 5,
        };
        assert!(e.to_string().contains("2/5"));
        assert!(e.source().is_some());
        let e = ExecError::UnknownRelation { fragment: 7, name: "ghost".to_string() };
        assert!(e.to_string().contains("ghost"));
    }
}
