//! A persistent worker-thread pool for the slave backends.
//!
//! The seed executor spawned one OS thread per worker slot per fragment and
//! joined them all at the end of the run, so every `Start` and every
//! parallelism `Adjust` paid thread creation on the hot path. This pool
//! keeps long-lived threads that **park on a condvar** when idle; staffing a
//! slot is now a queue push + `notify_one` (an unpark), and retiring one is
//! the job returning to the idle queue.
//!
//! The pool grows on demand: a submit that finds no idle thread spawns one,
//! because worker jobs are long-running (a job scans its slot's whole share
//! of a partition) and queueing behind a busy thread would starve the
//! fragment — with dynamic adjustment that is a deadlock, not a slowdown.
//! Growth is bounded in practice by the peak number of simultaneously
//! staffed slots; threads are reused for every later job.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One unit of staffing: run a worker slot to completion.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    idle: usize,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    q: Mutex<Queue>,
    cv: Condvar,
    /// Threads ever created (for observability / benches).
    spawned: AtomicU64,
    /// Jobs ever submitted.
    submitted: AtomicU64,
    /// Jobs run to completion (submitted − completed = in flight or queued;
    /// the gap is what a liveness patrol compares against its grace window).
    completed: AtomicU64,
}

/// Pool of persistent worker threads; jobs are `FnOnce` staffing closures.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// A pool with `initial` threads pre-spawned (0 is fine — threads then
    /// appear on first submit).
    pub fn new(initial: usize) -> Self {
        let pool = WorkerPool { shared: Arc::new(Shared::default()), handles: Mutex::new(Vec::new()) };
        for _ in 0..initial {
            pool.spawn_thread();
        }
        pool
    }

    fn spawn_thread(&self) {
        let shared = self.shared.clone();
        self.shared.spawned.fetch_add(1, Ordering::Relaxed);
        let handle = std::thread::spawn(move || worker_loop(&shared));
        lock(&self.handles).push(handle);
    }

    /// Hand `job` to an idle thread, spawning one if none is parked.
    ///
    /// # Panics
    /// Panics if called after [`WorkerPool::shutdown`].
    pub fn submit(&self, job: Job) {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let must_spawn = {
            let mut q = lock(&self.shared.q);
            assert!(!q.shutdown, "submit after shutdown");
            q.jobs.push_back(job);
            // Every parked thread owns one pending wake at most; spawn when
            // the backlog outruns the idle set so no job waits on a busy
            // long-running worker.
            q.idle < q.jobs.len()
        };
        if must_spawn {
            self.spawn_thread();
        }
        self.shared.cv.notify_one();
    }

    /// Threads ever created.
    pub fn threads_spawned(&self) -> u64 {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Jobs ever submitted.
    pub fn jobs_submitted(&self) -> u64 {
        self.shared.submitted.load(Ordering::Relaxed)
    }

    /// Jobs run to completion. Staffing jobs catch worker panics
    /// internally, so for them completed always catches up with submitted;
    /// a lasting gap means jobs are stuck or queued.
    pub fn jobs_completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Fan `tasks` out to the pool and block until every result is in,
    /// returned in task order. Used by the master to parallelize the
    /// fragment-barrier run merge: each task merges one disjoint key
    /// sub-range. Safe to call while worker jobs are in flight — the pool
    /// grows on demand, so gather tasks never queue behind a long-running
    /// staffing job (which could deadlock the barrier).
    ///
    /// # Panics
    /// Re-raises (on the calling thread) the panic of any task that
    /// panicked, after all tasks have settled.
    pub fn scatter_gather<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = tasks.len();
        let (tx, rx) = std::sync::mpsc::channel();
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(Box::new(move || {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                let _ = tx.send((i, out));
            }));
        }
        drop(tx);
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        for (i, out) in rx {
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| match s.expect("every gather task reports") {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    /// Run every queued job to completion, then stop and join all threads.
    pub fn shutdown(&self) {
        lock(&self.shared.q).shutdown = true;
        self.shared.cv.notify_all();
        let handles = std::mem::take(&mut *lock(&self.handles));
        for h in handles {
            // A worker that panicked already reported through its job's
            // catch_unwind wrapper; the thread itself is just done.
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.q);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q.idle += 1;
                q = shared.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                q.idle -= 1;
            }
        };
        match job {
            Some(job) => {
                job();
                shared.completed.fetch_add(1, Ordering::Relaxed);
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkerPool::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let count = count.clone();
            pool.submit(Box::new(move || {
                count.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn grows_past_initial_size_for_long_jobs() {
        // 4 jobs that must all be live at once to finish (a barrier): the
        // pool must grow to at least 4 threads even though it starts at 1.
        let pool = WorkerPool::new(1);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        for _ in 0..4 {
            let barrier = barrier.clone();
            pool.submit(Box::new(move || {
                barrier.wait();
            }));
        }
        pool.shutdown();
        assert!(pool.threads_spawned() >= 4);
        assert_eq!(pool.jobs_submitted(), 4);
        assert_eq!(pool.jobs_completed(), 4);
    }

    #[test]
    fn threads_are_reused_across_waves() {
        let pool = WorkerPool::new(4);
        for _wave in 0..8 {
            let done = Arc::new(AtomicUsize::new(0));
            for _ in 0..4 {
                let done = done.clone();
                pool.submit(Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }));
            }
            while done.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
        }
        // Sequential waves of 4 jobs over 4 pre-spawned threads may grow the
        // pool a little under unlucky scheduling, but must not approach one
        // thread per job (32).
        assert!(pool.threads_spawned() <= 12, "spawned {}", pool.threads_spawned());
        pool.shutdown();
    }

    #[test]
    fn scatter_gather_returns_results_in_task_order() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = pool.scatter_gather(tasks);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn scatter_gather_works_while_long_jobs_occupy_the_pool() {
        // A long-running staffing-style job must not starve the gather
        // (the pool grows on demand).
        let pool = WorkerPool::new(1);
        let release = Arc::new(AtomicUsize::new(0));
        let r = release.clone();
        pool.submit(Box::new(move || {
            while r.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
        }));
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..4u32)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> u32 + Send>)
            .collect();
        let out = pool.scatter_gather(tasks);
        assert_eq!(out, vec![1, 2, 3, 4]);
        release.store(1, Ordering::SeqCst);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let pool = WorkerPool::new(1);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let count = count.clone();
            pool.submit(Box::new(move || {
                count.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 16);
    }
}
