//! Executor observability: measured — not modeled — utilization.
//!
//! The paper's §2.2–2.3 claims are quantitative: pairing an IO-bound with a
//! CPU-bound fragment at the balance point keeps *both* the processors and
//! the disk array saturated, and two interleaved sequential streams degrade
//! the array's bandwidth to `B = Br + (1 − ratio)(Bs − Br)`. The executor
//! previously only *modeled* these effects; this module measures them:
//!
//! * [`ExecMetrics`] — the hot-path registry ([`xprs_obs::Counter`] /
//!   [`xprs_obs::Histogram`]) the [`Machine`](crate::io::Machine) records
//!   into when metrics are enabled (`ExecConfig::obs`). Disabled collection
//!   is an `Option` branch — ~zero cost.
//! * [`UtilSample`] — cumulative machine counters captured by the master at
//!   every scheduling decision; consecutive samples bracket *pairing
//!   windows* during which the set of running fragments was constant.
//! * [`UtilizationAudit`] — per-window measured disk bandwidth, disk
//!   utilization and CPU utilization, compared against the §2.3 corrected
//!   bandwidth prediction for the fragments that were actually co-running,
//!   with the `[Br, Bs]` band the measurement must land in when the array
//!   is saturated by a paired window.
//! * `ExecReport::metrics_json` — the whole report (pool shards, per-disk
//!   per-class service time, event counters, merge shape, per-query
//!   fragment profiles, the audit) rendered as one JSON document, validated
//!   by `scripts/ci.sh`'s `obs` leg.

use xprs_disk::{ClassStats, ServiceClass};
use xprs_obs::json::{fnum, jstr};
use xprs_obs::{Counter, Histogram};
use xprs_scheduler::balance::effective_bandwidth;
use xprs_scheduler::{MachineConfig, TaskId, TaskProfile};

use crate::master::ExecReport;

/// Hot-path metric registry, shared as `Option<Arc<ExecMetrics>>` by the
/// machine and every worker. All members are lock-free; `None` (the
/// default) costs one branch per instrumented site.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Wall nanoseconds each *contended* CPU-gate acquisition waited before
    /// getting a processor permit — the measured cost of over-staffing the
    /// machine. Uncontended grants are zero waits and are not recorded:
    /// `count` is "acquisitions that waited", kept off the hot path so the
    /// obs overhead gate's 2% budget survives (see
    /// [`Machine::compute`](crate::io::Machine::compute)).
    pub gate_wait_ns: Histogram,
    /// Read attempts that failed on an injected transient error and were
    /// retried (each retry re-occupies the disk for a full service time).
    pub io_retries: Counter,
    /// Reads that exhausted every retry and escalated to a typed
    /// [`IoFault`](crate::io::IoFault).
    pub io_faults: Counter,
    /// Fan-out (concurrent key sub-ranges) of each pool-parallel merge; a
    /// sample of 1 is a serial merge on the master.
    pub merge_fanout: Histogram,
    /// Sorted worker runs entering each fragment materialization.
    pub merge_runs: Histogram,
    /// Rows per sorted worker run (the shape `split_runs` has to balance).
    pub merge_run_rows: Histogram,
    /// Heavy-hitter keys detected per run: keys carved across merge ways by
    /// `split_runs_stats` plus keys fanned out by the master's KeyDomain
    /// replication path. Zero on benign key distributions — the skew bench
    /// gates on this being non-zero at Zipf θ = 1.
    pub hot_keys: Counter,
    /// Rows each way of a pool-parallel merge received (the post-split
    /// balance `split_runs_stats` achieved); max/mean of the snapshot are
    /// the way-imbalance figures the skew bench reports.
    pub merge_way_rows: Histogram,
    /// Morsels taken from a victim's deque instead of the worker's own
    /// (the work-stealing path earning its keep). Exact: accumulated in
    /// worker-local integers, flushed to this counter at worker exit.
    pub steals: Counter,
    /// Morsel searches that found every deque empty — the worker retired.
    /// Exact, flushed at worker exit like [`Self::steals`].
    pub steal_fails: Counter,
    /// Wall nanoseconds spent processing one claimed morsel end to end.
    /// *Sampled*: one morsel episode in `MORSEL_SAMPLE` (8) reads the
    /// clock and lands here, so `count` is ~1/8 of the morsels run —
    /// per-morsel clock reads and histogram RMWs on every episode would
    /// blow the obs overhead gate's 2% budget on a single-core host.
    pub morsel_ns: Histogram,
    /// Wall nanoseconds a worker spent in morsel searches that left its
    /// own deque — successful steal sweeps and terminal empty-handed
    /// sweeps. Sampled at the same 1-in-8 episode rate as
    /// [`Self::morsel_ns`]; owner-deque pops are never recorded.
    pub steal_idle_ns: Histogram,
    /// Release-build unpin protocol violations the pool absorbed instead
    /// of panicking ([`xprs_storage::UnpinError`]): a `finish_read` for a
    /// page that was concurrently evicted-and-reloaded unpinned, or a
    /// double release under a spill/retry race. Debug builds still assert;
    /// in release this counter is the only trace the anomaly leaves.
    pub unpin_anomalies: Counter,
    /// Fragments whose observed page footprint (reads, pool hits included)
    /// exceeded the pages their declared `TaskProfile::memory` implied.
    /// Detection only — nothing is throttled or failed; the counter makes
    /// estimate drift visible to the service operator.
    pub mem_overruns: Counter,
    /// Fragment announcements whose declared profile was replaced by a
    /// warm predictor model ([`xprs_scheduler::predict`]) before the
    /// policy saw it — the prediction layer provably driving decisions.
    pub predictions: Counter,
    /// Announcements a predictor was attached for but fell back to the
    /// declared prior (cold key, too few observations, degenerate model).
    pub prediction_fallbacks: Counter,
}

/// How one fragment's output was materialized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeProfile {
    /// Sorted worker runs harvested (1 flat batch on the legacy path).
    pub runs: u64,
    /// Rows materialized.
    pub rows: u64,
    /// Merge fan-out actually used (1 = serial merge).
    pub ways: u64,
    /// Whether the merge was farmed to the worker pool.
    pub parallel: bool,
    /// Heavy-hitter keys detected in this materialization (carved across
    /// merge ways and/or fanned out by the KeyDomain replication path).
    pub hot_keys: u64,
    /// Rows in the heaviest merge way (0 when the merge was serial).
    pub way_rows_max: u64,
    /// Mean rows per merge way, rounded down (0 when serial).
    pub way_rows_mean: u64,
}

/// What one fragment did, captured at its completion.
#[derive(Debug, Clone)]
pub struct FragmentProfile {
    /// The fragment's scheduler task id.
    pub task: TaskId,
    /// Query index in the submitted batch.
    pub query: usize,
    /// Whether this fragment produced the query's final output.
    pub is_root: bool,
    /// Wall seconds from run start to fragment start / finish.
    pub started_at: f64,
    /// Wall seconds from run start to fragment finish.
    pub finished_at: f64,
    /// Work units (pages or keys) the fragment completed.
    pub units: u64,
    /// Worker jobs staffed over the fragment's life (initial staffing,
    /// adjustment growth, patrol replacements).
    pub staffed: u64,
    /// Parallelism adjustments applied while running.
    pub adjusts: u64,
    /// Heartbeat ticks its workers recorded (startup + one per unit).
    pub heartbeats: u64,
    /// How its output was materialized.
    pub merge: MergeProfile,
    /// Pages its workers actually read — buffer-pool hits and re-reads
    /// after eviction included, so an *upper bound* on the working set.
    pub observed_pages: u64,
    /// Pages its declared `TaskProfile::memory` implied (0 = undeclared).
    /// `observed_pages > declared_pages` marks an estimate overrun; see
    /// `ExecReport::footprint_overruns`.
    pub declared_pages: u64,
}

/// Per-query rollup of [`FragmentProfile`]s, in submission order.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Query index in the submitted batch.
    pub query: usize,
    /// Wall seconds from run start to the root fragment's completion.
    pub finished_at: f64,
    /// Rows the root fragment materialized.
    pub rows: u64,
    /// Whether the query's cancel token fired before its root completed.
    pub cancelled: bool,
    /// The query's fragments, in fragment order.
    pub fragments: Vec<FragmentProfile>,
}

/// One fragment observed running at a sample instant.
#[derive(Debug, Clone)]
pub struct RunningInfo {
    /// The fragment's scheduler task id.
    pub task: TaskId,
    /// Workers currently assigned.
    pub workers: u32,
    /// The fragment's cost profile (rates feed the §2.3 prediction).
    pub profile: TaskProfile,
}

/// Cumulative machine counters at one instant. Taken by the master after
/// every scheduling decision, so consecutive samples bracket windows during
/// which the running set — the *pairing* — was constant.
#[derive(Debug, Clone)]
pub struct UtilSample {
    /// Wall seconds since run start.
    pub now: f64,
    /// Fragments running (with applied parallelism) at this instant.
    pub running: Vec<RunningInfo>,
    /// Per-class disk requests and busy time, merged over the array.
    pub disk: ClassStats,
    /// Simulated CPU seconds consumed so far.
    pub cpu_busy: f64,
    /// Page reads issued so far (pool hits included).
    pub reads: u64,
}

/// One pairing window of the audit: what ran, what the array measurably
/// delivered, and what §2.2–2.3 predicted it would.
#[derive(Debug, Clone)]
pub struct AuditWindow {
    /// Window start/end, wall seconds since run start.
    pub t0: f64,
    /// Window end.
    pub t1: f64,
    /// `(task, workers)` for each fragment running through the window.
    pub tasks: Vec<(TaskId, u32)>,
    /// ≥ 2 fragments co-ran: an inter-operation pairing window.
    pub paired: bool,
    /// Disk requests served inside the window.
    pub requests: u64,
    /// Measured aggregate disk bandwidth (simulated I/Os per simulated
    /// second) inside the window.
    pub measured_bw: f64,
    /// Fraction of the window the disks were busy (1.0 = saturated array).
    pub disk_util: f64,
    /// Fraction of the window the processors were busy.
    pub cpu_util: f64,
    /// §2.3's corrected effective bandwidth for the window's demand mix:
    /// `B = Br + (1 − ratio)(Bs − Br)` for two sequential streams.
    pub predicted_bw: f64,
}

/// Audit over all pairing windows of a run.
#[derive(Debug, Clone)]
pub struct UtilizationAudit {
    /// `Br`: the array's aggregate random bandwidth (the band floor).
    pub band_lo: f64,
    /// `Bs`: the aggregate (almost-)sequential bandwidth (the band ceiling).
    pub band_hi: f64,
    /// All windows with nonzero wall span, in time order.
    pub windows: Vec<AuditWindow>,
    /// Aggregate measured bandwidth over paired windows (weighted by
    /// simulated time), `0.0` when no paired window carried traffic.
    pub paired_bw: f64,
    /// Requests served inside paired windows.
    pub paired_requests: u64,
    /// Time-weighted mean disk utilization over paired windows.
    pub paired_disk_util: f64,
    /// Time-weighted mean CPU utilization over paired windows.
    pub paired_cpu_util: f64,
    /// Whether `paired_bw` landed inside `[Br, Bs]` (5% slack per side for
    /// timing jitter). Meaningless — `false` — without paired traffic.
    pub paired_in_band: bool,
}

/// Minimum disk requests before a window's bandwidth estimate is trusted in
/// the paired aggregate (tiny windows measure scheduling noise).
const AUDIT_MIN_REQUESTS: u64 = 16;

/// Band slack for [`UtilizationAudit::paired_in_band`]: scaled-time sleeps
/// round up to OS timer granularity, so measurements sit a few percent off
/// the ideal band edges.
const BAND_SLACK: f64 = 0.05;

/// Compute the audit from a run's samples. `scale` is wall seconds per
/// simulated second; with `scale == 0` (unthrottled) there is no simulated
/// clock to measure against, so the audit reports the band and no windows.
pub fn audit_samples(samples: &[UtilSample], machine: &MachineConfig, scale: f64) -> UtilizationAudit {
    let band_lo = machine.total_random_bandwidth();
    let band_hi = machine.total_bandwidth();
    let mut audit = UtilizationAudit {
        band_lo,
        band_hi,
        windows: Vec::new(),
        paired_bw: 0.0,
        paired_requests: 0,
        paired_disk_util: 0.0,
        paired_cpu_util: 0.0,
        paired_in_band: false,
    };
    if scale <= 0.0 {
        return audit;
    }
    let (mut paired_req, mut paired_sim) = (0u64, 0.0f64);
    let (mut paired_busy, mut paired_cpu) = (0.0f64, 0.0f64);
    for pair in samples.windows(2) {
        let (s0, s1) = (&pair[0], &pair[1]);
        let wall_dt = s1.now - s0.now;
        if wall_dt <= 1e-9 {
            continue;
        }
        let sim_dt = wall_dt / scale;
        let disk = s1.disk.diff(&s0.disk);
        let requests = disk.total_count();
        let demands: Vec<(f64, xprs_scheduler::IoKind)> = s0
            .running
            .iter()
            .map(|r| (r.profile.io_rate * f64::from(r.workers), r.profile.io_kind))
            .collect();
        let w = AuditWindow {
            t0: s0.now,
            t1: s1.now,
            tasks: s0.running.iter().map(|r| (r.task, r.workers)).collect(),
            paired: s0.running.len() >= 2,
            requests,
            measured_bw: requests as f64 / sim_dt,
            disk_util: disk.total_busy() / (f64::from(machine.n_disks) * sim_dt),
            cpu_util: (s1.cpu_busy - s0.cpu_busy).max(0.0) / (f64::from(machine.n_procs) * sim_dt),
            predicted_bw: effective_bandwidth(machine, &demands),
        };
        if w.paired && requests >= AUDIT_MIN_REQUESTS {
            paired_req += requests;
            paired_sim += sim_dt;
            paired_busy += w.disk_util * sim_dt;
            paired_cpu += w.cpu_util * sim_dt;
        }
        audit.windows.push(w);
    }
    if paired_sim > 0.0 {
        audit.paired_bw = paired_req as f64 / paired_sim;
        audit.paired_requests = paired_req;
        audit.paired_disk_util = paired_busy / paired_sim;
        audit.paired_cpu_util = paired_cpu / paired_sim;
        audit.paired_in_band = audit.paired_bw >= band_lo * (1.0 - BAND_SLACK)
            && audit.paired_bw <= band_hi * (1.0 + BAND_SLACK);
    }
    audit
}

fn machine_json(m: &MachineConfig) -> String {
    format!(
        "{{\"n_procs\":{},\"n_disks\":{},\"seq_bw\":{},\"almost_seq_bw\":{},\"random_bw\":{}}}",
        m.n_procs,
        m.n_disks,
        fnum(m.seq_bw),
        fnum(m.almost_seq_bw),
        fnum(m.random_bw)
    )
}

fn class_stats_json(c: &ClassStats) -> String {
    let field = |class: ServiceClass| {
        format!("{{\"count\":{},\"busy\":{}}}", c.count_of(class), fnum(c.busy_of(class)))
    };
    format!(
        "{{\"sequential\":{},\"almost_sequential\":{},\"random\":{}}}",
        field(ServiceClass::Sequential),
        field(ServiceClass::AlmostSequential),
        field(ServiceClass::Random)
    )
}

fn merge_json(m: &MergeProfile) -> String {
    format!(
        "{{\"runs\":{},\"rows\":{},\"ways\":{},\"parallel\":{},\"hot_keys\":{},\
         \"way_rows_max\":{},\"way_rows_mean\":{}}}",
        m.runs, m.rows, m.ways, m.parallel, m.hot_keys, m.way_rows_max, m.way_rows_mean
    )
}

fn audit_json(a: &UtilizationAudit) -> String {
    let windows: Vec<String> = a
        .windows
        .iter()
        .map(|w| {
            let tasks: Vec<String> =
                w.tasks.iter().map(|(t, x)| format!("[{},{}]", t.0, x)).collect();
            format!(
                "{{\"t0\":{},\"t1\":{},\"tasks\":[{}],\"paired\":{},\"requests\":{},\
                 \"measured_bw\":{},\"disk_util\":{},\"cpu_util\":{},\"predicted_bw\":{}}}",
                fnum(w.t0),
                fnum(w.t1),
                tasks.join(","),
                w.paired,
                w.requests,
                fnum(w.measured_bw),
                fnum(w.disk_util),
                fnum(w.cpu_util),
                fnum(w.predicted_bw)
            )
        })
        .collect();
    format!(
        "{{\"band\":[{},{}],\"paired_bw\":{},\"paired_requests\":{},\"paired_disk_util\":{},\
         \"paired_cpu_util\":{},\"paired_in_band\":{},\"windows\":[{}]}}",
        fnum(a.band_lo),
        fnum(a.band_hi),
        fnum(a.paired_bw),
        a.paired_requests,
        fnum(a.paired_disk_util),
        fnum(a.paired_cpu_util),
        a.paired_in_band,
        windows.join(",")
    )
}

impl ExecReport {
    /// The run's utilization audit, computed from the pairing-window
    /// samples the master collected.
    pub fn utilization_audit(&self) -> UtilizationAudit {
        audit_samples(&self.samples, &self.machine, self.scale)
    }

    /// Render the whole report as one JSON document (`metrics.json`).
    ///
    /// Always available — the structural counters (pool shards, per-disk
    /// class stats, fragment profiles, the audit) are collected on cold
    /// paths regardless of `ExecConfig::obs`; the hot-path sections
    /// (`gate_wait_ns`, `io`, `merge_hist`) are `null` when metrics were
    /// disabled.
    pub fn metrics_json(&self) -> String {
        let pool_total = self.stats.pool;
        let shards: Vec<String> = self
            .pool_shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"bypasses\":{}}}",
                    s.hits, s.misses, s.evictions, s.bypasses
                )
            })
            .collect();
        let disks: Vec<String> = self.disk_classes.iter().map(class_stats_json).collect();
        let queries: Vec<String> = self
            .profiles
            .iter()
            .map(|q| {
                let frags: Vec<String> = q
                    .fragments
                    .iter()
                    .map(|f| {
                        format!(
                            "{{\"task\":{},\"is_root\":{},\"started_at\":{},\"finished_at\":{},\
                             \"units\":{},\"staffed\":{},\"adjusts\":{},\"heartbeats\":{},\
                             \"merge\":{},\"observed_pages\":{},\"declared_pages\":{}}}",
                            f.task.0,
                            f.is_root,
                            fnum(f.started_at),
                            fnum(f.finished_at),
                            f.units,
                            f.staffed,
                            f.adjusts,
                            f.heartbeats,
                            merge_json(&f.merge),
                            f.observed_pages,
                            f.declared_pages
                        )
                    })
                    .collect();
                format!(
                    "{{\"query\":{},\"finished_at\":{},\"rows\":{},\"cancelled\":{},\
                     \"fragments\":[{}]}}",
                    q.query,
                    fnum(q.finished_at),
                    q.rows,
                    q.cancelled,
                    frags.join(",")
                )
            })
            .collect();
        let (gate, io, merge_hist, morsel) = match &self.metrics {
            Some(m) => (
                m.gate_wait_ns.snapshot().to_json(),
                format!(
                    "{{\"retries\":{},\"faults\":{},\"unpin_anomalies\":{}}}",
                    m.io_retries.get(),
                    m.io_faults.get(),
                    m.unpin_anomalies.get()
                ),
                format!(
                    "{{\"fanout\":{},\"runs\":{},\"run_rows\":{},\"hot_keys\":{},\
                     \"way_rows\":{}}}",
                    m.merge_fanout.snapshot().to_json(),
                    m.merge_runs.snapshot().to_json(),
                    m.merge_run_rows.snapshot().to_json(),
                    m.hot_keys.get(),
                    m.merge_way_rows.snapshot().to_json()
                ),
                format!(
                    "{{\"steals\":{},\"steal_fails\":{},\"morsel_ns\":{},\"steal_idle_ns\":{}}}",
                    m.steals.get(),
                    m.steal_fails.get(),
                    m.morsel_ns.snapshot().to_json(),
                    m.steal_idle_ns.snapshot().to_json()
                ),
            ),
            None => {
                let null = || "null".to_string();
                (null(), null(), null(), null())
            }
        };
        format!(
            "{{\"schema\":{},\"machine\":{},\"scale\":{},\"wall\":{},\"reads\":{},\
             \"cpu_busy\":{},\
             \"pool\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"bypasses\":{},\
             \"fetches\":{},\"hit_rate\":{},\"shards\":[{}]}},\
             \"disks\":[{}],\
             \"events\":{{\"staffed\":{},\"adjusts\":{},\"heartbeats\":{},\"patrol_ticks\":{},\
             \"recoveries\":{},\"recalibrations\":{},\"pool_threads\":{}}},\
             \"memory\":{{\"granted_pages\":{},\"released_pages\":{},\"grant_waits\":{},\
             \"spill_chunks\":{},\"spill_rows\":{},\"pinned_at_exit\":{},\
             \"footprint_overruns\":{}}},\
             \"predict\":{{\"substitutions\":{},\"fallbacks\":{}}},\
             \"gate_wait_ns\":{},\"io\":{},\"merge\":{},\"morsel\":{},\
             \"queries\":[{}],\"utilization_audit\":{}}}",
            jstr("xprs-metrics/1"),
            machine_json(&self.machine),
            fnum(self.scale),
            fnum(self.wall),
            self.stats.reads,
            fnum(self.cpu_busy),
            pool_total.hits,
            pool_total.misses,
            pool_total.evictions,
            pool_total.bypasses,
            pool_total.fetches(),
            fnum(pool_total.hit_rate()),
            shards.join(","),
            disks.join(","),
            self.pool_jobs,
            self.adjusts,
            self.heartbeats,
            self.patrol_ticks,
            self.worker_recoveries,
            self.recalibrations,
            self.pool_threads,
            self.mem_granted_pages,
            self.mem_released_pages,
            self.mem_grant_waits,
            self.spill_chunks,
            self.spill_rows,
            self.pool_pinned_at_exit,
            self.footprint_overruns,
            self.metrics.as_ref().map_or(0, |m| m.predictions.get()),
            self.metrics.as_ref().map_or(0, |m| m.prediction_fallbacks.get()),
            gate,
            io,
            merge_hist,
            morsel,
            queries.join(","),
            audit_json(&self.utilization_audit())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xprs_scheduler::IoKind;

    fn prof(id: u64, io_rate: f64) -> TaskProfile {
        TaskProfile::new(TaskId(id), 10.0, io_rate, IoKind::Sequential)
    }

    fn sample(now: f64, running: Vec<RunningInfo>, reqs: u64, busy: f64, cpu: f64) -> UtilSample {
        UtilSample {
            now,
            running,
            disk: ClassStats { counts: [0, reqs, 0], busy: [0.0, busy, 0.0] },
            cpu_busy: cpu,
            reads: reqs,
        }
    }

    #[test]
    fn audit_is_empty_without_a_time_scale() {
        let m = MachineConfig::paper_default();
        let s = vec![sample(0.0, vec![], 0, 0.0, 0.0), sample(1.0, vec![], 100, 0.5, 0.5)];
        let a = audit_samples(&s, &m, 0.0);
        assert!(a.windows.is_empty());
        assert_eq!(a.band_lo, 140.0);
        assert_eq!(a.band_hi, 240.0);
    }

    #[test]
    fn paired_window_bandwidth_and_utilization() {
        let m = MachineConfig::paper_default();
        // scale 0.1: a 1-second wall window is 10 simulated seconds.
        // 1800 requests / 10 s = 180 io/s — inside [140, 240]. Disks busy
        // 38 of the 40 disk-seconds, CPU busy 40 of 80 proc-seconds.
        let running = vec![
            RunningInfo { task: TaskId(1), workers: 3, profile: prof(1, 60.0) },
            RunningInfo { task: TaskId(2), workers: 5, profile: prof(2, 10.0) },
        ];
        let s = vec![
            sample(0.0, running, 0, 0.0, 0.0),
            sample(1.0, vec![], 1800, 38.0, 40.0),
        ];
        let a = audit_samples(&s, &m, 0.1);
        assert_eq!(a.windows.len(), 1);
        let w = &a.windows[0];
        assert!(w.paired);
        assert!((w.measured_bw - 180.0).abs() < 1e-9);
        assert!((w.disk_util - 0.95).abs() < 1e-9);
        assert!((w.cpu_util - 0.5).abs() < 1e-9);
        // Two sequential streams at demands 180 vs 50: §2.3 interpolates
        // strictly inside the band.
        assert!(w.predicted_bw > 140.0 && w.predicted_bw < 240.0);
        assert!((a.paired_bw - 180.0).abs() < 1e-9);
        assert!(a.paired_in_band);
    }

    #[test]
    fn solo_and_empty_windows_stay_out_of_the_paired_aggregate() {
        let m = MachineConfig::paper_default();
        let solo = vec![RunningInfo { task: TaskId(1), workers: 8, profile: prof(1, 60.0) }];
        let s = vec![
            sample(0.0, solo, 0, 0.0, 0.0),
            sample(1.0, vec![], 3000, 39.0, 10.0),
        ];
        let a = audit_samples(&s, &m, 0.1);
        assert_eq!(a.windows.len(), 1);
        assert!(!a.windows[0].paired);
        assert_eq!(a.paired_requests, 0);
        assert!(!a.paired_in_band);
        // Solo sequential stream: §2.3 predicts the full band ceiling.
        assert_eq!(a.windows[0].predicted_bw, 240.0);
    }
}
