//! Morsel-driven work stealing (the lock-light successor to the §2.4
//! static shares).
//!
//! The fragment's unit space `[0, total_units)` is cut into fixed-size
//! [`Morsel`]s which are dealt round-robin into per-worker deques — the
//! morsel-granular analogue of the §2.4 residue-class shares, which keeps
//! the deal's per-disk access pattern close to the static path's (a
//! contiguous block deal measurably degrades the striped disks' service
//! classification). A worker takes its next morsel from the front of its
//! own deque; when that runs dry it steals the back half of a victim's
//! *pending* morsels, visiting victims in a seeded deterministic order. Within a claimed morsel the
//! worker claims units one at a time on a **private atomic** — no lock, no
//! shared cursor — so the per-unit hot path costs one uncontended RMW where
//! the static-share path paid one fragment-global mutex round.
//!
//! Two rules keep the initial deal meaningful: the grain is clamped so a
//! fragment with at least `parallelism` units deals at least one morsel to
//! every slot, and a thief never takes the *last* pending morsel of a slot
//! that has not begun working. Together they guarantee every staffed slot
//! processes at least one unit of a large-enough fragment — first-touch
//! stays local, and per-slot fault-injection points (`kill slot s after
//! k units`) remain deterministic under stealing.
//!
//! # Exactly-once under revocation
//!
//! All deque traffic (take, steal, [`StealPartition::fail_slot`],
//! [`StealPartition::adjust`]) serializes on one coordinator latch taken
//! once per *morsel*, not per unit — lock-light by amortization. The
//! per-slot claim word packs `(revoked, end, cursor)` into one `AtomicU64`;
//! the owner advances `cursor` with a CAS loop and revocation sets the
//! `REVOKED` bit with `fetch_or` while holding the latch. Because both are
//! RMWs on the same word, the hardware totally orders them: every unit
//! index is observed exactly once, either by the owner (cursor advanced
//! before revocation landed) or by the reclaimer (the remainder
//! `[cursor, end)` read back from the `fetch_or`). A falsely-declared-dead
//! worker — stalled, not dead — therefore finishes the units it already
//! claimed and retires at its next claim; the replacement starts exactly
//! where the revocation cursor stood, and no unit is processed twice or
//! dropped. This is the morsel-granular analogue of the static path's
//! "cursor advances at claim time" argument.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xprs_storage::partition::{morselize, AdjustInfo, Morsel};

use crate::io::lock;

/// Claim-word revocation bit. The low 32 bits hold the cursor, the next 31
/// the in-flight morsel's end, so `total_units` must fit in 31 bits (the
/// master falls back to static shares otherwise).
const REVOKED: u64 = 1 << 63;

/// Largest unit count the packed claim word can address.
pub const MAX_STEAL_UNITS: u64 = 1 << 31;

fn pack(cursor: u64, end: u64) -> u64 {
    debug_assert!(cursor <= end && end < MAX_STEAL_UNITS);
    (end << 32) | cursor
}

fn unpack(word: u64) -> (u64, u64) {
    (word & 0xFFFF_FFFF, (word >> 32) & (MAX_STEAL_UNITS - 1))
}

/// One worker slot's share of the deque layer.
struct SlotState {
    /// Morsels dealt or stolen to this slot but not yet begun. Owned from
    /// the front, stolen from the back.
    pending: VecDeque<Morsel>,
    /// The packed `(revoked, end, cursor)` claim word; shared with the
    /// owning worker's unit fast path.
    claim: Arc<AtomicU64>,
    /// A revoked slot hands out no further morsels (its pending work has
    /// moved elsewhere) and its owner retires at the next claim.
    revoked: bool,
    /// Set once the slot's owner takes its first morsel. Until then thieves
    /// leave the slot its last pending morsel (the first-morsel guarantee).
    started: bool,
    /// Start unit of the last morsel this slot armed; the disk-affinity
    /// steal pass prefers victims whose stealable work begins on the same
    /// disk residue (`unit % n_disks`).
    last_unit: Option<u64>,
}

impl SlotState {
    fn fresh(pending: VecDeque<Morsel>) -> Self {
        SlotState {
            pending,
            claim: Arc::new(AtomicU64::new(0)),
            revoked: false,
            started: false,
            last_unit: None,
        }
    }
}

/// A morsel handed to a worker, with its provenance (for steal counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextMorsel {
    /// The claimed morsel; its units are now claimable on the slot's word.
    pub morsel: Morsel,
    /// Victim slot the morsel was stolen from (`None` = own deque).
    pub stolen_from: Option<usize>,
}

/// Work-stealing morsel partition for one fragment.
pub struct StealPartition {
    inner: Mutex<Vec<SlotState>>,
    seed: u64,
    total_units: u64,
    /// Disks under the unit space (`unit % n_disks` = home disk, matching
    /// [`xprs_disk::StripedLayout::disk_of`]). `0` or `1` disables the
    /// affinity steal pass.
    n_disks: u32,
}

impl StealPartition {
    /// Deal `[0, total_units)` in morsels of `morsel_units` round-robin
    /// over `parallelism` slots. The grain is clamped to
    /// `floor(total / parallelism)` so a fragment with at least
    /// `parallelism` units deals every slot at least one morsel
    /// (`ceil` would not: 28 units over 8 slots at grain `ceil = 4` is
    /// only 7 morsels); fragments smaller than the slot count fall to
    /// grain 1 to spread what little there is. `seed` fixes the victim
    /// order for deterministic tests.
    ///
    /// # Panics
    /// Panics if `total_units >= MAX_STEAL_UNITS` (the claim word cannot
    /// address it; callers fall back to static shares first).
    pub fn new(total_units: u64, morsel_units: u64, parallelism: u32, seed: u64) -> Self {
        assert!(total_units < MAX_STEAL_UNITS, "unit space too large for the claim word");
        let n = parallelism.max(1) as usize;
        let grain = morsel_units.min(total_units / n as u64).max(1);
        let mut slots: Vec<SlotState> =
            (0..n).map(|_| SlotState::fresh(VecDeque::new())).collect();
        for (i, m) in morselize(total_units, grain).into_iter().enumerate() {
            slots[i % n].pending.push_back(m);
        }
        StealPartition { inner: Mutex::new(slots), seed, total_units, n_disks: 0 }
    }

    /// Enable disk-affine victim selection for a page-scan fragment over a
    /// striped array of `n_disks` disks: instead of taking the first
    /// victim in the seeded rotation, an idle worker scores every victim's
    /// would-be morsel by *(lands off the thief's current disk?, block
    /// distance from the thief's last unit)* and steals the minimum — a
    /// same-disk continuation when one exists, the shortest seek jump
    /// otherwise.
    ///
    /// A blind steal teleports the thief to an arbitrary victim's tail:
    /// the jump degrades the stripe's sequential service class on both the
    /// abandoned and the invaded disk — the measured ~13% uniform-scan
    /// regression vs the static shares. Affine selection keeps the steal's
    /// rescue property (work still moves to idle workers) while paying the
    /// smallest available seek penalty for it.
    pub fn with_disks(mut self, n_disks: u32) -> Self {
        self.n_disks = n_disks;
        self
    }

    /// Total units in the fragment.
    pub fn total_units(&self) -> u64 {
        self.total_units
    }

    /// The claim word `slot`'s owner uses for its per-unit fast path.
    pub fn claim_of(&self, slot: usize) -> Arc<AtomicU64> {
        lock(&self.inner)[slot].claim.clone()
    }

    /// Begin the slot's next morsel: own deque first, then steal the back
    /// half of the first victim (in seeded order) with pending work. On
    /// success the slot's claim word is armed with the morsel's range.
    /// `None` means the slot is revoked or no pending morsel exists
    /// anywhere — the worker retires.
    pub fn next_morsel(&self, slot: usize) -> Option<NextMorsel> {
        let mut slots = lock(&self.inner);
        if slots[slot].revoked {
            return None;
        }
        if let Some(m) = slots[slot].pending.pop_front() {
            slots[slot].started = true;
            slots[slot].last_unit = Some(m.start);
            arm(&slots[slot], m);
            return Some(NextMorsel { morsel: m, stolen_from: None });
        }
        let n = slots.len();
        // Disk-affine selection: score every victim's would-be morsel by
        // (off-thief's-disk?, block distance from the thief's last unit)
        // and take the minimum — stay on the disk the thief was streaming
        // when possible, and jump as short a seek as possible otherwise.
        // Ties resolve to the seeded rotation's first, keeping replay
        // determinism.
        if self.n_disks > 1 {
            if let Some(last) = slots[slot].last_unit {
                let want = last % u64::from(self.n_disks);
                let mut best: Option<((u64, u64), usize)> = None;
                for victim in victim_order(self.seed, slot, n) {
                    let Some(c) = steal_candidate(&slots, victim) else { continue };
                    let off_disk = u64::from(c.start % u64::from(self.n_disks) != want);
                    let key = (off_disk, c.start.abs_diff(last));
                    if best.is_none_or(|(k, _)| key < k) {
                        best = Some((key, victim));
                    }
                }
                if let Some((_, victim)) = best {
                    let m = steal_from(&mut slots, slot, victim).expect("candidate verified");
                    slots[slot].last_unit = Some(m.start);
                    arm(&slots[slot], m);
                    return Some(NextMorsel { morsel: m, stolen_from: Some(victim) });
                }
                return None;
            }
        }
        // Blind fallback — no disk mapping, or the thief never armed a
        // morsel: first victim in the seeded rotation with stealable work.
        for victim in victim_order(self.seed, slot, n) {
            let Some(m) = steal_from(&mut slots, slot, victim) else { continue };
            slots[slot].last_unit = Some(m.start);
            arm(&slots[slot], m);
            return Some(NextMorsel { morsel: m, stolen_from: Some(victim) });
        }
        None
    }

    /// Revoke `slot` (presumed dead), reclaim its *unclaimed* work — the
    /// in-flight remainder `[cursor, end)` plus every pending morsel — into
    /// a fresh replacement slot, and return the replacement's index.
    ///
    /// Units the owner claimed before the revocation landed stay its
    /// responsibility: a stalled false positive finishes them and reports
    /// them itself, which is exactly what keeps the ledger exactly-once.
    pub fn fail_slot(&self, dead: usize) -> usize {
        let mut slots = lock(&self.inner);
        let mut reclaimed = VecDeque::new();
        let already = slots[dead].revoked;
        slots[dead].revoked = true;
        let prev = slots[dead].claim.fetch_or(REVOKED, Ordering::SeqCst);
        if !already && prev & REVOKED == 0 {
            let (cursor, end) = unpack(prev);
            if cursor < end {
                reclaimed.push_back(Morsel { start: cursor, end });
            }
        }
        reclaimed.append(&mut slots[dead].pending);
        slots.push(SlotState::fresh(reclaimed));
        slots.len() - 1
    }

    /// Revoke **every** slot and discard all unclaimed work — per-query
    /// cancellation. Each claim word takes the `REVOKED` bit, so a worker
    /// mid-steal (or mid-morsel) loses its next `claim_unit` CAS and drains
    /// at the very next unit boundary; units already claimed before the bit
    /// landed stay the claimant's responsibility and are finished and
    /// reported, exactly as with [`StealPartition::fail_slot`] — the
    /// completion ledger never double-counts or loses a unit, the forfeited
    /// remainder is simply never handed out again.
    pub fn revoke_all(&self) {
        let mut slots = lock(&self.inner);
        for s in slots.iter_mut() {
            s.revoked = true;
            s.claim.fetch_or(REVOKED, Ordering::SeqCst);
            s.pending.clear();
        }
    }

    /// Adjust to `new_parallelism` active slots. Growing adds empty slots
    /// (they immediately steal); shrinking revokes the highest-numbered
    /// active slots and redistributes their unclaimed work round-robin
    /// over the survivors. Mirrors the §2.4 protocols' contract: the
    /// returned `new_slots` need staffing, `retiring_slots` drain at their
    /// next claim.
    pub fn adjust(&self, new_parallelism: u32) -> AdjustInfo {
        let mut slots = lock(&self.inner);
        let want = new_parallelism.max(1) as usize;
        let active: Vec<usize> =
            (0..slots.len()).filter(|&s| !slots[s].revoked).collect();
        let mut info = AdjustInfo { new_slots: Vec::new(), retiring_slots: Vec::new() };
        if active.len() < want {
            for _ in active.len()..want {
                slots.push(SlotState::fresh(VecDeque::new()));
                info.new_slots.push(slots.len() - 1);
            }
            return info;
        }
        if active.len() == want {
            return info;
        }
        let (survivors, retiring) = active.split_at(want);
        let mut orphaned = VecDeque::new();
        for &slot in retiring {
            slots[slot].revoked = true;
            let prev = slots[slot].claim.fetch_or(REVOKED, Ordering::SeqCst);
            if prev & REVOKED == 0 {
                let (cursor, end) = unpack(prev);
                if cursor < end {
                    orphaned.push_back(Morsel { start: cursor, end });
                }
            }
            let mut pending = std::mem::take(&mut slots[slot].pending);
            orphaned.append(&mut pending);
            info.retiring_slots.push(slot);
        }
        for (i, m) in orphaned.into_iter().enumerate() {
            slots[survivors[i % survivors.len()]].pending.push_back(m);
        }
        info
    }

    /// Slots not yet revoked (the master re-staffs exited slots that are
    /// still active after an adjustment).
    pub fn active_slots(&self) -> Vec<usize> {
        let slots = lock(&self.inner);
        (0..slots.len()).filter(|&s| !slots[s].revoked).collect()
    }

    /// Active slot count.
    pub fn parallelism(&self) -> u32 {
        self.active_slots().len() as u32
    }

    /// Total slots ever created (including revoked ones).
    pub fn n_slots(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Units sitting in pending morsels (excludes in-flight remainders);
    /// for tests and diagnostics.
    pub fn pending_units(&self) -> u64 {
        lock(&self.inner)
            .iter()
            .flat_map(|s| s.pending.iter())
            .map(Morsel::len)
            .sum()
    }

    /// Claim the next unit of the slot's in-flight morsel. Lock-free: one
    /// CAS on the slot's private word. `None` means the morsel is
    /// exhausted *or* the slot was revoked — either way the worker goes
    /// back to [`StealPartition::next_morsel`], which settles the question
    /// under the latch.
    pub fn claim_unit(claim: &AtomicU64) -> Option<u64> {
        claim
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |word| {
                if word & REVOKED != 0 {
                    return None;
                }
                let (cursor, end) = unpack(word);
                (cursor < end).then(|| pack(cursor + 1, end))
            })
            .ok()
            .map(|prev| prev & 0xFFFF_FFFF)
    }
}

/// Arm the slot's claim word for a freshly taken morsel. Caller holds the
/// latch and has checked `revoked == false`, and revocation only happens
/// under the same latch, so a plain store cannot clobber a REVOKED bit.
fn arm(slot: &SlotState, m: Morsel) {
    slot.claim.store(pack(m.start, m.end), Ordering::SeqCst);
}

/// The morsel a thief *would* receive from `victim` — the front of the
/// stolen back half — without committing the steal. `None` when nothing is
/// stealable (empty, or an unstarted owner's guaranteed first morsel).
fn steal_candidate(slots: &[SlotState], victim: usize) -> Option<Morsel> {
    let len = slots[victim].pending.len();
    let stealable = if slots[victim].started { len } else { len.saturating_sub(1) };
    if stealable == 0 {
        return None;
    }
    Some(slots[victim].pending[len - stealable.div_ceil(2)])
}

/// Steal the back half of `victim`'s pending morsels (round up, so a lone
/// stealable morsel moves) into `thief`'s deque and hand back the first of
/// them. A victim that hasn't begun keeps its last pending morsel (the
/// first-morsel guarantee); otherwise everything pending is fair game.
fn steal_from(slots: &mut [SlotState], thief: usize, victim: usize) -> Option<Morsel> {
    let len = slots[victim].pending.len();
    let stealable = if slots[victim].started { len } else { len.saturating_sub(1) };
    if stealable == 0 {
        return None;
    }
    let tail = slots[victim].pending.split_off(len - stealable.div_ceil(2));
    slots[thief].pending = tail;
    let m = slots[thief].pending.pop_front().expect("stole at least one");
    slots[thief].started = true;
    Some(m)
}

/// The victim visit order for `slot` among `n` slots: every other slot
/// exactly once, rotated by a seed-and-slot-dependent offset so different
/// workers fan out over different victims but any fixed seed replays the
/// same order.
fn victim_order(seed: u64, slot: usize, n: usize) -> impl Iterator<Item = usize> {
    let offset = if n == 0 {
        0
    } else {
        (seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize % n
    };
    (1..=n).map(move |k| (slot + offset + k) % n).filter(move |&v| v != slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Drain every slot round-robin (claim a unit, else take a morsel) and
    /// record who processed what.
    fn drain(p: &StealPartition) -> Vec<u64> {
        let mut seen = Vec::new();
        let mut claims: Vec<_> = (0..p.n_slots()).map(|s| Some(p.claim_of(s))).collect();
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (slot, entry) in claims.iter_mut().enumerate() {
                let Some(claim) = entry else { continue };
                if let Some(u) = StealPartition::claim_unit(claim) {
                    seen.push(u);
                    progressed = true;
                } else if p.next_morsel(slot).is_some() {
                    progressed = true;
                } else {
                    *entry = None;
                }
            }
        }
        seen
    }

    #[test]
    fn every_unit_claimed_exactly_once() {
        for (total, grain, workers) in [(100u64, 8u64, 4u32), (17, 5, 3), (7, 100, 2), (0, 4, 4)] {
            let p = StealPartition::new(total, grain, workers, 42);
            let mut seen = drain(&p);
            seen.sort_unstable();
            assert_eq!(seen, (0..total).collect::<Vec<_>>(), "({total},{grain},{workers})");
        }
    }

    #[test]
    fn stealing_reaches_work_dealt_elsewhere() {
        // 8 morsels, 4 per slot. Slot 1 drains its own deque, then must
        // steal from slot 0 to see any more work.
        let p = StealPartition::new(64, 8, 2, 7);
        for _ in 0..4 {
            let own = p.next_morsel(1).expect("own deque first");
            assert_eq!(own.stolen_from, None);
        }
        let next = p.next_morsel(1).expect("slot 1 finds work by stealing");
        assert_eq!(next.stolen_from, Some(0));
    }

    #[test]
    fn unstarted_owner_keeps_its_last_morsel() {
        // Grain clamps to ceil(3/3)=1: one morsel per slot. No thief may
        // take an unstarted owner's only morsel, so slot 0 retires empty-
        // handed while slots 1 and 2 keep their guaranteed first morsel.
        let p = StealPartition::new(3, 100, 3, 11);
        assert_eq!(p.next_morsel(0).expect("own morsel").stolen_from, None);
        assert!(p.next_morsel(0).is_none(), "reserved morsels are not stealable");
        assert_eq!(p.pending_units(), 2);
        // Once an owner starts, its surplus (everything but in-flight) is
        // fair game again.
        assert_eq!(p.next_morsel(1).expect("own morsel").stolen_from, None);
        assert!(p.next_morsel(1).is_none(), "slot 2 never started; its morsel is kept");
        assert_eq!(p.next_morsel(2).expect("own morsel").stolen_from, None);
    }

    #[test]
    fn fail_slot_reclaims_unclaimed_remainder_only() {
        let p = StealPartition::new(32, 8, 1, 0);
        let claim = p.claim_of(0);
        p.next_morsel(0).expect("first morsel");
        // Owner claims 3 of the 8 in-flight units, then is declared dead.
        for want in 0..3 {
            assert_eq!(StealPartition::claim_unit(&claim), Some(want));
        }
        let replacement = p.fail_slot(0);
        // The owner's next claim refuses (revoked).
        assert_eq!(StealPartition::claim_unit(&claim), None);
        assert!(p.next_morsel(0).is_none(), "revoked slot draws no morsel");
        // The replacement sees exactly the remainder plus the pending tail.
        let p2 = replacement;
        let mut seen = Vec::new();
        let claim2 = p.claim_of(p2);
        loop {
            if let Some(u) = StealPartition::claim_unit(&claim2) {
                seen.push(u);
            } else if p.next_morsel(p2).is_none() {
                break;
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (3..32).collect::<Vec<_>>());
    }

    #[test]
    fn revoke_all_stops_every_slot_mid_morsel() {
        let p = StealPartition::new(64, 8, 4, 3);
        // Slot 0 is mid-morsel (2 of 8 units claimed), slot 1 unstarted,
        // slot 2 has stolen from slot 3's deque.
        let claim0 = p.claim_of(0);
        p.next_morsel(0).expect("own morsel");
        assert_eq!(StealPartition::claim_unit(&claim0), Some(0));
        assert_eq!(StealPartition::claim_unit(&claim0), Some(1));
        p.next_morsel(3).expect("start slot 3 so its surplus is stealable");
        p.revoke_all();
        // Every in-flight claim refuses, every deque is empty, and no slot
        // — owner, thief, or fresh — can draw another morsel.
        for slot in 0..p.n_slots() {
            assert_eq!(StealPartition::claim_unit(&p.claim_of(slot)), None, "slot {slot}");
            assert!(p.next_morsel(slot).is_none(), "slot {slot} must draw nothing");
        }
        assert_eq!(p.pending_units(), 0, "unclaimed work is forfeited, not redealt");
        assert!(p.active_slots().is_empty());
    }

    #[test]
    fn double_fail_does_not_duplicate_the_remainder() {
        let p = StealPartition::new(16, 8, 1, 0);
        let claim = p.claim_of(0);
        p.next_morsel(0).expect("morsel");
        assert_eq!(StealPartition::claim_unit(&claim), Some(0));
        let r1 = p.fail_slot(0);
        let r2 = p.fail_slot(0);
        assert_ne!(r1, r2);
        let mut seen = Vec::new();
        for slot in [r1, r2] {
            let c = p.claim_of(slot);
            loop {
                if let Some(u) = StealPartition::claim_unit(&c) {
                    seen.push(u);
                } else if p.next_morsel(slot).is_none() {
                    break;
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (1..16).collect::<Vec<_>>(), "remainder reclaimed exactly once");
    }

    #[test]
    fn adjust_grows_and_shrinks() {
        let p = StealPartition::new(64, 4, 2, 3);
        let info = p.adjust(4);
        assert_eq!(info.new_slots, vec![2, 3]);
        assert!(info.retiring_slots.is_empty());
        assert_eq!(p.parallelism(), 4);
        let info = p.adjust(1);
        assert_eq!(info.retiring_slots, vec![1, 2, 3]);
        assert_eq!(p.parallelism(), 1);
        // Survivor still drains everything.
        let mut seen = drain(&p);
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn affine_steal_prefers_the_thiefs_disk() {
        // 4 slots, grain 1, 2 disks: the round-robin deal gives slot s the
        // units ≡ s (mod 4), so slots 0 and 2 hold even (disk-0) units and
        // slots 1 and 3 odd ones. Slot 0 drains its own deque (last unit
        // 28, disk 0), then steals. Every victim has stealable work, but
        // only slot 2 can offer a disk-0 unit — the affine score must pick
        // it over nearer off-disk candidates.
        let p = StealPartition::new(32, 1, 4, 123).with_disks(2);
        let claim = p.claim_of(0);
        for _ in 0..8 {
            let nm = p.next_morsel(0).expect("own deque first");
            assert_eq!(nm.stolen_from, None);
            while StealPartition::claim_unit(&claim).is_some() {}
        }
        let stolen = p.next_morsel(0).expect("plenty pending elsewhere");
        assert_eq!(stolen.stolen_from, Some(2), "only slot 2 holds disk-0 units");
        assert_eq!(
            stolen.morsel.start % 2,
            0,
            "thief last read disk 0; affine steal must stay there, got unit {}",
            stolen.morsel.start
        );
    }

    #[test]
    fn affine_steal_takes_the_shortest_seek_when_no_disk_matches() {
        // Same deal, but with 4 disks every victim's units live on its own
        // disk — no candidate can match the thief's disk 0, so the score
        // falls to block distance. Thief's last unit is 28; candidates are
        // slot 1 → 17, slot 2 → 18, slot 3 → 19 (each victim's 5th of 8
        // pending morsels after the back-half split). 19 is nearest.
        let p = StealPartition::new(32, 1, 4, 123).with_disks(4);
        let claim = p.claim_of(0);
        for _ in 0..8 {
            p.next_morsel(0).expect("own deque first");
            while StealPartition::claim_unit(&claim).is_some() {}
        }
        let stolen = p.next_morsel(0).expect("steal must still rescue work");
        assert_eq!(stolen.stolen_from, Some(3));
        assert_eq!(stolen.morsel.start, 19, "nearest stealable unit to 28");
        // And exactly-once still holds: drain claims the armed steal and
        // everything pending; slot 0's own residue class was claimed above.
        let mut seen = drain(&p);
        seen.extend((0..32).step_by(4));
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>(), "no unit lost under affine stealing");
    }

    #[test]
    fn victim_order_is_deterministic_and_complete() {
        for slot in 0..5 {
            let a: Vec<usize> = victim_order(9, slot, 5).collect();
            let b: Vec<usize> = victim_order(9, slot, 5).collect();
            assert_eq!(a, b, "same seed must replay the same order");
            let set: HashSet<usize> = a.iter().copied().collect();
            assert_eq!(set.len(), 4, "every other slot visited once: {a:?}");
            assert!(!set.contains(&slot));
        }
    }
}
