//! The shared machine throttle: disks behind mutexes, processors behind a
//! counting semaphore, pages behind a sharded buffer pool.
//!
//! A disk serves one request at a time, so a mutex per disk *is* the disk:
//! the holder classifies its request against the head state from
//! `xprs-disk` and, when a time scale is configured, sleeps the scaled
//! service time while holding the lock — queueing, head movement and seek
//! interference then show up in real wall-clock measurements exactly as in
//! the discrete-event simulator.
//!
//! The CPU gate bounds the number of workers concurrently evaluating
//! qualifications to the machine's processor count `N`, modelling the
//! paper's processor allocation on hosts with arbitrarily many cores.
//! Waiters **park on a condvar** — there is no spin/yield loop anywhere on
//! the issue path.
//!
//! The buffer pool is a [`ShardedBufferPool`]: each page hashes to one of
//! `n` independently latched shards, so concurrent scans no longer
//! serialize on a single pool mutex (§2.2–2.3's balance point assumes the
//! engine itself adds no shared-resource interference). One shard
//! reproduces the seed's global-latch behaviour bit-for-bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use xprs_disk::{ArrayStats, ClassStats, DiskParams, DiskState, FaultPlan, IoRequest, RelId, ServiceClass, StripedLayout, WorkerId};
use xprs_obs::TimeSum;
use xprs_scheduler::MachineConfig;
use xprs_storage::bufpool::FetchOutcome;
use xprs_storage::{PoolStats, ShardedBufferPool};

use crate::obs::ExecMetrics;

/// Lock acquisition that shrugs off poisoning: the guarded state is
/// bookkeeping (disk head positions, counters), and a worker panic is
/// reported through the master channel — the remaining workers must still
/// be able to drain.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A counting semaphore: at most `permits` holders at a time.
#[derive(Debug)]
pub struct CpuGate {
    inner: Mutex<u32>,
    cv: Condvar,
    capacity: u32,
}

impl CpuGate {
    /// Gate admitting `permits` concurrent holders.
    pub fn new(permits: u32) -> Self {
        assert!(permits >= 1, "need at least one processor");
        CpuGate { inner: Mutex::new(permits), cv: Condvar::new(), capacity: permits }
    }

    /// Acquire one processor, parking until one is free.
    pub fn acquire(&self) -> CpuPermit<'_> {
        let mut free = lock(&self.inner);
        while *free == 0 {
            free = self.cv.wait(free).unwrap_or_else(PoisonError::into_inner);
        }
        *free -= 1;
        CpuPermit { gate: self }
    }

    /// Acquire one processor only if one is free right now.
    pub fn try_acquire(&self) -> Option<CpuPermit<'_>> {
        let mut free = lock(&self.inner);
        if *free == 0 {
            return None;
        }
        *free -= 1;
        Some(CpuPermit { gate: self })
    }

    /// Total permits.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    fn release(&self) {
        let mut free = lock(&self.inner);
        *free += 1;
        debug_assert!(*free <= self.capacity);
        self.cv.notify_one();
    }
}

/// RAII processor permit.
#[derive(Debug)]
pub struct CpuPermit<'a> {
    gate: &'a CpuGate,
}

impl Drop for CpuPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// Default attempts a read is given before an unrecoverable [`IoFault`] is
/// raised: the initial issue plus two retries. Overridable per machine via
/// [`Machine::with_retry`] (a latency-bound service wants fewer attempts
/// and a tighter backoff than a batch run).
pub const READ_ATTEMPTS: u32 = 3;

/// Default simulated seconds of backoff before the first retry; doubles per
/// retry. Overridable via [`Machine::with_retry`].
pub const RETRY_BACKOFF: f64 = 0.002;

/// An unrecoverable I/O fault: a disk read kept failing after every
/// bounded retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// Relation whose page could not be read.
    pub rel: RelId,
    /// Global block number of the failing page.
    pub block: u64,
    /// Attempts made (including the initial issue).
    pub attempts: u32,
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read of {:?} block {} failed after {} attempts",
            self.rel, self.block, self.attempts
        )
    }
}

/// Aggregate I/O statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MachineStats {
    /// Per-class request counts and busy time.
    pub disk: ArrayStats,
    /// Total page reads issued (buffer hits + disk reads).
    pub reads: u64,
    /// Buffer-pool counters (summed over shards).
    pub pool: PoolStats,
}

/// The shared machine: striped disk array + processor gate + time scale.
#[derive(Debug)]
pub struct Machine {
    layout: StripedLayout,
    disks: Vec<Mutex<DiskState>>,
    cpu: CpuGate,
    /// Sharded buffer pool; a hit skips the disk entirely. Not wrapped in a
    /// machine-level mutex — each shard carries its own latch.
    pool: Option<ShardedBufferPool>,
    /// Wall-clock seconds per simulated second (0 disables sleeping).
    scale: f64,
    /// Injected fault schedule (`None` in fault-free operation).
    faults: Option<Arc<FaultPlan>>,
    /// Hot-path metric registry; `None` (the default) keeps the
    /// instrumented sites down to one branch each.
    metrics: Option<Arc<ExecMetrics>>,
    /// Simulated CPU seconds consumed through [`Machine::compute`]. Always
    /// on — one relaxed add per (already batched) compute call — so the
    /// utilization audit works even with detailed metrics disabled.
    cpu_busy: TimeSum,
    reads: AtomicU64,
    worker_ids: AtomicU64,
    /// Executor runs currently driving this machine. Always 1 for a
    /// private machine; a shared [`ExecSession`](crate::session) carries
    /// every concurrent tenant here. The patrol reads it to attribute
    /// observed service-rate loss to cross-run disk contention before
    /// treating the residue as machine-model drift.
    active_runs: AtomicU64,
    /// Attempts per read before escalating ([`READ_ATTEMPTS`] by default).
    read_attempts: u32,
    /// First-retry backoff in simulated seconds ([`RETRY_BACKOFF`] default).
    retry_backoff: f64,
}

impl Machine {
    /// Build from a machine configuration. `scale` maps simulated service
    /// seconds to wall-clock sleeps: `0.0` runs at full speed (functional
    /// testing), `1.0` runs in real time, `0.01` runs 100× fast.
    pub fn new(cfg: &MachineConfig, scale: f64) -> Self {
        Self::with_sharded_pool(cfg, scale, 0, 1)
    }

    /// Like [`Machine::new`], with a single-latch buffer pool of
    /// `pool_pages` frames (0 disables buffering; every read hits a disk).
    /// This is the seed's global-lock configuration.
    pub fn with_pool(cfg: &MachineConfig, scale: f64, pool_pages: usize) -> Self {
        Self::with_sharded_pool(cfg, scale, pool_pages, 1)
    }

    /// Like [`Machine::with_pool`], with the frames split over `shards`
    /// page-hashed shards, each independently latched.
    pub fn with_sharded_pool(
        cfg: &MachineConfig,
        scale: f64,
        pool_pages: usize,
        shards: usize,
    ) -> Self {
        assert!(scale >= 0.0 && scale.is_finite(), "invalid time scale {scale}");
        let params = DiskParams::from_rates(cfg.seq_bw, cfg.almost_seq_bw, cfg.random_bw);
        Machine {
            layout: StripedLayout::new(cfg.n_disks),
            disks: (0..cfg.n_disks).map(|_| Mutex::new(DiskState::new(params.clone()))).collect(),
            cpu: CpuGate::new(cfg.n_procs),
            pool: (pool_pages > 0).then(|| ShardedBufferPool::new(pool_pages, shards)),
            scale,
            faults: None,
            metrics: None,
            cpu_busy: TimeSum::new(),
            reads: AtomicU64::new(0),
            worker_ids: AtomicU64::new(0),
            active_runs: AtomicU64::new(0),
            read_attempts: READ_ATTEMPTS,
            retry_backoff: RETRY_BACKOFF,
        }
    }

    /// Note one executor run starting on this machine (paired with
    /// [`Machine::run_finished`]; the master holds the pair as a guard so
    /// every exit path decrements).
    pub fn run_started(&self) {
        self.active_runs.fetch_add(1, Ordering::SeqCst);
    }

    /// Note one executor run leaving this machine.
    pub fn run_finished(&self) {
        self.active_runs.fetch_sub(1, Ordering::SeqCst);
    }

    /// Executor runs currently sharing this machine's disks.
    pub fn active_runs(&self) -> u64 {
        self.active_runs.load(Ordering::SeqCst)
    }

    /// Override the bounded-retry envelope: `attempts` reads total per page
    /// (≥ 1) and `backoff` simulated seconds before the first retry
    /// (doubling per retry). Defaults are [`READ_ATTEMPTS`] /
    /// [`RETRY_BACKOFF`].
    pub fn with_retry(mut self, attempts: u32, backoff: f64) -> Self {
        assert!(attempts >= 1, "a read needs at least one attempt");
        assert!(backoff >= 0.0 && backoff.is_finite(), "invalid retry backoff {backoff}");
        self.read_attempts = attempts;
        self.retry_backoff = backoff;
        self
    }

    /// Attempts a read is given before escalating to an [`IoFault`].
    pub fn read_attempts(&self) -> u32 {
        self.read_attempts
    }

    /// Simulated seconds of backoff before the first retry.
    pub fn retry_backoff(&self) -> f64 {
        self.retry_backoff
    }

    /// Attach an injected fault schedule: transient read errors, sustained
    /// per-disk slowdowns and worker faults then fire at their scheduled
    /// logical offsets.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The attached fault schedule, if any.
    pub(crate) fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Attach a hot-path metric registry; the machine then records gate
    /// waits, retries and faults into it.
    pub fn with_metrics(mut self, metrics: Arc<ExecMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metric registry, if any.
    pub fn metrics(&self) -> Option<&Arc<ExecMetrics>> {
        self.metrics.as_ref()
    }

    /// Simulated CPU seconds consumed so far.
    pub fn cpu_busy_secs(&self) -> f64 {
        self.cpu_busy.secs()
    }

    /// Per-disk per-class request counts and busy time, indexed by disk.
    pub fn disk_class_stats(&self) -> Vec<ClassStats> {
        self.disks.iter().map(|d| lock(d).class_stats()).collect()
    }

    /// [`Machine::disk_class_stats`] merged over the whole array — the
    /// cumulative counters the utilization audit samples at pairing-window
    /// edges.
    pub fn disk_class_total(&self) -> ClassStats {
        let mut total = ClassStats::default();
        for d in &self.disks {
            total = total.merged(&lock(d).class_stats());
        }
        total
    }

    /// The striping layout.
    pub fn layout(&self) -> StripedLayout {
        self.layout
    }

    /// The processor gate.
    pub fn cpu(&self) -> &CpuGate {
        &self.cpu
    }

    /// The time scale (wall seconds per simulated second).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Allocate a machine-unique worker identity (for head-state tracking).
    pub fn new_worker_id(&self) -> WorkerId {
        WorkerId(self.worker_ids.fetch_add(1, Ordering::Relaxed))
    }

    /// Read `global_block` of `rel`: consult the buffer pool; on a miss wait
    /// for the disk and charge the classified service time (sleeping
    /// `scale ×` it). Returns the service class of the disk read, or `None`
    /// on a buffer hit. The caller then accesses the in-memory page image.
    ///
    /// # Panics
    /// Panics on an unrecoverable injected read error; fault-tolerant
    /// callers use [`Machine::try_read`].
    pub fn read(
        &self,
        rel: RelId,
        global_block: u64,
        worker: WorkerId,
        solo: bool,
    ) -> Option<ServiceClass> {
        self.try_read(rel, global_block, worker, solo)
            .unwrap_or_else(|f| panic!("unhandled I/O fault: {f}"))
    }

    /// Fault-tolerant read: like [`Machine::read`], but an injected
    /// transient read error is retried up to [`READ_ATTEMPTS`] times with
    /// doubling (scaled) backoff before escalating to an [`IoFault`]. Every
    /// attempt occupies the disk for its full classified service time —
    /// a fault costs I/O, it does not refund it. With no fault plan
    /// attached this never errors.
    pub fn try_read(
        &self,
        rel: RelId,
        global_block: u64,
        worker: WorkerId,
        solo: bool,
    ) -> Result<Option<ServiceClass>, IoFault> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut pinned_miss = false;
        if let Some(pool) = &self.pool {
            match pool.access(rel, global_block) {
                Ok(FetchOutcome::Hit) => return Ok(None),
                Ok(FetchOutcome::Miss) => pinned_miss = true,
                Err(_) => {
                    // Shard exhausted by concurrent pins: bypass the pool.
                }
            }
        }
        let disk = self.layout.disk_of(global_block) as usize;
        let req = IoRequest {
            rel,
            local_block: self.layout.local_block(global_block),
            worker,
            solo,
        };
        let attempts = self.read_attempts;
        let mut outcome = Err(IoFault { rel, block: global_block, attempts });
        for attempt in 0..attempts {
            let class = {
                let mut d = lock(&self.disks[disk]);
                // Sustained degradation is keyed to the disk's own request
                // ordinal, so it fires identically across interleavings.
                let mult = self
                    .faults
                    .as_ref()
                    .map_or(1.0, |f| f.slowdown_multiplier(disk, d.total_count()));
                let (class, dur) = d.serve_degraded(&req, mult);
                if self.scale > 0.0 {
                    // Sleeping while holding the lock serializes the disk —
                    // that is the model, not a bug.
                    std::thread::sleep(Duration::from_secs_f64(dur * self.scale));
                }
                class
            };
            let faulted =
                self.faults.as_ref().is_some_and(|f| f.take_read_error(rel, global_block));
            if !faulted {
                outcome = Ok(Some(class));
                break;
            }
            if attempt + 1 < attempts {
                if let Some(m) = &self.metrics {
                    m.io_retries.inc();
                }
                if self.scale > 0.0 {
                    let backoff = self.retry_backoff * (1u64 << attempt.min(30)) as f64;
                    std::thread::sleep(Duration::from_secs_f64(backoff * self.scale));
                }
            }
        }
        if outcome.is_err() {
            if let Some(m) = &self.metrics {
                m.io_faults.inc();
            }
        }
        if pinned_miss {
            if let Some(pool) = &self.pool {
                // Also on the fault path: the frame holds no data in this
                // model, but the *pin* must always be returned — leaking one
                // per failed read starves the shard into PoolExhausted
                // livelock under a retry storm. An unpin anomaly (double
                // release under a retry race) is a typed error now: count it
                // and keep serving rather than killing the worker.
                if pool.finish_read(rel, global_block).is_err() {
                    if let Some(m) = &self.metrics {
                        m.unpin_anomalies.inc();
                    }
                }
            }
        }
        outcome
    }

    /// The sharded buffer pool, when one is attached. The master's admission
    /// layer reserves grant capacity through this handle.
    pub fn pool(&self) -> Option<&ShardedBufferPool> {
        self.pool.as_ref()
    }

    /// Charge `n_blocks` of spill traffic for `rel` starting at
    /// `start_block` — a sorted-run write, or its read-back before the
    /// merge. Spill files are striped like heap relations, so spill I/O
    /// occupies the same disk heads and degrades concurrent scans exactly
    /// as the Section 2.3 interference model demands. It deliberately
    /// bypasses the buffer pool (the grant protocol spills *because* the
    /// pool had no room) and is not counted in [`Machine::reads`],
    /// which tracks heap reads only — the obs ledger invariant
    /// `hits + misses + bypasses == reads` must keep holding.
    pub fn spill_io(&self, rel: RelId, start_block: u64, n_blocks: u64, worker: WorkerId) {
        for b in start_block..start_block + n_blocks {
            let disk = self.layout.disk_of(b) as usize;
            let req = IoRequest {
                rel,
                local_block: self.layout.local_block(b),
                worker,
                solo: false,
            };
            let mut d = lock(&self.disks[disk]);
            let (_class, dur) = d.serve_degraded(&req, 1.0);
            if self.scale > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(dur * self.scale));
            }
        }
    }

    /// Burn `seconds` of simulated CPU while holding a processor permit.
    /// With metrics attached, the time spent *waiting* for the permit is
    /// recorded — the measured cost of staffing more workers than `N`.
    ///
    /// Only *contended* acquisitions reach the histogram. An uncontended
    /// grant is a zero wait, and recording that zero costs four shared
    /// cache-line RMWs per compute call — measured at ~3% of scan wall on
    /// the 8-worker A/B, which is more than the obs gate's whole 2%
    /// budget. The histogram's `count` is therefore "acquisitions that
    /// waited", not "acquisitions".
    pub fn compute(&self, seconds: f64) {
        let _permit = match &self.metrics {
            Some(m) => match self.cpu.try_acquire() {
                Some(permit) => permit,
                None => {
                    let waited = Instant::now();
                    let permit = self.cpu.acquire();
                    m.gate_wait_ns.observe(waited.elapsed().as_nanos() as u64);
                    permit
                }
            },
            None => self.cpu.acquire(),
        };
        self.cpu_busy.add_secs(seconds);
        if self.scale > 0.0 && seconds > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(seconds * self.scale));
        }
    }

    /// Total page reads issued so far (cheaper than a full [`Self::stats`]
    /// snapshot; the auditor samples this at every scheduling decision).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Statistics so far.
    pub fn stats(&self) -> MachineStats {
        let mut disk = ArrayStats::default();
        for d in &self.disks {
            let d = lock(d);
            disk.sequential += d.count_of(ServiceClass::Sequential);
            disk.almost_sequential += d.count_of(ServiceClass::AlmostSequential);
            disk.random += d.count_of(ServiceClass::Random);
            disk.busy_time += d.busy_time();
        }
        MachineStats {
            disk,
            reads: self.reads.load(Ordering::Relaxed),
            pool: self.pool.as_ref().map(|p| p.stats()).unwrap_or_default(),
        }
    }

    /// Per-shard buffer-pool counters (empty when buffering is disabled).
    pub fn pool_shard_stats(&self) -> Vec<PoolStats> {
        self.pool.as_ref().map(|p| p.shard_stats()).unwrap_or_default()
    }

    /// Outstanding buffer-pool pins right now (0 when buffering is
    /// disabled). Non-zero after a run means a reader leaked a pin.
    pub fn pool_pinned(&self) -> u64 {
        self.pool.as_ref().map_or(0, |p| p.pinned())
    }

    /// Per-class `(requests, busy seconds)` served so far across all disks,
    /// indexed `[Sequential, AlmostSequential, Random]`. Busy time includes
    /// any degradation stretch, so `requests / busy` is the *observed*
    /// service rate — the master's patrol diffs successive snapshots to
    /// detect drift from the modeled rate and recalibrate the policy.
    pub fn observed_service(&self) -> [(u64, f64); 3] {
        let classes =
            [ServiceClass::Sequential, ServiceClass::AlmostSequential, ServiceClass::Random];
        let mut out = [(0u64, 0.0f64); 3];
        for d in &self.disks {
            let d = lock(d);
            for (slot, class) in classes.into_iter().enumerate() {
                out[slot].0 += d.count_of(class);
                out[slot].1 += d.busy_time_of(class);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn machine(scale: f64) -> Machine {
        Machine::new(&MachineConfig::paper_default(), scale)
    }

    #[test]
    fn cpu_gate_bounds_concurrency() {
        let gate = Arc::new(CpuGate::new(2));
        let active = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (gate, active, peak) = (gate.clone(), active.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _p = gate.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            crate::master::join_worker(h, 0).expect("gate worker must not panic");
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate leaked permits");
    }

    /// Deterministic shard exhaustion: a one-frame, one-shard pool and a
    /// scaled service time long enough that the second reader arrives while
    /// the first still pins the only frame. The refused fetch must surface
    /// in the stats — `hits + misses + bypasses == reads` even under pin
    /// pressure, where the old ledger silently dropped the read.
    #[test]
    fn exhausted_shard_counts_the_bypass_and_keeps_the_ledger() {
        let cfg = MachineConfig::paper_default();
        let m = Arc::new(Machine::with_sharded_pool(&cfg, 6.0, 1, 1));
        let first = {
            let m = m.clone();
            std::thread::spawn(move || {
                let w = m.new_worker_id();
                // Cold random read ≈ 28.6 ms simulated → ≈ 170 ms wall: the
                // frame stays pinned for the whole service.
                m.read(RelId(1), 0, w, false);
            })
        };
        std::thread::sleep(Duration::from_millis(40));
        let w = m.new_worker_id();
        m.read(RelId(1), 4, w, false); // only shard is fully pinned → bypass
        crate::master::join_worker(first, 0).expect("reader must not panic");
        let s = m.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.pool.bypasses, 1, "the refused fetch must be counted");
        assert_eq!(s.pool.hits + s.pool.misses + s.pool.bypasses, s.reads);
        assert!(s.pool.hit_rate() < 0.5, "a bypass must price into the hit rate");
    }

    #[test]
    fn reads_route_and_classify_like_the_model() {
        let m = machine(0.0);
        let w = m.new_worker_id();
        // Solo sequential scan: all but the cold seeks run sequential.
        let mut seq = 0;
        for b in 0..100u64 {
            if m.read(RelId(1), b, w, true) == Some(ServiceClass::Sequential) {
                seq += 1;
            }
        }
        assert_eq!(seq, 96); // 4 cold (one per disk)
        let s = m.stats();
        assert_eq!(s.reads, 100);
        assert_eq!(s.disk.total(), 100);
    }

    #[test]
    fn concurrent_reads_on_different_disks_do_not_serialize() {
        // Functional check only: two threads hammer different blocks; the
        // stats must account every read exactly once.
        let m = Arc::new(machine(0.0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                let w = m.new_worker_id();
                for b in 0..250u64 {
                    m.read(RelId(t + 1), b, w, false);
                }
            }));
        }
        for h in handles {
            crate::master::join_worker(h, 0).expect("reader thread must not panic");
        }
        assert_eq!(m.stats().reads, 1000);
        assert_eq!(m.stats().disk.total(), 1000);
    }

    #[test]
    fn scaled_sleep_takes_measurable_time() {
        let m = machine(0.05); // 20× fast
        let w = m.new_worker_id();
        let t0 = std::time::Instant::now();
        for b in 0..20u64 {
            m.read(RelId(1), b, w, true);
        }
        // ≈ 20 ios ≈ 0.2 s simulated ≈ 10 ms wall.
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn buffer_pool_hits_skip_the_disks() {
        let cfg = MachineConfig::paper_default();
        let m = Machine::with_pool(&cfg, 0.0, 64);
        let w = m.new_worker_id();
        for b in 0..32u64 {
            assert!(m.read(RelId(1), b, w, true).is_some(), "cold read must hit a disk");
        }
        for b in 0..32u64 {
            assert!(m.read(RelId(1), b, w, true).is_none(), "warm read must hit the pool");
        }
        let s = m.stats();
        assert_eq!(s.reads, 64);
        assert_eq!(s.disk.total(), 32);
        assert_eq!(s.pool.hits, 32);
        assert_eq!(s.pool.misses, 32);
    }

    #[test]
    fn sharded_pool_matches_single_latch_hit_counts_on_reuse() {
        // Working set ≤ per-shard capacity × shards with uniform hashing:
        // a warm second pass must be all hits in both configurations.
        let cfg = MachineConfig::paper_default();
        for shards in [1usize, 4, 8] {
            let m = Machine::with_sharded_pool(&cfg, 0.0, 256, shards);
            let w = m.new_worker_id();
            for pass in 0..2 {
                for b in 0..64u64 {
                    let hit = m.read(RelId(1), b, w, true).is_none();
                    assert_eq!(hit, pass == 1, "shards={shards} pass={pass} block={b}");
                }
            }
            let s = m.stats();
            assert_eq!((s.pool.hits, s.pool.misses), (64, 64), "shards={shards}");
            assert_eq!(m.pool_shard_stats().len(), shards);
        }
    }

    #[test]
    fn scan_larger_than_pool_misses_throughout() {
        let cfg = MachineConfig::paper_default();
        let m = Machine::with_pool(&cfg, 0.0, 16);
        let w = m.new_worker_id();
        for pass in 0..2 {
            for b in 0..200u64 {
                assert!(
                    m.read(RelId(1), b, w, true).is_some(),
                    "pass {pass}: LRU cannot help a scan 12× the pool"
                );
            }
        }
        assert_eq!(m.stats().pool.hits, 0);
    }

    #[test]
    fn transient_fault_is_absorbed_by_retries() {
        let plan = Arc::new(FaultPlan::new().with_read_error(RelId(1), 5, READ_ATTEMPTS - 1));
        let m = machine(0.0).with_faults(plan.clone());
        let w = m.new_worker_id();
        assert!(m.try_read(RelId(1), 5, w, true).is_ok(), "retries must absorb the fault");
        assert_eq!(plan.stats().read_errors_fired(), u64::from(READ_ATTEMPTS - 1));
        // Every attempt burned a disk service: 2 failures + 1 success.
        assert_eq!(m.stats().disk.total(), u64::from(READ_ATTEMPTS));
    }

    #[test]
    fn exhausted_retries_escalate_to_a_typed_fault() {
        let plan = Arc::new(FaultPlan::new().with_read_error(RelId(1), 9, READ_ATTEMPTS));
        let m = machine(0.0).with_faults(plan);
        let w = m.new_worker_id();
        let err = m.try_read(RelId(1), 9, w, true).expect_err("must escalate");
        assert_eq!(err, IoFault { rel: RelId(1), block: 9, attempts: READ_ATTEMPTS });
        assert!(err.to_string().contains("block 9"));
    }

    #[test]
    fn faulted_reads_release_their_buffer_pins() {
        // A tiny pool plus a storm of unrecoverable faults: if the fault
        // path leaked its miss pin, the shard would exhaust and every later
        // read would bypass the pool forever (misses stop counting).
        let cfg = MachineConfig::paper_default();
        let mut plan = FaultPlan::new();
        for b in 0..64u64 {
            plan = plan.with_read_error(RelId(1), b, READ_ATTEMPTS);
        }
        let m = Machine::with_pool(&cfg, 0.0, 4).with_faults(Arc::new(plan));
        let w = m.new_worker_id();
        for b in 0..64u64 {
            assert!(m.try_read(RelId(1), b, w, true).is_err());
        }
        // All pins returned: a fresh fault-free block still lands in the
        // pool as a genuine miss rather than a bypass.
        assert!(m.try_read(RelId(1), 100, w, true).is_ok());
        assert_eq!(m.stats().pool.misses, 65, "fault path must keep using the pool");
    }

    #[test]
    fn retry_envelope_is_configurable_with_defaults_preserved() {
        // Defaults untouched: a machine built without `with_retry` carries
        // the batch-tuned constants.
        let m = machine(0.0);
        assert_eq!(m.read_attempts(), READ_ATTEMPTS);
        assert!((m.retry_backoff() - RETRY_BACKOFF).abs() < 1e-12);
        // A single transient error is absorbed by the default envelope…
        let plan = Arc::new(FaultPlan::new().with_read_error(RelId(1), 5, 1));
        let lax = machine(0.0).with_faults(plan);
        let w = lax.new_worker_id();
        assert!(lax.try_read(RelId(1), 5, w, true).is_ok());
        // …but escalates immediately under a one-attempt service envelope.
        let plan = Arc::new(FaultPlan::new().with_read_error(RelId(1), 5, 1));
        let strict = machine(0.0).with_faults(plan).with_retry(1, 0.0);
        let w = strict.new_worker_id();
        let err = strict.try_read(RelId(1), 5, w, true).expect_err("no retries left");
        assert_eq!(err, IoFault { rel: RelId(1), block: 5, attempts: 1 });
    }

    #[test]
    fn slowdown_stretches_observed_service() {
        let plan = Arc::new(FaultPlan::new().with_slowdown(0, 0, 4.0));
        let m = machine(0.0).with_faults(plan.clone());
        let w = m.new_worker_id();
        // Blocks 0,4,8,... live on disk 0 under 4-way striping.
        for b in (0..40u64).step_by(4) {
            m.read(RelId(1), b, w, true);
        }
        let healthy = machine(0.0);
        let w2 = healthy.new_worker_id();
        for b in (0..40u64).step_by(4) {
            healthy.read(RelId(1), b, w2, true);
        }
        let busy = |m: &Machine| m.observed_service().iter().map(|(_, b)| b).sum::<f64>();
        assert!(
            busy(&m) > 3.9 * busy(&healthy),
            "degraded busy {} vs healthy {}",
            busy(&m),
            busy(&healthy)
        );
        assert_eq!(plan.stats().slow_requests(), 10);
    }

    #[test]
    fn metrics_record_retries_faults_gate_waits_and_cpu_busy() {
        let plan = Arc::new(
            FaultPlan::new()
                .with_read_error(RelId(1), 0, READ_ATTEMPTS - 1) // absorbed
                .with_read_error(RelId(1), 1, READ_ATTEMPTS), // escalates
        );
        let metrics = Arc::new(crate::obs::ExecMetrics::default());
        let m = machine(0.0).with_faults(plan).with_metrics(metrics.clone());
        let w = m.new_worker_id();
        assert!(m.try_read(RelId(1), 0, w, true).is_ok());
        assert!(m.try_read(RelId(1), 1, w, true).is_err());
        // Block 0: 2 faulted attempts, both retried. Block 1: 3 faulted
        // attempts, the first 2 retried, then the typed fault.
        assert_eq!(metrics.io_retries.get(), u64::from(2 * (READ_ATTEMPTS - 1)));
        assert_eq!(metrics.io_faults.get(), 1);
        m.compute(0.5);
        m.compute(0.25);
        // Uncontended grants are not recorded (contended-only histogram).
        assert_eq!(metrics.gate_wait_ns.snapshot().count, 0);
        assert!((m.cpu_busy_secs() - 0.75).abs() < 1e-9);
        // Per-disk class stats merge to the array totals.
        let per_disk = m.disk_class_stats();
        assert_eq!(per_disk.len(), 4);
        let total = m.disk_class_total();
        assert_eq!(total.total_count(), m.stats().disk.total());
        assert_eq!(
            per_disk.iter().map(xprs_disk::ClassStats::total_count).sum::<u64>(),
            total.total_count()
        );
    }

    #[test]
    fn gate_wait_records_contended_acquisitions() {
        // One processor, scaled time: the first thread holds the permit
        // through a real 10ms sleep, so the second thread's acquisition
        // must wait and must land in the histogram.
        let cfg = MachineConfig { n_procs: 1, ..MachineConfig::paper_default() };
        let metrics = Arc::new(crate::obs::ExecMetrics::default());
        let m = Arc::new(Machine::new(&cfg, 1.0).with_metrics(metrics.clone()));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || m.compute(0.01))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let gate = metrics.gate_wait_ns.snapshot();
        assert!(gate.count >= 1, "the losing thread's wait must be recorded");
        assert!(gate.sum > 0, "a contended wait is not a zero wait");
    }

    #[test]
    fn worker_ids_are_unique() {
        let m = machine(0.0);
        let a = m.new_worker_id();
        let b = m.new_worker_id();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid time scale")]
    fn negative_scale_rejected() {
        machine(-1.0);
    }
}
