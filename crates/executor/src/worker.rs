//! The slave backend: one worker thread executing its share of a fragment.
//!
//! Workers never receive control messages. All coordination happens through
//! the shared partition state (Section 2.4): a worker asks for its next page
//! or key under the partition mutex, and the answer reflects any adjustment
//! the master has applied — including "you are retired" (`None`). This is
//! the shared-memory, low-communication-cost design the paper credits for
//! making dynamic parallelism adjustment cheap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use xprs_storage::partition::{PagePartition, RangePartition};
use xprs_storage::{Catalog, Relation, Tuple};

use crate::io::Machine;
use crate::program::{Driver, FragmentProgram, Materialized, PipelineOp};

/// Per-query-relation execution binding: catalog name plus the concrete
/// selection range on `a` the query applies.
#[derive(Debug, Clone)]
pub struct RelBinding {
    /// Catalog relation name.
    pub name: String,
    /// Inclusive selection range on attribute `a`.
    pub pred: (i32, i32),
}

impl RelBinding {
    fn admits(&self, key: i32) -> bool {
        key >= self.pred.0 && key <= self.pred.1
    }
}

/// The shared partition behind the fragment's mutex.
pub(crate) enum PartitionState {
    /// Page-partitioned scan.
    Page(PagePartition),
    /// Range-partitioned scan / key-domain walk.
    Range(RangePartition),
}

/// Shared state of one running fragment.
pub(crate) struct FragCtx {
    /// Global fragment index (across all queries of the run).
    pub gid: usize,
    /// The compiled pipeline.
    pub program: FragmentProgram,
    /// Bindings for the owning query's relations.
    pub rels: Vec<RelBinding>,
    /// Materialized inputs, keyed by per-query fragment index.
    pub inputs: HashMap<usize, Arc<Materialized>>,
    /// The Section 2.4 partition state.
    pub partition: Mutex<PartitionState>,
    /// Slots whose worker thread has exited (may be re-staffed on adjust).
    pub exited_slots: Mutex<Vec<usize>>,
    /// Completed work units (pages or keys).
    pub units_done: AtomicU64,
    /// Total work units.
    pub total_units: u64,
    /// Result rows.
    pub out: Mutex<Vec<(i32, Tuple)>>,
    /// Current target parallelism (for the solo-stream I/O flag).
    pub target_parallelism: AtomicU32,
    /// Completion latch (the done message fires exactly once).
    pub done: AtomicBool,
    /// Master notification channel.
    pub done_tx: Sender<usize>,
    /// CPU seconds charged per tuple examined.
    pub cpu_tuple: f64,
}

impl FragCtx {
    fn solo(&self) -> bool {
        self.target_parallelism.load(Ordering::Relaxed) == 1
    }

    fn input(&self, dep: usize) -> &Materialized {
        self.inputs
            .get(&dep)
            .unwrap_or_else(|| panic!("fragment {} missing materialized input {dep}", self.gid))
    }

    fn relation<'c>(&self, catalog: &'c Catalog, rel: usize) -> &'c Relation {
        let name = &self.rels[rel].name;
        catalog
            .get(name)
            .unwrap_or_else(|| panic!("relation {name} vanished from the catalog"))
    }

    /// Record one finished unit; fire the completion message on the last.
    fn finish_unit(&self) {
        let done = self.units_done.fetch_add(1, Ordering::SeqCst) + 1;
        debug_assert!(done <= self.total_units);
        if done == self.total_units && !self.done.swap(true, Ordering::SeqCst) {
            let _ = self.done_tx.send(self.gid);
        }
    }
}

enum Unit {
    Page(u64),
    Key(i64),
}

/// Worker main loop for slot `slot` of the fragment.
pub(crate) fn run_worker(
    ctx: Arc<FragCtx>,
    slot: usize,
    machine: Arc<Machine>,
    catalog: Arc<Catalog>,
) {
    let wid = machine.new_worker_id();
    loop {
        let unit = {
            let mut p = ctx.partition.lock();
            match &mut *p {
                PartitionState::Page(pp) => pp.next_page(slot).map(Unit::Page),
                PartitionState::Range(rp) => rp.next_key(slot).map(Unit::Key),
            }
        };
        let Some(unit) = unit else { break };
        match unit {
            Unit::Page(page) => scan_page(&ctx, &machine, &catalog, wid, page),
            Unit::Key(key) => scan_key(&ctx, &machine, &catalog, wid, key),
        }
        ctx.finish_unit();
    }
    ctx.exited_slots.lock().push(slot);
}

/// Page-scan driver: read one heap page, filter, run the pipeline.
fn scan_page(
    ctx: &FragCtx,
    machine: &Machine,
    catalog: &Catalog,
    wid: xprs_disk::WorkerId,
    page: u64,
) {
    let Driver::PageScan { rel } = ctx.program.driver else {
        unreachable!("page unit on a non-page driver");
    };
    let relation = ctx.relation(catalog, rel);
    machine.read(relation.heap.rel(), page, wid, ctx.solo());
    let p = relation.heap.page(page);
    machine.compute(p.n_tuples() as f64 * ctx.cpu_tuple);
    for (_, tuple) in p.iter() {
        let Some(key) = tuple.get(0).as_int() else { continue };
        if ctx.rels[rel].admits(key) {
            pipeline(ctx, machine, catalog, wid, key, tuple.clone(), 0);
        }
    }
}

/// Key driver: one key of a range-partitioned index scan or key-domain walk.
fn scan_key(
    ctx: &FragCtx,
    machine: &Machine,
    catalog: &Catalog,
    wid: xprs_disk::WorkerId,
    key: i64,
) {
    let key = key as i32;
    match ctx.program.driver {
        Driver::KeyScan { rel } => {
            let relation = ctx.relation(catalog, rel);
            let idx = relation
                .index_on_a
                .as_ref()
                .unwrap_or_else(|| panic!("index scan over unindexed {}", relation.name));
            let postings = idx.lookup(key);
            machine.compute(postings.len().max(1) as f64 * ctx.cpu_tuple);
            for &tid in postings {
                // Unclustered posting dereference: a random heap-page read.
                machine.read(relation.heap.rel(), tid.block, wid, false);
                let tuple = relation
                    .heap
                    .fetch(tid)
                    .unwrap_or_else(|| panic!("dangling tid {tid} in {}", relation.name))
                    .clone();
                pipeline(ctx, machine, catalog, wid, key, tuple, 0);
            }
        }
        Driver::KeyDomain => {
            machine.compute(ctx.cpu_tuple);
            pipeline(ctx, machine, catalog, wid, key, Tuple::from_values(vec![]), 0);
        }
        Driver::PageScan { .. } => unreachable!("key unit on a page driver"),
    }
}

/// Apply pipeline operators `depth..` to `(key, tuple)`.
fn pipeline(
    ctx: &FragCtx,
    machine: &Machine,
    catalog: &Catalog,
    wid: xprs_disk::WorkerId,
    key: i32,
    tuple: Tuple,
    depth: usize,
) {
    let Some(op) = ctx.program.ops.get(depth) else {
        ctx.out.lock().push((key, tuple));
        return;
    };
    match op {
        PipelineOp::ProbeHash { dep } | PipelineOp::MergeWith { dep } => {
            for row in ctx.input(*dep).matches(key) {
                pipeline(ctx, machine, catalog, wid, key, tuple.join(row), depth + 1);
            }
        }
        PipelineOp::NestInner { dep } => {
            // A genuine nested loop: every inner row is examined.
            let inner = ctx.input(*dep);
            machine.compute(inner.rows.len() as f64 * ctx.cpu_tuple * 0.1);
            for (k2, row) in &inner.rows {
                if *k2 == key {
                    pipeline(ctx, machine, catalog, wid, key, tuple.join(row), depth + 1);
                }
            }
        }
        PipelineOp::MergeIndexed { rel } => {
            if !ctx.rels[*rel].admits(key) {
                return;
            }
            let relation = ctx.relation(catalog, *rel);
            let idx = relation
                .index_on_a
                .as_ref()
                .unwrap_or_else(|| panic!("merge-indexed over unindexed {}", relation.name));
            for &tid in idx.lookup(key) {
                machine.read(relation.heap.rel(), tid.block, wid, false);
                let row = relation
                    .heap
                    .fetch(tid)
                    .unwrap_or_else(|| panic!("dangling tid {tid} in {}", relation.name))
                    .clone();
                pipeline(ctx, machine, catalog, wid, key, tuple.join(&row), depth + 1);
            }
        }
    }
}
